//! Model management and ensemble learning (paper §2.2, §3.3): train a
//! family of models, store them with metadata, query the store with SQL,
//! pick the best, and combine them into ensembles.
//!
//! Run with: `cargo run --release --example model_management`

use mlcs::columnar::Database;
use mlcs::ml::Matrix;
use mlcs::mlcore::ensemble::{ensemble_predict, EnsembleStrategy};
use mlcs::mlcore::meta;
use mlcs::mlcore::pipeline::{train_in_db, Algorithm, TrainOptions};
use mlcs::mlcore::ModelStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    mlcs::mlcore::register_ml_udfs(&db);

    // A noisy two-class dataset.
    db.execute("CREATE TABLE obs (a DOUBLE, b DOUBLE, label INTEGER)")?;
    let mut rows = Vec::new();
    for i in 0..600 {
        let cls = i % 2;
        let noise = ((i * 73) % 200) as f64 / 100.0 - 1.0;
        let center = if cls == 0 { -1.2 } else { 1.2 };
        rows.push(format!("({}, {}, {cls})", center + noise, center - noise * 0.7));
    }
    db.execute(&format!("INSERT INTO obs VALUES {}", rows.join(", ")))?;

    // Train one model per algorithm, storing each with its metrics.
    println!("Training five model families...");
    for (name, algo) in [
        ("rf_16", Algorithm::RandomForest { n_estimators: 16 }),
        ("tree_d6", Algorithm::DecisionTree { max_depth: Some(6) }),
        ("logreg", Algorithm::LogisticRegression { epochs: 200 }),
        ("nb", Algorithm::GaussianNb),
        ("knn_5", Algorithm::Knn { k: 5 }),
    ] {
        let report = train_in_db(
            &db,
            "SELECT a, b, label FROM obs",
            &TrainOptions { algorithm: algo, ..Default::default() },
            Some(name),
        )?;
        println!("  {name:<8} accuracy {:.3}  macro-F1 {:.3}", report.accuracy, report.macro_f1);
    }

    // Meta-analysis with plain SQL over the models table.
    println!("\nLeaderboard (SQL over the models table):");
    print!("{}", meta::leaderboard(&db)?.pretty());
    println!("\nStorage cost per model:");
    print!("{}", meta::storage_report(&db)?.pretty());

    // Pick the best model by stored accuracy and use it.
    let store = ModelStore::open(&db)?;
    let (best_name, best) = store.load_best_by_accuracy()?;
    println!("\nBest model by stored accuracy: {best_name}");
    let x = Matrix::from_rows(&[[-1.5, -1.0], [1.5, 1.0]])?;
    println!("  predictions for two probes: {:?}", best.predict(&x)?);

    // Cross-validation in SQL (the paper's §3 "Training and Verification").
    let cv = db.query(
        "SELECT fold, accuracy FROM cross_validate('random_forest',
           (SELECT a, b FROM obs), (SELECT label FROM obs), 5, 16)",
    )?;
    println!("\n5-fold cross-validation of the forest:");
    print!("{}", cv.pretty());

    // Ensembles over every stored model (paper §3.3).
    let models: Vec<_> = store.load_all()?.into_iter().map(|(_, m)| m).collect();
    let majority = ensemble_predict(&models, &x, EnsembleStrategy::MajorityVote)?;
    let confident = ensemble_predict(&models, &x, EnsembleStrategy::HighestConfidence)?;
    println!("  majority vote:        {majority:?}");
    println!("  highest confidence:   {confident:?}");

    Ok(())
}
