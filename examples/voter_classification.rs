//! The paper's full evaluation workload (§4): the North Carolina voter
//! classification pipeline, run in-database, with the Figure 1 comparison
//! against the file and socket baselines at a small scale.
//!
//! Run with: `cargo run --release --example voter_classification -- [rows]`
//! (default 75,000 rows; the paper's full scale is 7,500,000).

use mlcs::voters::pipeline::{run_figure1, Method, PipelineOptions};
use mlcs::voters::report::render_figure1;
use mlcs::voters::VoterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(75_000);
    let config = VoterConfig { rows, ..Default::default() };
    let opts = PipelineOptions::default();
    println!(
        "Voter classification: {} voters x {} columns, {} precincts, {} trees\n",
        config.rows,
        config.features + 2,
        config.precincts,
        opts.n_estimators
    );

    let methods = [
        Method::InDb,
        Method::NpyFiles,
        Method::H5Lite,
        Method::Csv,
        Method::SocketText,
        Method::SocketBinary,
        Method::EmbeddedRows,
    ];
    let runs = run_figure1(&config, &opts, &methods)?;
    println!("{}", render_figure1(&runs));
    println!(
        "All methods share labels, split and model seed, so their quality\n\
         (err = mean |predicted - actual| precinct Democrat share) matches;\n\
         only the data-movement cost differs — the paper's core result."
    );
    Ok(())
}
