//! An interactive SQL shell over the embedded column store, with the ML
//! UDFs registered — a small MonetDB-like REPL for poking at the system.
//!
//! Run with: `cargo run --release --example sql_shell`
//!
//! ```text
//! mlcs> CREATE TABLE t (x INTEGER, label INTEGER);
//! mlcs> INSERT INTO t VALUES (1, 0), (2, 0), (10, 1), (11, 1);
//! mlcs> CREATE TABLE m AS SELECT * FROM train((SELECT x FROM t), (SELECT label FROM t), 8);
//! mlcs> SELECT x, predict(x, (SELECT classifier FROM m)) FROM t;
//! mlcs> EXPLAIN ANALYZE SELECT x, predict(x, (SELECT classifier FROM m)) FROM t;
//! mlcs> \m
//! mlcs> SHOW TABLES;
//! mlcs> \q
//! ```
//!
//! `EXPLAIN ANALYZE <stmt>` executes the statement and prints the plan
//! with per-operator actual rows, wall time, and `[parallel]` markers;
//! `\m` dumps the process-wide metrics registry (UDF invocations, pickle
//! bytes, operator rows — see `mlcs_columnar::metrics`), `\mr` resets it.

use mlcs::columnar::{Database, StatementKind};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    mlcs::mlcore::register_ml_udfs(&db);
    mlcs::voters::label::register_label_udf(&db);
    println!("mlcs SQL shell — ML UDFs registered (train, predict, ...).");
    println!(
        "End statements with ';'. Commands: \\q quit, \\t timing toggle, \
         \\m metrics snapshot, \\mr metrics reset."
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timing = true;
    loop {
        if buffer.is_empty() {
            print!("mlcs> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" | "\\quit" | "exit" | "quit" => break,
                "\\t" => {
                    timing = !timing;
                    println!("timing {}", if timing { "on" } else { "off" });
                    continue;
                }
                "\\m" => {
                    let rendered = mlcs::columnar::metrics::snapshot().render();
                    if rendered.is_empty() {
                        println!("(no metrics recorded yet)");
                    } else {
                        print!("{rendered}");
                    }
                    continue;
                }
                "\\mr" => {
                    mlcs::columnar::metrics::reset();
                    println!("metrics reset");
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue; // keep accumulating a multi-line statement
        }
        let sql = std::mem::take(&mut buffer);
        match db.execute(&sql) {
            Ok(result) => {
                match result.kind() {
                    StatementKind::Query => print!("{}", result.batch().pretty()),
                    StatementKind::Ddl => println!("ok"),
                    StatementKind::Dml => {
                        println!("ok, {} row(s) affected", result.rows_affected())
                    }
                }
                if timing {
                    println!("({:.3} ms)", result.elapsed().as_secs_f64() * 1e3);
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
    Ok(())
}
