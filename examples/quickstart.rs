//! Quickstart: the paper's workflow in five minutes.
//!
//! Creates a database, loads a small dataset, trains a random forest
//! entirely inside the database via the `train` table UDF (the paper's
//! Listing 1), stores the model in a table, classifies new rows with the
//! `predict` scalar UDF (Listing 2), and runs a meta-analysis query over
//! the models table.
//!
//! Run with: `cargo run --release --example quickstart`

use mlcs::columnar::Database;
use mlcs::mlcore::register_ml_udfs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An embedded analytical database with the ML UDFs registered.
    let db = Database::new();
    register_ml_udfs(&db);

    // 2. Some data: two interleaved blobs, label 0 on the left, 1 right.
    db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)")?;
    let mut rows = Vec::new();
    for i in 0..400 {
        let (cx, label) = if i % 2 == 0 { (-2.0, 0) } else { (2.0, 1) };
        let jitter = ((i * 37) % 100) as f64 / 50.0 - 1.0;
        rows.push(format!("({}, {}, {label})", cx + jitter, cx - jitter * 0.5));
    }
    db.execute(&format!("INSERT INTO points VALUES {}", rows.join(", ")))?;
    println!("Loaded {} rows.", db.query_value("SELECT COUNT(*) FROM points")?);

    // 3. Train inside the database — the paper's Listing 1. The subqueries
    //    hand whole columns to the vectorized UDF, zero-copy.
    db.execute(
        "CREATE TABLE models AS
         SELECT * FROM train((SELECT x, y FROM points),
                             (SELECT label FROM points),
                             16)",
    )?;
    println!("\nStored model:");
    print!(
        "{}",
        db.query("SELECT algorithm, parameters, n_features, train_rows FROM models")?.pretty()
    );

    // 4. Classify with the stored model — the paper's Listing 2. The model
    //    BLOB arrives via a scalar subquery and is unpickled once.
    let result = db.query(
        "SELECT label,
                predict(x, y, (SELECT classifier FROM models)) AS predicted,
                COUNT(*) AS n
         FROM points
         GROUP BY label, predict(x, y, (SELECT classifier FROM models))
         ORDER BY label, predicted",
    )?;
    println!("\nConfusion (label vs predicted):");
    print!("{}", result.pretty());

    // 5. Meta-analysis: models are rows, so SQL answers questions about
    //    them (paper §3.3).
    let meta = db.query("SELECT algorithm, OCTET_LENGTH(classifier) AS bytes FROM models")?;
    println!("\nModel storage:");
    print!("{}", meta.pretty());

    Ok(())
}
