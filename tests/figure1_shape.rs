//! Integration test for the Figure 1 *shape*: at a modest scale, the
//! in-database pipeline must spend dramatically less time on loading and
//! wrangling than the text/socket baselines, and every method must agree
//! on the classification outcome.
//!
//! Timing assertions on shared CI hardware are kept deliberately loose:
//! we assert ordering relations with generous factors, not absolute times.

use mlcs::voters::pipeline::{run_method, Method, PipelineEnv, PipelineOptions};
use mlcs::voters::VoterConfig;

fn env_and_opts(rows: usize) -> (PipelineEnv, PipelineOptions) {
    let config = VoterConfig { rows, ..Default::default() };
    let opts = PipelineOptions { n_estimators: 4, ..Default::default() };
    (PipelineEnv::prepare(&config).expect("prepare"), opts)
}

#[test]
fn in_db_wrangle_beats_text_paths() {
    let (env, opts) = env_and_opts(30_000);
    // Warm-up (hot runs, as in the paper).
    for m in [Method::InDb, Method::Csv, Method::SocketText] {
        run_method(&env, m, &opts).unwrap();
    }
    let indb = run_method(&env, Method::InDb, &opts).unwrap();
    let csv = run_method(&env, Method::Csv, &opts).unwrap();
    let sock = run_method(&env, Method::SocketText, &opts).unwrap();
    // The paper's headline: the in-db wrangle bar is an order of
    // magnitude below the text paths. We assert a conservative 2x.
    assert!(
        indb.load_wrangle.as_secs_f64() * 2.0 < csv.load_wrangle.as_secs_f64(),
        "in-db wrangle {:?} not clearly below csv {:?}",
        indb.load_wrangle,
        csv.load_wrangle
    );
    assert!(
        indb.load_wrangle.as_secs_f64() * 2.0 < sock.load_wrangle.as_secs_f64(),
        "in-db wrangle {:?} not clearly below socket-text {:?}",
        indb.load_wrangle,
        sock.load_wrangle
    );
    env.cleanup();
}

#[test]
fn binary_files_beat_csv_on_loading() {
    let (env, opts) = env_and_opts(30_000);
    for m in [Method::NpyFiles, Method::Csv] {
        run_method(&env, m, &opts).unwrap();
    }
    let npy = run_method(&env, Method::NpyFiles, &opts).unwrap();
    let csv = run_method(&env, Method::Csv, &opts).unwrap();
    // Binary column files load much faster than parsed text (paper §4).
    assert!(
        npy.load_wrangle < csv.load_wrangle,
        "npy {:?} not below csv {:?}",
        npy.load_wrangle,
        csv.load_wrangle
    );
    env.cleanup();
}

#[test]
fn all_methods_reach_identical_quality() {
    let (env, opts) = env_and_opts(10_000);
    let mut errors = Vec::new();
    for &m in Method::all() {
        let run = run_method(&env, m, &opts).unwrap();
        errors.push((m, run.share_error, run.test_rows));
    }
    let (m0, e0, n0) = errors[0];
    for &(m, e, n) in &errors[1..] {
        assert_eq!(n, n0, "{m:?} test rows differ from {m0:?}");
        assert!((e - e0).abs() < 1e-9, "{m:?} error {e} != {m0:?} error {e0}");
    }
    env.cleanup();
}
