//! EXPLAIN ANALYZE output shape: every operator line carries actual row
//! counts and wall time, and the `[parallel]` annotation appears exactly
//! when the engine's per-operator gates would pick the parallel path —
//! the same gates `tests/parallel_exec.rs` exercises for correctness.

use mlcs::columnar::{Database, Value};

/// Seeds `rows` voters-like rows into table `t` plus a small dimension `d`.
fn seed(db: &Database, rows: i64) {
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)").unwrap();
    db.execute("CREATE TABLE d (k INTEGER, label VARCHAR)").unwrap();
    db.execute("INSERT INTO d VALUES (0, 'zero'), (1, 'one'), (2, 'two')").unwrap();
    let mut values = Vec::with_capacity(rows as usize);
    for i in 0..rows {
        values.push(format!("({}, {})", i % 5, i % 11));
    }
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
}

/// Runs a statement and joins the one-column result into plan text.
fn text_of(db: &Database, sql: &str) -> String {
    let batch = db.query(sql).unwrap();
    (0..batch.rows())
        .map(|r| match &batch.row(r)[0] {
            Value::Varchar(s) => format!("{s}\n"),
            other => panic!("EXPLAIN returned {other:?}"),
        })
        .collect()
}

const QUERY: &str =
    "EXPLAIN ANALYZE SELECT t.k, COUNT(*) FROM t JOIN d ON t.k = d.k WHERE t.v > 3 \
     GROUP BY t.k ORDER BY t.k";

#[test]
fn analyze_annotates_every_operator_with_rows_and_time() {
    let db = Database::new();
    db.set_threads(1);
    seed(&db, 500);
    let text = text_of(&db, QUERY);
    for node in ["Scan t", "Scan d", "Join", "Filter", "Aggregate", "Sort"] {
        let line = text
            .lines()
            .find(|l| l.contains(node))
            .unwrap_or_else(|| panic!("{node} missing from:\n{text}"));
        assert!(line.contains("rows="), "{node} has no row count:\n{text}");
        assert!(line.contains("time="), "{node} has no wall time:\n{text}");
    }
    // Non-leaf operators also report their input cardinality.
    let sort = text.lines().find(|l| l.contains("Sort")).unwrap();
    assert!(sort.contains("in="), "Sort has no input count:\n{text}");
    // The scan's actual row count is the table's size.
    let scan = text.lines().find(|l| l.contains("Scan t")).unwrap();
    assert!(scan.contains("rows=500"), "Scan t wrong cardinality:\n{text}");
    // And a whole-statement summary line closes the output.
    assert!(text.contains("execution:"), "missing execution summary:\n{text}");
}

#[test]
fn analyze_parallel_annotation_follows_the_executor_gates() {
    // Forced-parallel database: every eligible operator takes the morsel
    // path regardless of the machine's core count (same convention as
    // tests/parallel_exec.rs).
    let par = Database::new();
    par.set_threads(4);
    par.set_parallel_threshold(1);
    seed(&par, 500);
    let text = text_of(&par, QUERY);
    for node in ["Filter", "Join", "Aggregate", "Sort"] {
        let line = text.lines().find(|l| l.contains(node)).unwrap();
        assert!(line.contains("[parallel]"), "{node} should run parallel:\n{text}");
    }
    // Scans materialize views of stored columns; they never fan out.
    let scan = text.lines().find(|l| l.contains("Scan t")).unwrap();
    assert!(!scan.contains("[parallel]"), "Scan t cannot be parallel:\n{text}");

    // Serial database: identical plan, no [parallel] anywhere.
    let ser = Database::new();
    ser.set_threads(1);
    seed(&ser, 500);
    let text = text_of(&ser, QUERY);
    assert!(text.contains("rows="), "serial ANALYZE lost its stats:\n{text}");
    assert!(!text.contains("[parallel]"), "serial plan claims parallelism:\n{text}");
}

#[test]
fn plain_explain_is_unchanged_by_the_analyze_path() {
    let db = Database::new();
    db.set_threads(1);
    seed(&db, 100);
    let text = text_of(&db, "EXPLAIN SELECT k FROM t WHERE v > 3");
    assert!(!text.contains("rows="), "plain EXPLAIN must not execute:\n{text}");
    assert!(!text.contains("time="), "plain EXPLAIN must not time:\n{text}");
    assert!(!text.contains("execution:"), "plain EXPLAIN must not run:\n{text}");
}

/// Compressed-execution markers: `EXPLAIN` reports eligibility (fusible
/// predicate shapes, the scanned table's current encodings) and `EXPLAIN
/// ANALYZE` reports what actually ran, per operator.
#[test]
fn explain_shows_encoding_and_fusion_markers() {
    use mlcs::columnar::Encoding;
    let db = Database::new();
    db.set_threads(1);
    seed(&db, 500);
    let table = db.catalog().table("t").unwrap();
    table.write().set_column_encoding(0, Encoding::Dict).unwrap();
    table.write().set_column_encoding(1, Encoding::Rle).unwrap();

    // Static EXPLAIN: the scan shows the table's encodings, the filter
    // its fusible shape.
    let text = text_of(&db, "EXPLAIN SELECT k FROM t WHERE v > 3 AND k < 4");
    let scan = text.lines().find(|l| l.contains("Scan t")).unwrap();
    assert!(scan.contains("[dict]"), "scan missing [dict]:\n{text}");
    assert!(scan.contains("[rle]"), "scan missing [rle]:\n{text}");
    let filter = text.lines().find(|l| l.contains("Filter")).unwrap();
    assert!(filter.contains("[fused]"), "filter missing [fused]:\n{text}");
    // An arithmetic predicate is not fusible, and the markers say so.
    let text = text_of(&db, "EXPLAIN SELECT k FROM t WHERE v + 1 > 4");
    let filter = text.lines().find(|l| l.contains("Filter")).unwrap();
    assert!(!filter.contains("[fused]"), "arithmetic cannot fuse:\n{text}");

    // EXPLAIN ANALYZE: the executed plan carries the runtime markers.
    let text = text_of(&db, "EXPLAIN ANALYZE SELECT k, COUNT(*) FROM t WHERE k < 4 GROUP BY k");
    let scan = text.lines().find(|l| l.contains("Scan t")).unwrap();
    assert!(scan.contains("[dict]") && scan.contains("[rle]"), "analyze scan markers:\n{text}");
    let filter = text.lines().find(|l| l.contains("Filter")).unwrap();
    assert!(filter.contains("[fused]"), "analyze filter missing [fused]:\n{text}");
    let agg = text.lines().find(|l| l.contains("Aggregate")).unwrap();
    assert!(agg.contains("[dict]"), "analyze aggregate missing [dict]:\n{text}");

    // A plain-column table shows none of the markers.
    let plain = Database::new();
    plain.set_threads(1);
    seed(&plain, 500);
    let text = text_of(&plain, "EXPLAIN ANALYZE SELECT k, COUNT(*) FROM t WHERE k < 4 GROUP BY k");
    assert!(!text.contains("[dict]") && !text.contains("[rle]"), "plain claims encodings:\n{text}");
}

#[test]
fn analyze_summary_matches_the_result_cardinality() {
    let db = Database::new();
    db.set_threads(1);
    seed(&db, 200);
    // The underlying SELECT returns 5 groups; ANALYZE must report exactly
    // the rows the statement would have produced.
    let text = text_of(&db, "EXPLAIN ANALYZE SELECT k, COUNT(*) FROM t GROUP BY k");
    assert!(text.contains("execution: 5 rows"), "wrong summary:\n{text}");
}
