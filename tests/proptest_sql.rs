//! Property-based tests over the SQL engine: invariants that must hold
//! for arbitrary data, exercised through the public API.

use mlcs::columnar::sql::{bind, parse};
use mlcs::columnar::{verify_statement, Database, Value};
use proptest::prelude::*;

/// Builds a database with one integer/float table from generated rows.
fn db_with_rows(rows: &[(i32, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (k INTEGER, x DOUBLE)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows.iter().map(|(k, x)| format!("({k}, {x})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    }
    db
}

/// Builds a database whose table `t` carries an integer, a float, and a
/// string column, for the plan-verifier property below.
fn db_with_mixed_rows(rows: &[(i32, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (k INTEGER, x DOUBLE, s VARCHAR)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> =
            rows.iter().enumerate().map(|(i, (k, x))| format!("({k}, {x}, 'a{i}')")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    }
    db
}

/// Deterministically assembles a SELECT statement from random words,
/// drawing every fragment from menus the binder accepts over
/// `t (k INTEGER, x DOUBLE, s VARCHAR)`. Exercises projections, builtins,
/// CASE, predicates (incl. scalar subqueries), joins, grouping, set ops,
/// ordering, and limits.
fn build_query(r: &[u64]) -> String {
    let pick = |w: u64, menu: &[&str]| menu[(w % menu.len() as u64) as usize].to_owned();
    let exprs = [
        "k",
        "x",
        "s",
        "k + 1",
        "x * 2.0",
        "k % 7",
        "-k",
        "ABS(k)",
        "ROUND(x)",
        "UPPER(s)",
        "LENGTH(s)",
        "COALESCE(k, 0)",
        "CASE WHEN k > 0 THEN 'pos' ELSE 'neg' END",
        "CAST(k AS DOUBLE)",
        "s || '!'",
    ];
    let preds = [
        "k > 3",
        "x < 100.0",
        "s LIKE 'a%'",
        "k IS NOT NULL",
        "k BETWEEN 1 AND 5",
        "k IN (1, 2, 3)",
        "NOT (k = 2)",
        "x > (SELECT AVG(x) FROM t)",
        "k > 1 AND x < 50.0",
    ];
    let aggs = ["COUNT(*)", "SUM(k)", "AVG(x)", "MIN(s)", "MAX(k)", "COUNT(DISTINCT k)"];
    let shape = r.first().copied().unwrap_or(0) % 4;
    let w = |i: usize| r.get(i).copied().unwrap_or(0);
    match shape {
        0 => {
            // Plain projection with optional filter/order/limit.
            let mut q = format!("SELECT {}, {} FROM t", pick(w(1), &exprs), pick(w(2), &exprs));
            if w(3) % 2 == 0 {
                q += &format!(" WHERE {}", pick(w(4), &preds));
            }
            if w(5) % 2 == 0 {
                q += " ORDER BY 1";
            }
            if w(6) % 3 == 0 {
                q += &format!(" LIMIT {}", w(7) % 10);
            }
            q
        }
        1 => {
            // Grouped aggregation with optional HAVING.
            let mut q = format!("SELECT k % 3 AS g, {} FROM t GROUP BY k % 3", pick(w(1), &aggs));
            if w(2) % 2 == 0 {
                q += " HAVING COUNT(*) > 0";
            }
            if w(3) % 2 == 0 {
                q += " ORDER BY g";
            }
            q
        }
        2 => {
            // Self-join on the integer key.
            let join_preds = [
                "a.k > 3",
                "b.x < 100.0",
                "a.s LIKE 'a%'",
                "a.k IS NOT NULL",
                "a.k BETWEEN 1 AND 5",
                "b.k IN (1, 2, 3)",
                "NOT (a.k = 2)",
            ];
            format!(
                "SELECT a.{}, b.{} FROM t a JOIN t b ON a.k = b.k WHERE {}",
                pick(w(1), &["k", "x", "s"]),
                pick(w(2), &["k", "x", "s"]),
                pick(w(3), &join_preds),
            )
        }
        _ => {
            // UNION ALL of two compatible branches.
            format!(
                "SELECT {} FROM t UNION ALL SELECT {} FROM t WHERE {}",
                pick(w(1), &["k", "x", "k + 1"]),
                pick(w(2), &["k", "x", "k * 2"]),
                pick(w(3), &preds[..7]),
            )
        }
    }
}

/// Builds the same NULL-heavy mixed table in two databases: one pinned to
/// the serial executor, one forced onto the morsel-parallel path.
fn serial_parallel_pair(rows: &[(Option<i32>, Option<f64>)]) -> (Database, Database) {
    let serial = Database::new();
    serial.set_threads(1);
    let parallel = Database::new();
    parallel.set_threads(4);
    parallel.set_parallel_threshold(1);
    for db in [&serial, &parallel] {
        db.execute("CREATE TABLE t (k INTEGER, x DOUBLE, s VARCHAR)").unwrap();
        if !rows.is_empty() {
            let values: Vec<String> = rows
                .iter()
                .enumerate()
                .map(|(i, (k, x))| {
                    let k = k.map_or("NULL".to_owned(), |v| v.to_string());
                    let x = x.map_or("NULL".to_owned(), |v| v.to_string());
                    let s = if i % 5 == 0 { "NULL".to_owned() } else { format!("'a{i}'") };
                    format!("({k}, {x}, {s})")
                })
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
        }
    }
    (serial, parallel)
}

/// Value equality with a relative tolerance for doubles: the parallel
/// aggregate sums float partials per morsel, which is a different (but
/// equally valid) association than the serial fold.
fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float64(x), Value::Float64(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    }
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Finite, modest-magnitude doubles that render/parse exactly enough
    // for SQL literal round trips.
    (-1.0e9..1.0e9f64).prop_map(|v| (v * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COUNT(*) equals the number of inserted rows.
    #[test]
    fn count_star_matches_inserts(rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60)) {
        let db = db_with_rows(&rows);
        let n = db.query_value("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(n, Value::Int64(rows.len() as i64));
    }

    /// Filtering partitions rows: |k < c| + |k >= c| == |t|.
    #[test]
    fn filter_partitions(
        rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60),
        c in any::<i32>(),
    ) {
        let db = db_with_rows(&rows);
        let lt = db.query(&format!("SELECT * FROM t WHERE k < {c}")).unwrap().rows();
        let ge = db.query(&format!("SELECT * FROM t WHERE k >= {c}")).unwrap().rows();
        prop_assert_eq!(lt + ge, rows.len());
    }

    /// GROUP BY COUNT sums back to the total row count, and the group
    /// count equals the number of distinct keys.
    #[test]
    fn group_counts_sum_to_total(rows in proptest::collection::vec((0i32..10, finite_f64()), 1..80)) {
        let db = db_with_rows(&rows);
        let g = db.query("SELECT k, COUNT(*) AS n FROM t GROUP BY k").unwrap();
        let total: i64 = (0..g.rows())
            .map(|r| g.row(r)[1].as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        let distinct: std::collections::HashSet<i32> = rows.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(g.rows(), distinct.len());
    }

    /// ORDER BY produces a sorted permutation of the input.
    #[test]
    fn order_by_sorts(rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60)) {
        let db = db_with_rows(&rows);
        let out = db.query("SELECT k FROM t ORDER BY k").unwrap();
        prop_assert_eq!(out.rows(), rows.len());
        let got: Vec<i64> = (0..out.rows()).map(|r| out.row(r)[0].as_i64().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|(k, _)| *k as i64).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// LIMIT/OFFSET never exceed bounds and compose like slicing.
    #[test]
    fn limit_offset_slices(
        rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..40),
        limit in 0usize..50,
        offset in 0usize..50,
    ) {
        let db = db_with_rows(&rows);
        let all = db.query("SELECT k FROM t ORDER BY k, x").unwrap();
        let page = db
            .query(&format!("SELECT k FROM t ORDER BY k, x LIMIT {limit} OFFSET {offset}"))
            .unwrap();
        let start = offset.min(rows.len());
        let expect = limit.min(rows.len() - start);
        prop_assert_eq!(page.rows(), expect);
        for i in 0..page.rows() {
            prop_assert_eq!(page.row(i)[0].clone(), all.row(start + i)[0].clone());
        }
    }

    /// DELETE + COUNT agree; DELETE everything leaves zero rows.
    #[test]
    fn delete_is_exact(
        rows in proptest::collection::vec((0i32..20, finite_f64()), 0..50),
        c in 0i32..20,
    ) {
        let db = db_with_rows(&rows);
        let expect_deleted = rows.iter().filter(|(k, _)| *k == c).count();
        let r = db.execute(&format!("DELETE FROM t WHERE k = {c}")).unwrap();
        prop_assert_eq!(r.rows_affected(), expect_deleted);
        let remaining = db.query_value("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(remaining, Value::Int64((rows.len() - expect_deleted) as i64));
    }

    /// A self-join on a unique key returns exactly the original rows.
    #[test]
    fn unique_self_join_is_identity(n in 0usize..40) {
        let db = Database::new();
        db.execute("CREATE TABLE u (id INTEGER, v INTEGER)").unwrap();
        if n > 0 {
            let values: Vec<String> = (0..n).map(|i| format!("({i}, {})", i * 7)).collect();
            db.execute(&format!("INSERT INTO u VALUES {}", values.join(","))).unwrap();
        }
        let out = db
            .query("SELECT a.id, b.v FROM u a JOIN u b ON a.id = b.id")
            .unwrap();
        prop_assert_eq!(out.rows(), n);
    }

    /// SUM over an integer column equals the reference sum.
    #[test]
    fn sum_matches_reference(rows in proptest::collection::vec((-1000i32..1000, finite_f64()), 1..60)) {
        let db = db_with_rows(&rows);
        let s = db.query_value("SELECT SUM(k) FROM t").unwrap();
        let expect: i64 = rows.iter().map(|(k, _)| *k as i64).sum();
        prop_assert_eq!(s, Value::Int64(expect));
    }

    /// UNION ALL concatenates exactly.
    #[test]
    fn union_all_concatenates(
        a in proptest::collection::vec((any::<i32>(), finite_f64()), 0..30),
        b in proptest::collection::vec((any::<i32>(), finite_f64()), 0..30),
    ) {
        let db = db_with_rows(&a);
        db.execute("CREATE TABLE t2 (k INTEGER, x DOUBLE)").unwrap();
        if !b.is_empty() {
            let values: Vec<String> = b.iter().map(|(k, x)| format!("({k}, {x})")).collect();
            db.execute(&format!("INSERT INTO t2 VALUES {}", values.join(","))).unwrap();
        }
        let out = db
            .query("SELECT k FROM t UNION ALL SELECT k FROM t2")
            .unwrap();
        prop_assert_eq!(out.rows(), a.len() + b.len());
    }

    /// Every statement the binder accepts produces a plan the static
    /// verifier passes, and executing it returns a Result (no panics).
    #[test]
    fn binder_accepted_statements_verify_and_execute(
        rows in proptest::collection::vec((-50i32..50, finite_f64()), 0..20),
        words in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let db = db_with_mixed_rows(&rows);
        let sql = build_query(&words);
        let stmt = parse(&sql).unwrap();
        // The generator aims for bindable SQL, but a binder rejection is a
        // valid outcome — only panics and verifier/binder disagreements are
        // failures.
        if let Ok(bound) = bind(stmt, db.catalog(), db.functions()) {
            let verified = verify_statement(&bound, db.functions());
            prop_assert!(
                verified.is_ok(),
                "verifier rejected a binder-accepted statement: {sql}\n{:?}",
                verified.err()
            );
            // Execution may fail with a typed error (e.g. a runtime
            // cast), but must never panic.
            let _ = db.execute(&sql);
        }
    }

    /// Any generated query produces identical results on the serial and
    /// the forced-parallel executor — filter, projection, join,
    /// aggregation, sort, and set ops, over NULL-heavy columns.
    #[test]
    fn parallel_matches_serial(
        rows in proptest::collection::vec(
            (proptest::option::of(-50i32..50), proptest::option::of(finite_f64())),
            0..40,
        ),
        words in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let (serial, parallel) = serial_parallel_pair(&rows);
        let sql = build_query(&words);
        match (serial.query(&sql), parallel.query(&sql)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.rows(), b.rows(), "row count diverged for {}", &sql);
                for r in 0..a.rows() {
                    let (ra, rb) = (a.row(r), b.row(r));
                    prop_assert_eq!(ra.len(), rb.len(), "arity diverged for {}", &sql);
                    for (va, vb) in ra.iter().zip(&rb) {
                        prop_assert!(
                            values_close(va, vb),
                            "row {} diverged for {}: {:?} vs {:?}",
                            r, &sql, va, vb
                        );
                    }
                }
            }
            // Typed runtime errors must not depend on the executor.
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "serial/parallel disagreed on success for {sql}: serial {:?}, parallel {:?}",
                    a.map(|x| x.rows()),
                    b.map(|x| x.rows()),
                )));
            }
        }
    }
}
