//! Property-based tests over the SQL engine: invariants that must hold
//! for arbitrary data, exercised through the public API.

use mlcs::columnar::{Database, Value};
use proptest::prelude::*;

/// Builds a database with one integer/float table from generated rows.
fn db_with_rows(rows: &[(i32, f64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (k INTEGER, x DOUBLE)").unwrap();
    if !rows.is_empty() {
        let values: Vec<String> =
            rows.iter().map(|(k, x)| format!("({k}, {x})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    }
    db
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Finite, modest-magnitude doubles that render/parse exactly enough
    // for SQL literal round trips.
    (-1.0e9..1.0e9f64).prop_map(|v| (v * 100.0).round() / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COUNT(*) equals the number of inserted rows.
    #[test]
    fn count_star_matches_inserts(rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60)) {
        let db = db_with_rows(&rows);
        let n = db.query_value("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(n, Value::Int64(rows.len() as i64));
    }

    /// Filtering partitions rows: |k < c| + |k >= c| == |t|.
    #[test]
    fn filter_partitions(
        rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60),
        c in any::<i32>(),
    ) {
        let db = db_with_rows(&rows);
        let lt = db.query(&format!("SELECT * FROM t WHERE k < {c}")).unwrap().rows();
        let ge = db.query(&format!("SELECT * FROM t WHERE k >= {c}")).unwrap().rows();
        prop_assert_eq!(lt + ge, rows.len());
    }

    /// GROUP BY COUNT sums back to the total row count, and the group
    /// count equals the number of distinct keys.
    #[test]
    fn group_counts_sum_to_total(rows in proptest::collection::vec((0i32..10, finite_f64()), 1..80)) {
        let db = db_with_rows(&rows);
        let g = db.query("SELECT k, COUNT(*) AS n FROM t GROUP BY k").unwrap();
        let total: i64 = (0..g.rows())
            .map(|r| g.row(r)[1].as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        let distinct: std::collections::HashSet<i32> = rows.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(g.rows(), distinct.len());
    }

    /// ORDER BY produces a sorted permutation of the input.
    #[test]
    fn order_by_sorts(rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..60)) {
        let db = db_with_rows(&rows);
        let out = db.query("SELECT k FROM t ORDER BY k").unwrap();
        prop_assert_eq!(out.rows(), rows.len());
        let got: Vec<i64> = (0..out.rows()).map(|r| out.row(r)[0].as_i64().unwrap()).collect();
        let mut expect: Vec<i64> = rows.iter().map(|(k, _)| *k as i64).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// LIMIT/OFFSET never exceed bounds and compose like slicing.
    #[test]
    fn limit_offset_slices(
        rows in proptest::collection::vec((any::<i32>(), finite_f64()), 0..40),
        limit in 0usize..50,
        offset in 0usize..50,
    ) {
        let db = db_with_rows(&rows);
        let all = db.query("SELECT k FROM t ORDER BY k, x").unwrap();
        let page = db
            .query(&format!("SELECT k FROM t ORDER BY k, x LIMIT {limit} OFFSET {offset}"))
            .unwrap();
        let start = offset.min(rows.len());
        let expect = limit.min(rows.len() - start);
        prop_assert_eq!(page.rows(), expect);
        for i in 0..page.rows() {
            prop_assert_eq!(page.row(i)[0].clone(), all.row(start + i)[0].clone());
        }
    }

    /// DELETE + COUNT agree; DELETE everything leaves zero rows.
    #[test]
    fn delete_is_exact(
        rows in proptest::collection::vec((0i32..20, finite_f64()), 0..50),
        c in 0i32..20,
    ) {
        let db = db_with_rows(&rows);
        let expect_deleted = rows.iter().filter(|(k, _)| *k == c).count();
        let r = db.execute(&format!("DELETE FROM t WHERE k = {c}")).unwrap();
        prop_assert_eq!(r.rows_affected(), expect_deleted);
        let remaining = db.query_value("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(remaining, Value::Int64((rows.len() - expect_deleted) as i64));
    }

    /// A self-join on a unique key returns exactly the original rows.
    #[test]
    fn unique_self_join_is_identity(n in 0usize..40) {
        let db = Database::new();
        db.execute("CREATE TABLE u (id INTEGER, v INTEGER)").unwrap();
        if n > 0 {
            let values: Vec<String> = (0..n).map(|i| format!("({i}, {})", i * 7)).collect();
            db.execute(&format!("INSERT INTO u VALUES {}", values.join(","))).unwrap();
        }
        let out = db
            .query("SELECT a.id, b.v FROM u a JOIN u b ON a.id = b.id")
            .unwrap();
        prop_assert_eq!(out.rows(), n);
    }

    /// SUM over an integer column equals the reference sum.
    #[test]
    fn sum_matches_reference(rows in proptest::collection::vec((-1000i32..1000, finite_f64()), 1..60)) {
        let db = db_with_rows(&rows);
        let s = db.query_value("SELECT SUM(k) FROM t").unwrap();
        let expect: i64 = rows.iter().map(|(k, _)| *k as i64).sum();
        prop_assert_eq!(s, Value::Int64(expect));
    }

    /// UNION ALL concatenates exactly.
    #[test]
    fn union_all_concatenates(
        a in proptest::collection::vec((any::<i32>(), finite_f64()), 0..30),
        b in proptest::collection::vec((any::<i32>(), finite_f64()), 0..30),
    ) {
        let db = db_with_rows(&a);
        db.execute("CREATE TABLE t2 (k INTEGER, x DOUBLE)").unwrap();
        if !b.is_empty() {
            let values: Vec<String> = b.iter().map(|(k, x)| format!("({k}, {x})")).collect();
            db.execute(&format!("INSERT INTO t2 VALUES {}", values.join(","))).unwrap();
        }
        let out = db
            .query("SELECT k FROM t UNION ALL SELECT k FROM t2")
            .unwrap();
        prop_assert_eq!(out.rows(), a.len() + b.len());
    }
}
