//! Cross-crate integration test: the paper's complete workflow, end to
//! end, through the public API — Listings 1 and 2, model storage,
//! meta-analysis, and ensemble classification.

use mlcs::columnar::{Database, Value};
use mlcs::mlcore::register_ml_udfs;

/// A database with a separable 2-feature dataset, labels 100/200.
fn setup(n: usize) -> Database {
    let db = Database::new();
    register_ml_udfs(&db);
    db.execute("CREATE TABLE obs (id BIGINT, a DOUBLE, b DOUBLE, label INTEGER)").unwrap();
    let mut rows = Vec::new();
    for i in 0..n {
        let (c, label) = if i % 2 == 0 { (-2.0, 100) } else { (2.0, 200) };
        let j = (i as f64) * 0.003;
        rows.push(format!("({i}, {}, {}, {label})", c + j, c - j));
    }
    db.execute(&format!("INSERT INTO obs VALUES {}", rows.join(", "))).unwrap();
    db
}

#[test]
fn listing1_listing2_full_cycle() {
    let db = setup(300);

    // Listing 1: train a random forest inside the database; store the
    // returned row (classifier BLOB + metadata) as the models table.
    db.execute(
        "CREATE TABLE models AS
         SELECT * FROM train((SELECT a, b FROM obs), (SELECT label FROM obs), 16)",
    )
    .unwrap();
    assert_eq!(
        db.query_value("SELECT algorithm FROM models").unwrap(),
        Value::Varchar("random_forest".into())
    );
    let blob_bytes =
        db.query_value("SELECT OCTET_LENGTH(classifier) FROM models").unwrap().as_i64().unwrap();
    assert!(blob_bytes > 100, "model blob is only {blob_bytes} bytes");

    // Listing 2: classify using the stored model, fully in SQL.
    let acc = db
        .query_value(
            "SELECT AVG(CASE WHEN predict(a, b, (SELECT classifier FROM models)) = label
                             THEN 1.0 ELSE 0.0 END)
             FROM obs",
        )
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(acc > 0.98, "in-SQL accuracy {acc}");
}

#[test]
fn insert_select_from_train_then_predict() {
    let db = setup(100);
    db.execute("CREATE TABLE models (name VARCHAR, classifier BLOB, params VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO models
         SELECT 'rf8', classifier, parameters
         FROM train((SELECT a, b FROM obs), (SELECT label FROM obs), 8)",
    )
    .unwrap();
    let n = db
        .query(
            "SELECT predict(a, b, (SELECT classifier FROM models WHERE name = 'rf8'))
             FROM obs",
        )
        .unwrap();
    assert_eq!(n.rows(), 100);
}

#[test]
fn multiple_models_meta_analysis_and_best_selection() {
    let db = setup(240);
    // Train three different families through the generic trainer.
    db.execute("CREATE TABLE models (name VARCHAR, classifier BLOB)").unwrap();
    for (name, algo, param) in
        [("rf", "random_forest", 8), ("nb", "gaussian_nb", 0), ("knn", "knn", 3)]
    {
        db.execute(&format!(
            "INSERT INTO models
             SELECT '{name}', classifier
             FROM train_model('{algo}', (SELECT a, b FROM obs),
                              (SELECT label FROM obs), {param})"
        ))
        .unwrap();
    }
    assert_eq!(db.query_value("SELECT COUNT(*) FROM models").unwrap(), Value::Int64(3));
    // Apply every stored model to the same rows via SQL and compare: the
    // paper's "classify the same data using multiple models".
    for name in ["rf", "nb", "knn"] {
        let acc = db
            .query_value(&format!(
                "SELECT AVG(CASE WHEN predict(a, b,
                        (SELECT classifier FROM models WHERE name = '{name}')) = label
                        THEN 1.0 ELSE 0.0 END) FROM obs"
            ))
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(acc > 0.95, "{name} accuracy {acc}");
    }
}

#[test]
fn confidence_based_selection_in_sql() {
    let db = setup(200);
    db.execute(
        "CREATE TABLE m1 AS SELECT * FROM train((SELECT a, b FROM obs),
            (SELECT label FROM obs), 4)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE m2 AS SELECT * FROM train_model('gaussian_nb',
            (SELECT a, b FROM obs), (SELECT label FROM obs), 0)",
    )
    .unwrap();
    // Per-row: pick the more confident model's answer (paper §3.3).
    let out = db
        .query(
            "SELECT CASE WHEN predict_confidence(a, b, (SELECT classifier FROM m1))
                          >= predict_confidence(a, b, (SELECT classifier FROM m2))
                    THEN predict(a, b, (SELECT classifier FROM m1))
                    ELSE predict(a, b, (SELECT classifier FROM m2)) END AS pred,
                    label
             FROM obs",
        )
        .unwrap();
    let correct =
        (0..out.rows()).filter(|&r| out.row(r)[0].as_i64() == out.row(r)[1].as_i64()).count();
    assert!(correct as f64 / out.rows() as f64 > 0.95);
}

#[test]
fn models_survive_database_persistence() {
    let db = setup(100);
    db.execute(
        "CREATE TABLE models AS SELECT * FROM train((SELECT a, b FROM obs),
            (SELECT label FROM obs), 8)",
    )
    .unwrap();
    let before = db
        .query("SELECT predict(a, b, (SELECT classifier FROM models)) AS p FROM obs ORDER BY 1")
        .unwrap();

    let dir = std::env::temp_dir().join(format!("mlcs_it_persist_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    mlcs::columnar::persist::save_database(&db, &dir).unwrap();
    let db2 = Database::new();
    mlcs::columnar::persist::load_database(&db2, &dir).unwrap();
    register_ml_udfs(&db2);
    let after = db2
        .query("SELECT predict(a, b, (SELECT classifier FROM models)) AS p FROM obs ORDER BY 1")
        .unwrap();
    assert_eq!(before, after, "reloaded model must predict identically");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn preprocessing_in_sql_feeds_training() {
    // The paper's §3 point: cleaning happens in SQL before the UDF.
    let db = setup(100);
    db.execute("INSERT INTO obs VALUES (9999, NULL, 0.0, 100)").unwrap();
    // Training on the raw table fails loudly because of the NULL...
    let err = db.execute("SELECT * FROM train((SELECT a, b FROM obs), (SELECT label FROM obs), 4)");
    assert!(err.is_err(), "NULL features must be rejected, not learned from");
    // ...and succeeds after SQL cleaning.
    db.execute(
        "CREATE TABLE trained AS
         SELECT * FROM train((SELECT a, b FROM obs WHERE a IS NOT NULL),
                             (SELECT label FROM obs WHERE a IS NOT NULL), 4)",
    )
    .unwrap();
    assert_eq!(db.query_value("SELECT train_rows FROM trained").unwrap(), Value::Int64(100));
}
