//! Serving-layer suite: the epoll reactor under real concurrent load.
//!
//! Four invariants, mirroring the chaos suite's but for the multiplexed
//! path specifically:
//!
//! 1. **Correctness under fan-in** — hundreds of concurrent clients (a
//!    mix of text-protocol echo traffic and binary-protocol point
//!    predictions) each get responses byte-identical to the embedded
//!    in-process path.
//! 2. **Typed shed load** — past the admission quota, queries get a
//!    `DbError::Rejected` error frame immediately, never an untyped
//!    hang or a torn connection.
//! 3. **Plan-cache accounting** — the hit/miss counters move exactly
//!    once per lookup, and a hit is visible in `EXPLAIN ANALYZE`.
//! 4. **Fault tolerance** — the chaos injector's `net.read`/`net.write`
//!    faults replay against the reactor's nonblocking read/write points:
//!    every query returns the exact result or a typed transport error.
//!
//! The metrics registry and the fault injector are process-global, so
//! the tests serialize on a mutex (same discipline as `tests/chaos.rs`).

use mlcs::columnar::{faults, metrics, ClosureScalarUdf, Column, DataType, Database, DbError};
use mlcs::mlcore::register_ml_udfs;
use mlcs::netproto::{BinaryClient, NetConfig, RowCursor, Server, TextClient};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the tests in this binary: global registry, global injector.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    guard
}

/// Tight-but-forgiving timeouts for the concurrent tests.
fn serving_config() -> NetConfig {
    NetConfig {
        read_timeout: Some(Duration::from_secs(20)),
        write_timeout: Some(Duration::from_secs(20)),
        retry_base_delay: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

/// A database with both workload shapes: an echo table and a trained
/// model over the paper's 2-D points.
fn serving_db() -> Database {
    let db = Database::new();
    register_ml_udfs(&db);
    db.execute("CREATE TABLE t (x INTEGER, s VARCHAR)").unwrap();
    let values: Vec<String> = (0..100).map(|i| format!("({i}, 'row-{i}')")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
    db.execute(
        "INSERT INTO points VALUES (-2.0, -2.0, 0), (-1.5, -1.0, 0),
                                   (-1.0, -2.5, 0), ( 1.0,  1.5, 1),
                                   ( 2.0,  1.0, 1), ( 1.5,  2.5, 1)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE models AS SELECT * FROM train(
           (SELECT x, y FROM points), (SELECT label FROM points), 4)",
    )
    .unwrap();
    db
}

const ECHO_SQL: &str = "SELECT x, s FROM t ORDER BY x";
const PREDICT_SQL: &str = "SELECT predict(x, y, (SELECT classifier FROM models)) AS p FROM points";

fn assert_batches_equal(got: &mlcs::columnar::Batch, want: &mlcs::columnar::Batch, who: &str) {
    assert_eq!(got.rows(), want.rows(), "{who}: row count differs");
    for r in 0..want.rows() {
        assert_eq!(got.row(r), want.row(r), "{who}: row {r} differs");
    }
}

/// Hundreds of concurrent clients against one reactor server, all
/// released at once through a barrier: every response must be
/// byte-identical to the embedded (no-socket) path's answer for the same
/// statement. Odd clients run binary-protocol predictions (repeat SQL
/// text — the plan-cache hot path), even clients text-protocol echoes.
#[test]
fn concurrent_clients_match_the_embedded_path() {
    let _guard = serial();
    const CLIENTS: usize = 200;
    let db = serving_db();
    let expected_echo = RowCursor::query(&db, ECHO_SQL).unwrap().drain_to_batch().unwrap();
    let expected_pred = RowCursor::query(&db, PREDICT_SQL).unwrap().drain_to_batch().unwrap();
    let before = metrics::snapshot();
    let server = Server::start_with(db, serving_config()).unwrap();
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let expected_echo = Arc::new(expected_echo);
    let expected_pred = Arc::new(expected_pred);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let barrier = barrier.clone();
            let expected_echo = expected_echo.clone();
            let expected_pred = expected_pred.clone();
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    let mut client = TextClient::connect_with(addr, serving_config()).unwrap();
                    barrier.wait();
                    for _ in 0..3 {
                        let batch = client.query(ECHO_SQL).unwrap();
                        assert_batches_equal(&batch, &expected_echo, "echo client");
                    }
                } else {
                    let mut client = BinaryClient::connect_with(addr, serving_config()).unwrap();
                    barrier.wait();
                    for _ in 0..3 {
                        let batch = client.query(PREDICT_SQL).unwrap();
                        assert_batches_equal(&batch, &expected_pred, "predict client");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let delta = metrics::snapshot().since(&before);
    assert!(
        delta.counter("netproto.evloop.accepted") >= CLIENTS as u64,
        "reactor adopted fewer connections than clients"
    );
    assert_eq!(
        delta.counter("netproto.evloop.queries"),
        (CLIENTS * 3) as u64,
        "every client query must pass admission exactly once"
    );
    // Repeat SQL text across hundreds of clients: the plan cache must
    // have absorbed the parse→bind→optimize cost for almost all of them.
    assert!(
        delta.counter("sql.plan_cache.hits") >= (CLIENTS * 3 - 10) as u64,
        "plan cache barely hit: {} hits",
        delta.counter("sql.plan_cache.hits")
    );
    server.shutdown();
}

/// With an admission quota of one, a query arriving while another is
/// executing is shed with a typed `DbError::Rejected` — immediately, not
/// after a timeout — and the admitted query still completes.
#[test]
fn admission_quota_sheds_with_typed_rejection() {
    let _guard = serial();
    let db = serving_db();
    // A scalar UDF that sleeps: keeps the one admission slot occupied
    // long enough for the second query to arrive.
    db.register_scalar_udf(Arc::new(
        ClosureScalarUdf::new("dawdle", DataType::Int32, |args: &[Arc<Column>]| {
            std::thread::sleep(Duration::from_millis(1200));
            Ok(args[0].as_ref().clone())
        })
        .with_arity(1),
    ));
    let config = NetConfig { max_inflight_queries: 1, ..serving_config() };
    let before = metrics::snapshot();
    let server = Server::start_with(db, config).unwrap();
    let addr = server.addr();

    let slow = std::thread::spawn(move || {
        let mut client = TextClient::connect_with(addr, serving_config()).unwrap();
        client.query("SELECT dawdle(x) FROM t WHERE x = 1")
    });
    // Give the slow query time to be admitted (inflight goes 0 → 1).
    std::thread::sleep(Duration::from_millis(300));

    let mut client = TextClient::connect_with(addr, serving_config()).unwrap();
    let err = client.query("SELECT 1").unwrap_err();
    match &err {
        DbError::Rejected(reason) => {
            assert!(reason.contains("overloaded"), "rejection must say why: {reason}")
        }
        other => panic!("expected DbError::Rejected for shed load, got {other:?}"),
    }

    let slow_result = slow.join().expect("slow client panicked");
    assert_eq!(slow_result.expect("admitted query must complete").rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("netproto.evloop.shed"), 1, "exactly one query shed");

    // The shed connection is still usable once the quota frees up.
    let batch = client.query("SELECT 1").unwrap();
    assert_eq!(batch.rows(), 1);
    server.shutdown();
}

/// The plan-cache counters move exactly once per lookup: first execution
/// of a statement is one miss, re-execution one hit — and `EXPLAIN
/// ANALYZE` reports the hit without consuming it.
#[test]
fn plan_cache_counters_move_exactly_once() {
    let _guard = serial();
    let db = Database::new();
    db.execute("CREATE TABLE q (x INTEGER)").unwrap();
    db.execute("INSERT INTO q VALUES (1), (2), (3)").unwrap();

    let before = metrics::snapshot();
    assert_eq!(db.query("SELECT x FROM q ORDER BY x").unwrap().rows(), 3);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1, "first execution is one miss");
    assert_eq!(delta.counter("sql.plan_cache.hits"), 0);

    let before = metrics::snapshot();
    assert_eq!(db.query("SELECT x FROM q ORDER BY x").unwrap().rows(), 3);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.hits"), 1, "re-execution is one hit");
    assert_eq!(delta.counter("sql.plan_cache.misses"), 0);

    // EXPLAIN ANALYZE sees the cached entry and says so.
    let batch = db.query("EXPLAIN ANALYZE SELECT x FROM q ORDER BY x").unwrap();
    let text: String = (0..batch.rows()).map(|r| format!("{:?}\n", batch.row(r)[0])).collect();
    assert!(text.contains("plan cache: hit"), "EXPLAIN ANALYZE missing cache note:\n{text}");

    // DDL invalidates: the next lookup re-plans (one fresh miss).
    db.execute("CREATE TABLE unrelated (y INTEGER)").unwrap();
    let before = metrics::snapshot();
    assert_eq!(db.query("SELECT x FROM q ORDER BY x").unwrap().rows(), 3);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1, "DDL must invalidate the cache");
}

/// The chaos injector's connection faults, replayed against the
/// reactor's nonblocking read/write points: every query either returns
/// the exact fault-free result or a typed transport error, and retries
/// rescue a healthy majority.
#[test]
fn reactor_survives_injected_connection_faults() {
    let _guard = serial();
    let seed =
        std::env::var("MLCS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    println!("serving chaos seed: {seed} (set MLCS_CHAOS_SEED to replay)");
    let db = serving_db();
    let expected = RowCursor::query(&db, ECHO_SQL).unwrap().drain_to_batch().unwrap();
    let config = NetConfig { retries: 6, ..serving_config() };
    let server = Server::start_with(db, config).unwrap();

    faults::configure_str("net.read:err:0.05,net.write:err:0.04,net.read:short:0.03", seed)
        .unwrap();
    let mut ok = 0usize;
    for _ in 0..25 {
        let mut client = match TextClient::connect_with(server.addr(), config) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match client.query(ECHO_SQL) {
            Ok(batch) => {
                assert_batches_equal(&batch, &expected, "chaos client");
                ok += 1;
            }
            Err(e) => match e {
                DbError::Io(_) | DbError::Corrupt(_) | DbError::Timeout { .. } => {}
                other => panic!("untyped error through the reactor: {other:?} (seed {seed})"),
            },
        }
    }
    faults::clear();
    assert!(ok > 0, "all 25 queries failed; retries never rescued one (seed {seed})");
    server.shutdown();
}

/// Durability over the wire: a served durable database write-ahead-logs
/// every client mutation, honors `CHECKPOINT` and `SAVE '<dir>'` as
/// ordinary statements, and the directory reopens with everything the
/// clients were acknowledged — while the SAVE snapshot strict-loads
/// standalone.
#[test]
fn served_durability_statements_survive_reopen() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mlcs-serving-durable-{}", std::process::id()));
    let snap = std::env::temp_dir().join(format!("mlcs-serving-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&snap);

    {
        let (db, _) = Database::open_durable(&dir).unwrap();
        // SAVE over the wire is an arbitrary-path write on the server, so
        // it needs the explicit opt-in; this test is the trusted-client
        // deployment that flag exists for.
        let config = NetConfig { allow_remote_save: true, ..serving_config() };
        let server = Server::start_with(db, config).unwrap();
        let mut client = TextClient::connect_with(server.addr(), serving_config()).unwrap();
        client.query("CREATE TABLE kv (v BIGINT)").unwrap();
        client.query("INSERT INTO kv VALUES (1), (2)").unwrap();
        client.query("CHECKPOINT").unwrap();
        client.query("INSERT INTO kv VALUES (3)").unwrap();
        client.query(&format!("SAVE '{}'", snap.display())).unwrap();
        server.shutdown();
        // The server process "crashes" here: no orderly checkpoint, so
        // row 3 exists only in the write-ahead log.
    }

    let (fresh, report) = Database::open_durable(&dir).unwrap();
    assert!(report.damaged.is_empty(), "{:?}", report.damaged);
    assert_eq!(
        fresh.query_value("SELECT SUM(v) FROM kv").unwrap(),
        mlcs::columnar::Value::Int64(6),
        "a served commit was lost across reopen"
    );

    // The SAVE snapshot is complete and self-contained.
    let standalone = Database::new();
    mlcs::columnar::persist::load_database(&standalone, &snap).unwrap();
    assert_eq!(
        standalone.query_value("SELECT SUM(v) FROM kv").unwrap(),
        mlcs::columnar::Value::Int64(6)
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&snap);
}

/// By default a served database refuses `SAVE '<path>'` — a client
/// naming a server-side filesystem path to write a snapshot to is an
/// injection primitive, not a query — with a typed rejection, in both
/// serving modes. The gate is statement-based, not a substring match:
/// `SELECT` with "save" in a literal passes, `SAVE` buried in a
/// multi-statement batch does not, and the connection stays usable
/// afterwards. `CHECKPOINT` (which only writes inside the durable
/// directory the operator chose) stays allowed.
#[test]
fn remote_save_is_refused_unless_opted_in() {
    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("mlcs-serving-nosave-{}", std::process::id()));
    let target = std::env::temp_dir().join(format!("mlcs-serving-nosave-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&target);

    for mode in [mlcs::netproto::ServeMode::Reactor, mlcs::netproto::ServeMode::ThreadPerConn] {
        let _ = std::fs::remove_dir_all(&dir);
        let (db, _) = Database::open_durable(&dir).unwrap();
        let config = NetConfig { mode, ..serving_config() };
        let server = Server::start_with(db, config).unwrap();
        let mut client = TextClient::connect_with(server.addr(), serving_config()).unwrap();
        client.query("CREATE TABLE kv (v BIGINT)").unwrap();
        client.query("INSERT INTO kv VALUES (1)").unwrap();

        let err = client.query(&format!("SAVE '{}'", target.display())).unwrap_err();
        match &err {
            DbError::Rejected(reason) => assert!(
                reason.contains("allow_remote_save"),
                "{mode:?}: rejection must name the opt-in: {reason}"
            ),
            other => panic!("{mode:?}: expected DbError::Rejected for SAVE, got {other:?}"),
        }
        assert!(!target.exists(), "{mode:?}: refused SAVE must write nothing");
        // Buried in a batch it is still refused, and nothing in the batch
        // runs (the gate fires before execution).
        let err = client
            .query(&format!("INSERT INTO kv VALUES (2); SAVE '{}'", target.display()))
            .unwrap_err();
        assert!(matches!(err, DbError::Rejected(_)), "{mode:?}: batched SAVE got {err:?}");

        // The word in a literal is not a SAVE statement; the connection
        // still serves queries; CHECKPOINT is unaffected.
        let batch = client.query("SELECT 'save me' FROM kv").unwrap();
        assert_eq!(batch.rows(), 1, "{mode:?}");
        client.query("CHECKPOINT").unwrap();
        assert_eq!(
            client.query("SELECT COUNT(*) FROM kv").unwrap().row(0),
            vec![mlcs::columnar::Value::Int64(1)],
            "{mode:?}: batch with refused SAVE must be all-or-nothing"
        );
        server.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&target);
}
