//! Integration test: every data path (files, protocols, cursor) delivers
//! byte-identical data, so pipeline differences are purely about cost.

use mlcs::columnar::{Database, Table};
use mlcs::fileio::h5lite::{H5LiteReader, H5LiteWriter};
use mlcs::fileio::{read_csv, read_npy_dir, write_csv, write_npy_dir};
use mlcs::netproto::{BinaryClient, RowCursor, Server, TextClient};
use mlcs::voters::gen::{generate, voters_schema, VoterConfig};

#[test]
fn all_access_paths_deliver_identical_voters_data() {
    let cfg = VoterConfig { rows: 3_000, precincts: 40, features: 8, seed: 5 };
    let data = generate(&cfg).unwrap();
    let dir = std::env::temp_dir().join(format!("mlcs_it_paths_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Reference: the generated batch itself.
    let reference = &data.voters;

    // CSV.
    write_csv(&dir.join("v.csv"), reference).unwrap();
    let from_csv = read_csv(&dir.join("v.csv"), voters_schema(cfg.features)).unwrap();

    // NPY directory.
    write_npy_dir(&dir.join("v_npy"), reference).unwrap();
    let from_npy = read_npy_dir(&dir.join("v_npy")).unwrap();

    // h5lite.
    let mut w = H5LiteWriter::create(&dir.join("v.h5l")).unwrap();
    w.write_batch(reference).unwrap();
    w.finish().unwrap();
    let from_h5 = H5LiteReader::open(&dir.join("v.h5l")).unwrap().read_batch().unwrap();

    // Database + protocols.
    let db = Database::new();
    db.catalog().put_table(Table::from_batch("voters", reference.clone()), false).unwrap();
    let server = Server::start(db.clone()).unwrap();
    let from_text =
        TextClient::connect(server.addr()).unwrap().query("SELECT * FROM voters").unwrap();
    let from_bin =
        BinaryClient::connect(server.addr()).unwrap().query("SELECT * FROM voters").unwrap();
    let from_cursor =
        RowCursor::query(&db, "SELECT * FROM voters").unwrap().drain_to_batch().unwrap();
    server.shutdown();

    for (name, batch) in [
        ("csv", &from_csv),
        ("npy", &from_npy),
        ("h5lite", &from_h5),
        ("socket-text", &from_text),
        ("socket-binary", &from_bin),
        ("cursor", &from_cursor),
    ] {
        assert_eq!(batch.rows(), reference.rows(), "{name}: row count");
        assert_eq!(batch.width(), reference.width(), "{name}: column count");
        for r in [0, reference.rows() / 2, reference.rows() - 1] {
            assert_eq!(batch.row(r), reference.row(r), "{name}: row {r}");
        }
        // Exhaustive column equality (types may legitimately match since
        // all sources carry the schema).
        for c in 0..reference.width() {
            assert_eq!(
                batch.column(c).as_ref(),
                reference.column(c).as_ref(),
                "{name}: column {c} differs"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
