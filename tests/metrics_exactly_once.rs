//! The registry's counters must move exactly once per event: one
//! invocation counter tick per UDF call (not per row — the UDFs are
//! vectorized), one serialize/deserialize tick per pickle round-trip with
//! byte histograms matching the blob sizes exactly, and one tick per
//! resilience event (connection rejected, idle timeout, client retry,
//! recovered table, injected fault). The compressed-execution counters are
//! pinned too: columns encoded by the heuristic, rows through dict-code
//! fast paths, runs folded run-at-a-time, and fused kernels/rows. The
//! serving layer adds the reactor admission counters (adopted, admitted,
//! shed) and the plan cache's hit/miss pair.
//!
//! A single `#[test]` on purpose: the registry is process-global, and a
//! concurrent test in the same binary could move the very counters whose
//! deltas are asserted here.

use mlcs::columnar::parallel::lock_order::{self, TrackedMutex};
use mlcs::columnar::persist::{load_database_with, save_database, RecoveryMode};
use mlcs::columnar::{faults, metrics, Database, Value};
use mlcs::mlcore::{register_ml_udfs, StoredModel};
use mlcs::netproto::{NetConfig, Server, TextClient};
use std::time::Duration;

/// Polls until `cond` holds; server-side ticks land on worker threads, so
/// the assertions on them need a bounded wait.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let start = std::time::Instant::now();
    while start.elapsed() < Duration::from_secs(5) {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn counters_move_exactly_once_per_event() {
    let db = Database::new();
    register_ml_udfs(&db);
    db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
    db.execute(
        "INSERT INTO points VALUES (-2.0, -2.0, 0), (-1.5, -1.0, 0),
                                   (-1.0, -2.5, 0), ( 1.0,  1.5, 1),
                                   ( 2.0,  1.0, 1), ( 1.5,  2.5, 1)",
    )
    .unwrap();

    // Table UDF: one `train(...)` statement is one invocation.
    let before = metrics::snapshot();
    db.execute(
        "CREATE TABLE models AS SELECT * FROM train(
           (SELECT x, y FROM points), (SELECT label FROM points), 4)",
    )
    .unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("udf.train.invocations"), 1, "train ticked more than once");
    assert_eq!(delta.counter("udf.table.invocations"), 1);

    // Scalar UDF: one vectorized invocation covers all six rows.
    let before = metrics::snapshot();
    let out =
        db.query("SELECT predict(x, y, (SELECT classifier FROM models)) AS p FROM points").unwrap();
    assert_eq!(out.rows(), 6);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("udf.predict.invocations"), 1, "predict is vectorized: one call");
    assert_eq!(delta.counter("udf.scalar.invocations"), 1);
    assert_eq!(delta.counter("udf.predict.rows"), 6, "all rows in the one call");

    // Pickle round-trip: one deserialize tick sized to the blob ...
    let blob = match db.query_value("SELECT classifier FROM models").unwrap() {
        Value::Blob(b) => b,
        other => panic!("classifier column holds {other:?}"),
    };
    let before = metrics::snapshot();
    let model = StoredModel::from_blob(&blob).unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("pickle.deserialize.invocations"), 1);
    assert_eq!(delta.histogram("pickle.deserialize.bytes").map(|h| h.sum), Some(blob.len() as u64));
    assert_eq!(delta.counter("pickle.serialize.invocations"), 0, "no serialize on the read path");

    // ... and one serialize tick sized to the re-pickled blob.
    let before = metrics::snapshot();
    let blob2 = model.to_blob();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("pickle.serialize.invocations"), 1);
    assert_eq!(delta.histogram("pickle.serialize.bytes").map(|h| h.sum), Some(blob2.len() as u64));
    assert_eq!(
        delta.counter("pickle.deserialize.invocations"),
        0,
        "no deserialize on the write path"
    );

    // Connection cap: the client over the 1-connection limit is turned
    // away with exactly one rejection tick, counted at accept time.
    let ndb = Database::new();
    ndb.execute("CREATE TABLE r (x INTEGER)").unwrap();
    ndb.execute("INSERT INTO r VALUES (7)").unwrap();
    let server =
        Server::start_with(ndb.clone(), NetConfig { max_connections: 1, ..NetConfig::default() })
            .unwrap();
    let mut first = TextClient::connect(server.addr()).unwrap();
    assert_eq!(first.query("SELECT x FROM r").unwrap().rows(), 1); // holds the slot
    let before = metrics::snapshot();
    let second = TextClient::connect(server.addr()); // rejected at accept
    wait_for("the conn_rejected tick", || {
        metrics::snapshot().since(&before).counter("netproto.conn_rejected") == 1
    });
    drop(second);
    drop(first);
    server.shutdown();

    // Reactor admission: one client query is one adopted connection, one
    // admitted query, and nothing shed.
    let server = Server::start(ndb.clone()).unwrap();
    let before = metrics::snapshot();
    let mut rc = TextClient::connect(server.addr()).unwrap();
    assert_eq!(rc.query("SELECT x FROM r").unwrap().rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("netproto.evloop.accepted"), 1, "one connection adopted");
    assert_eq!(delta.counter("netproto.evloop.queries"), 1, "one query admitted");
    assert_eq!(delta.counter("netproto.evloop.shed"), 0, "nothing shed under the quota");
    drop(rc);
    server.shutdown();

    // Plan cache: the first execution of a statement is exactly one miss,
    // the second exactly one hit (parse, bind, and optimize skipped).
    let cdb = Database::new();
    cdb.execute("CREATE TABLE pc (x INTEGER)").unwrap();
    cdb.execute("INSERT INTO pc VALUES (1)").unwrap();
    let before = metrics::snapshot();
    assert_eq!(cdb.query("SELECT x FROM pc").unwrap().rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1, "first execution is one miss");
    assert_eq!(delta.counter("sql.plan_cache.hits"), 0);
    let before = metrics::snapshot();
    assert_eq!(cdb.query("SELECT x FROM pc").unwrap().rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.hits"), 1, "re-execution is one hit");
    assert_eq!(delta.counter("sql.plan_cache.misses"), 0);

    // Idle timeout: a connection that sends nothing costs exactly one
    // timeout tick when the server-side read deadline expires.
    let server = Server::start_with(
        ndb.clone(),
        NetConfig { read_timeout: Some(Duration::from_millis(150)), ..NetConfig::default() },
    )
    .unwrap();
    let before = metrics::snapshot();
    let idle = TextClient::connect(server.addr()).unwrap();
    wait_for("the idle-timeout tick", || {
        metrics::snapshot().since(&before).counter("netproto.timeouts") == 1
    });
    drop(idle);
    server.shutdown();

    // Client retry: one deterministically injected write fault costs one
    // retry tick and one injection tick — then the query succeeds.
    let server = Server::start(ndb.clone()).unwrap();
    let mut client = TextClient::connect_with(
        server.addr(),
        NetConfig { retry_base_delay: Duration::from_millis(1), ..NetConfig::default() },
    )
    .unwrap();
    let before = metrics::snapshot();
    faults::configure_str("net.write:err:1:1", 1).unwrap();
    let batch = client.query("SELECT x FROM r").unwrap();
    faults::clear();
    assert_eq!(batch.rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("netproto.retries"), 1, "one injected fault, one retry");
    assert_eq!(delta.counter("faults.injected.net.write.err"), 1);
    drop(client);
    server.shutdown();

    // Recovery: each table skipped by a recovering load is one tick.
    let dir = std::env::temp_dir().join(format!("mlcs-metrics-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pdb = Database::new();
    pdb.execute("CREATE TABLE stored (x INTEGER)").unwrap();
    pdb.execute("INSERT INTO stored VALUES (1)").unwrap();
    save_database(&pdb, &dir).unwrap();
    let table_file = dir.join("stored.mlcstbl");
    let mut bytes = std::fs::read(&table_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&table_file, bytes).unwrap();
    let before = metrics::snapshot();
    let report = load_database_with(&Database::new(), &dir, RecoveryMode::Recover).unwrap();
    assert_eq!(report.damaged.len(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("persist.recovered_tables"), 1);
    let _ = std::fs::remove_dir_all(&dir);

    // Lock-order tracking: one A→B then B→A inversion is exactly one
    // violations tick in debug builds (release builds compile the
    // tracker's bookkeeping out, so the counter must not move).
    let a = TrackedMutex::new("pin.order.a", ());
    let b = TrackedMutex::new("pin.order.b", ());
    lock_order::reset();
    let before = metrics::snapshot();
    {
        let _ga = a.lock();
        let _gb = b.lock(); // records the order a → b
    }
    {
        let _gb = b.lock();
        let _ga = a.lock(); // inverts it: the one violation
    }
    let delta = metrics::snapshot().since(&before);
    let expected = if cfg!(debug_assertions) { 1 } else { 0 };
    assert_eq!(
        delta.counter("analyze.lock_order.violations"),
        expected,
        "one inversion, one tick (debug builds only)"
    );
    lock_order::reset();

    // Compressed execution, all on the serial paths so the deltas are
    // exact: a bulk load auto-encodes exactly the columns that pay
    // (low-NDV → dict, long runs → RLE, all-distinct stays plain) ...
    use mlcs::columnar::exec::{filter_sel, hash_aggregate, AggCall, AggFunc};
    use mlcs::columnar::expr::{BinaryOp, Expr};
    use mlcs::columnar::{Batch, Column, Table};
    let n = 2048;
    let batch = Batch::from_columns(vec![
        ("k", Column::from_i32s((0..n).map(|i| i % 7).collect())),
        ("r", Column::from_i32s((0..n).map(|i| i / 256).collect())),
        ("v", Column::from_i32s((0..n).collect())),
    ])
    .unwrap();
    let before = metrics::snapshot();
    let table = Table::from_batch("enc", batch);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(
        delta.counter("exec.encoding.columns_encoded"),
        2,
        "k dict-encodes, r RLE-encodes, all-distinct v stays plain"
    );

    // ... a fusible predicate over the dict column compiles one kernel
    // that answers every row off one per-distinct-value lookup table ...
    let scan = table.scan();
    let pred = Expr::binary(BinaryOp::Lt, Expr::col(0), Expr::lit(3i32));
    let before = metrics::snapshot();
    let (sel, stats) = filter_sel(&scan, &pred, None).unwrap();
    assert!(stats.fused, "comparison over a dict column must fuse");
    assert_eq!(sel.len() as i32, 293 * 3, "residues 0..3 appear 293 times in 0..2048");
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("expr.fused.kernels"), 1, "one predicate, one kernel");
    assert_eq!(delta.counter("expr.fused.rows"), n as u64);
    assert_eq!(delta.counter("exec.encoding.dict_rows"), n as u64, "one dict leaf");

    // ... grouping by the dict column takes group ids off the codes ...
    let count_star = AggCall { func: AggFunc::CountStar, arg: None, distinct: false };
    let before = metrics::snapshot();
    let grouped = hash_aggregate(&scan, &[0], &[count_star]).unwrap();
    assert_eq!(grouped.rows(), 7);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("exec.encoding.dict_rows"), n as u64);
    assert_eq!(delta.counter("exec.encoding.rle_runs"), 0, "no RLE column in the group-by");

    // ... and an ungrouped integer SUM over the RLE column folds its 8
    // runs instead of touching 2048 rows.
    let sum_r = AggCall { func: AggFunc::Sum, arg: Some(1), distinct: false };
    let before = metrics::snapshot();
    let summed = hash_aggregate(&scan, &[], &[sum_r]).unwrap();
    assert_eq!(summed.row(0)[0], Value::Int64(256 * 28), "256 of each of 0..=7");
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("exec.encoding.rle_runs"), 8, "one fold per run");

    // Statistics & cost-based optimization. The first append to a fresh
    // table lands on the encoding sweep, which recomputes statistics
    // exactly once.
    let sdb = Database::new();
    sdb.execute("CREATE TABLE st (x INTEGER)").unwrap();
    let before = metrics::snapshot();
    sdb.execute("INSERT INTO st VALUES (1), (5), (9)").unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.stats.built"), 1, "first append is one stats sweep");

    // Bare MIN/MAX/COUNT over a scan is answered straight from the
    // statistics — one answered_aggregates tick — and such plans are
    // never cached (their literals go stale on the next insert), so
    // every execution is one miss and zero hits.
    let before = metrics::snapshot();
    let agg = sdb.query("SELECT MIN(x), MAX(x), COUNT(*) FROM st").unwrap();
    assert_eq!(agg.row(0), vec![Value::Int32(1), Value::Int32(9), Value::Int64(3)]);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.stats.answered_aggregates"), 1, "answered from stats once");
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1);
    let before = metrics::snapshot();
    sdb.query("SELECT MIN(x), MAX(x), COUNT(*) FROM st").unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1, "stats-answered plans never cache");
    assert_eq!(delta.counter("sql.plan_cache.hits"), 0);

    // A skewed join (1-row left, 4-row right) is one build-side swap.
    sdb.execute("CREATE TABLE dim (k INTEGER)").unwrap();
    sdb.execute("INSERT INTO dim VALUES (1)").unwrap();
    sdb.execute("CREATE TABLE fact (k INTEGER)").unwrap();
    sdb.execute("INSERT INTO fact VALUES (1), (1), (2), (3)").unwrap();
    let before = metrics::snapshot();
    let out = sdb.query("SELECT dim.k FROM dim JOIN fact ON dim.k = fact.k").unwrap();
    assert_eq!(out.rows(), 2);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.cost.build_side_swaps"), 1, "small left side becomes build");

    // A weak range conjunct ahead of a selective equality is one
    // conjunct reorder (the equality is hoisted to run first).
    let before = metrics::snapshot();
    let out = sdb.query("SELECT k FROM fact WHERE k > 0 AND k = 3").unwrap();
    assert_eq!(out.rows(), 1);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.cost.conjunct_reorders"), 1, "equality hoisted first");

    // A three-table inner chain under COUNT(*) is one join reorder
    // (the 1-row table should drive the chain, not the 4-row one).
    sdb.execute("CREATE TABLE j3 (k INTEGER)").unwrap();
    sdb.execute("INSERT INTO j3 VALUES (1), (2)").unwrap();
    let before = metrics::snapshot();
    let n = sdb
        .query_value(
            "SELECT COUNT(*) FROM fact JOIN dim ON fact.k = dim.k JOIN j3 ON fact.k = j3.k",
        )
        .unwrap();
    assert_eq!(n, Value::Int64(2));
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.cost.join_reorders"), 1, "chain rebuilt smallest-first");

    // A cached plan whose table then doubles is dropped on lookup and
    // re-optimized: one reoptimized tick, a miss rather than a hit.
    sdb.query("SELECT k FROM j3").unwrap(); // populates the cache
    sdb.execute("INSERT INTO j3 VALUES (3), (4)").unwrap(); // 2 → 4 rows: 2× growth
    let before = metrics::snapshot();
    let out = sdb.query("SELECT k FROM j3").unwrap();
    assert_eq!(out.rows(), 4);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("sql.cost.reoptimized"), 1, "2x growth drops the cached plan");
    assert_eq!(delta.counter("sql.plan_cache.misses"), 1);
    assert_eq!(delta.counter("sql.plan_cache.hits"), 0);

    // Durability: one statement on a durable database is exactly one WAL
    // record — one append tick, one commit fsync, and a byte count that
    // matches the log file's observed growth to the byte.
    let wdir = std::env::temp_dir().join(format!("mlcs-metrics-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wdir);
    let (wdb, _) = Database::open_durable(&wdir).unwrap();
    wdb.execute("CREATE TABLE w (x INTEGER)").unwrap();
    let log_path = wdir.join("wal.mlcslog");
    let len_before = std::fs::metadata(&log_path).unwrap().len();
    let before = metrics::snapshot();
    wdb.execute("INSERT INTO w VALUES (1), (2)").unwrap();
    let delta = metrics::snapshot().since(&before);
    let grown = std::fs::metadata(&log_path).unwrap().len() - len_before;
    assert_eq!(delta.counter("wal.appends"), 1, "one statement, one record");
    assert_eq!(delta.counter("wal.fsyncs"), 1, "one commit, one fsync");
    assert_eq!(delta.counter("wal.bytes"), grown, "byte counter matches log growth exactly");

    // One CHECKPOINT is one fold tick.
    let before = metrics::snapshot();
    wdb.execute("CHECKPOINT").unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("wal.checkpoints"), 1, "one CHECKPOINT, one tick");

    // Reopen: the checkpoint marker plus one post-checkpoint insert is
    // exactly two replayed records and no truncation.
    wdb.execute("INSERT INTO w VALUES (3)").unwrap();
    drop(wdb);
    let before = metrics::snapshot();
    let (wdb, report) = Database::open_durable(&wdir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("persist.replayed_records"), 2, "marker + one insert");
    assert_eq!(delta.counter("persist.truncated_tail"), 0, "the log was clean");
    assert_eq!(wdb.query_value("SELECT COUNT(*) FROM w").unwrap(), Value::Int64(3));

    // A torn log tail (crash mid-commit) is one truncation event on the
    // recovering open, and the torn statement is gone — never partial.
    wdb.execute("INSERT INTO w VALUES (4)").unwrap();
    drop(wdb);
    let log = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &log[..log.len() - 3]).unwrap();
    let before = metrics::snapshot();
    let (wdb, report) = Database::open_durable(&wdir).unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("persist.truncated_tail"), 1, "one truncation event");
    assert!(report.truncated_tail > 0, "the torn record's surviving bytes were discarded");
    assert_eq!(
        wdb.query_value("SELECT COUNT(*) FROM w").unwrap(),
        Value::Int64(3),
        "the torn statement vanished whole"
    );
    drop(wdb);
    let _ = std::fs::remove_dir_all(&wdir);

    // A flipped byte inside a checkpointed page is one checksum-failure
    // tick: the damaged table is skipped with a report, never loaded wrong.
    let pgdir = std::env::temp_dir().join(format!("mlcs-metrics-page-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&pgdir);
    let (pgdb, _) = Database::open_durable(&pgdir).unwrap();
    pgdb.execute("CREATE TABLE pg (x INTEGER)").unwrap();
    pgdb.execute("INSERT INTO pg VALUES (1)").unwrap();
    pgdb.execute("CHECKPOINT").unwrap();
    drop(pgdb);
    // Page files are versioned by the checkpoint LSN; find the one
    // generation the fold above left behind.
    let page_file = std::fs::read_dir(&pgdir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().ends_with(".mlcspg"))
        .expect("checkpoint wrote a page file");
    let mut pb = std::fs::read(&page_file).unwrap();
    pb[18] ^= 0xFF; // a payload byte of page 0, past the 16-byte header
    std::fs::write(&page_file, pb).unwrap();
    let before = metrics::snapshot();
    let (_pgdb, report) = Database::open_durable(&pgdir).unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("persist.checksum_failures"), 1, "one failing file, one tick");
    assert_eq!(report.checksum_failures, 1);
    assert_eq!(report.damaged.len(), 1, "the table is reported, not silently wrong");
    let _ = std::fs::remove_dir_all(&pgdir);
}
