//! The registry's counters must move exactly once per event: one
//! invocation counter tick per UDF call (not per row — the UDFs are
//! vectorized) and one serialize/deserialize tick per pickle round-trip,
//! with byte histograms matching the blob sizes exactly.
//!
//! A single `#[test]` on purpose: the registry is process-global, and a
//! concurrent test in the same binary could move the very counters whose
//! deltas are asserted here.

use mlcs::columnar::{metrics, Database, Value};
use mlcs::mlcore::{register_ml_udfs, StoredModel};

#[test]
fn counters_move_exactly_once_per_event() {
    let db = Database::new();
    register_ml_udfs(&db);
    db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
    db.execute(
        "INSERT INTO points VALUES (-2.0, -2.0, 0), (-1.5, -1.0, 0),
                                   (-1.0, -2.5, 0), ( 1.0,  1.5, 1),
                                   ( 2.0,  1.0, 1), ( 1.5,  2.5, 1)",
    )
    .unwrap();

    // Table UDF: one `train(...)` statement is one invocation.
    let before = metrics::snapshot();
    db.execute(
        "CREATE TABLE models AS SELECT * FROM train(
           (SELECT x, y FROM points), (SELECT label FROM points), 4)",
    )
    .unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("udf.train.invocations"), 1, "train ticked more than once");
    assert_eq!(delta.counter("udf.table.invocations"), 1);

    // Scalar UDF: one vectorized invocation covers all six rows.
    let before = metrics::snapshot();
    let out =
        db.query("SELECT predict(x, y, (SELECT classifier FROM models)) AS p FROM points").unwrap();
    assert_eq!(out.rows(), 6);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("udf.predict.invocations"), 1, "predict is vectorized: one call");
    assert_eq!(delta.counter("udf.scalar.invocations"), 1);
    assert_eq!(delta.counter("udf.predict.rows"), 6, "all rows in the one call");

    // Pickle round-trip: one deserialize tick sized to the blob ...
    let blob = match db.query_value("SELECT classifier FROM models").unwrap() {
        Value::Blob(b) => b,
        other => panic!("classifier column holds {other:?}"),
    };
    let before = metrics::snapshot();
    let model = StoredModel::from_blob(&blob).unwrap();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("pickle.deserialize.invocations"), 1);
    assert_eq!(delta.histogram("pickle.deserialize.bytes").map(|h| h.sum), Some(blob.len() as u64));
    assert_eq!(delta.counter("pickle.serialize.invocations"), 0, "no serialize on the read path");

    // ... and one serialize tick sized to the re-pickled blob.
    let before = metrics::snapshot();
    let blob2 = model.to_blob();
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("pickle.serialize.invocations"), 1);
    assert_eq!(delta.histogram("pickle.serialize.bytes").map(|h| h.sum), Some(blob2.len() as u64));
    assert_eq!(
        delta.counter("pickle.deserialize.invocations"),
        0,
        "no deserialize on the write path"
    );
}
