//! Chaos suite: end-to-end resilience invariants under injected faults.
//!
//! Every test asserts some subset of the four invariants the resilience
//! layer promises:
//!
//! 1. **No hangs** — every operation completes; a watchdog aborts the
//!    process if a test wedges instead of timing out.
//! 2. **No panic escapes** a public API: a panicking UDF costs the client
//!    one `Error` frame, never the connection or the server.
//! 3. **Typed errors only** — failures surface as `DbError` variants, with
//!    socket deadline expiries and query deadlines as `DbError::Timeout`,
//!    and deliberate shed load (connection cap, admission control) as
//!    `DbError::Rejected` — never a stringly `Io` a client would mistake
//!    for a torn connection.
//! 4. **Byte-identical retried results** — a query that succeeds after
//!    client retries returns exactly the fault-free result.
//!
//! The fault injector and the metrics registry are process-global, so the
//! tests serialize on a mutex and disarm the injector on drop (even when
//! a test panics). The fault seed comes from `MLCS_CHAOS_SEED` (CI runs a
//! fixed seed plus a randomized one) and is printed so any failure can be
//! replayed exactly.

use mlcs::columnar::{
    faults, metrics, ClosureScalarUdf, Column, DataType, Database, DbError, Value,
};
use mlcs::mlcore::{register_ml_udfs, StoredModel};
use mlcs::netproto::{BinaryClient, NetConfig, Server, TextClient};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the chaos tests (the injector and metrics are global) and
/// guarantees the injector is disarmed when the test exits, pass or fail.
struct TestGuard {
    _lock: MutexGuard<'static, ()>,
    _watchdog: Watchdog,
}

impl TestGuard {
    fn arm(test: &'static str) -> TestGuard {
        static LOCK: Mutex<()> = Mutex::new(());
        let lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        TestGuard { _lock: lock, _watchdog: Watchdog::arm(test) }
    }
}

impl Drop for TestGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

/// Aborts the whole process if a test runs longer than its budget — a
/// hang must fail loudly, not stall the suite forever.
struct Watchdog {
    done: mpsc::Sender<()>,
}

impl Watchdog {
    fn arm(test: &'static str) -> Watchdog {
        let (done, rx) = mpsc::channel();
        std::thread::spawn(move || {
            if let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(Duration::from_secs(120))
            {
                eprintln!("chaos watchdog: test '{test}' exceeded 120s — aborting (hang)");
                std::process::abort();
            }
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.done.send(());
    }
}

/// The chaos seed: `MLCS_CHAOS_SEED` if set (the randomized CI job), a
/// fixed default otherwise. Printed so failures replay exactly.
fn chaos_seed() -> u64 {
    let seed =
        std::env::var("MLCS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    println!("chaos seed: {seed} (set MLCS_CHAOS_SEED to replay)");
    seed
}

/// A failure observed through the network stack must be a typed transport
/// or deadline error — never a panic, never a stringly untyped surprise.
fn assert_transport_error(e: &DbError, seed: u64) {
    match e {
        DbError::Io(_) | DbError::Corrupt(_) | DbError::Timeout { .. } => {}
        other => panic!("untyped/unexpected error category {other:?} (seed {seed})"),
    }
}

/// Tight timeouts so injected connection faults convert to fast typed
/// errors instead of multi-second stalls.
fn chaos_net_config() -> NetConfig {
    NetConfig {
        read_timeout: Some(Duration::from_secs(2)),
        write_timeout: Some(Duration::from_secs(2)),
        retries: 6,
        retry_base_delay: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn seeded_db(rows: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INTEGER, s VARCHAR)").unwrap();
    let values: Vec<String> = (0..rows).map(|i| format!("({i}, 'row-{i}')")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(","))).unwrap();
    db
}

fn assert_batches_equal(got: &mlcs::columnar::Batch, want: &mlcs::columnar::Batch, seed: u64) {
    assert_eq!(got.rows(), want.rows(), "row count differs (seed {seed})");
    for r in 0..want.rows() {
        assert_eq!(got.row(r), want.row(r), "row {r} differs after retry (seed {seed})");
    }
}

/// Connection-level faults (errors and short reads — nothing that can
/// silently alter delivered bytes): every query either returns exactly the
/// fault-free result or a typed transport error. Retries must rescue a
/// healthy majority of queries.
#[test]
fn connection_faults_yield_exact_results_or_typed_errors() {
    let _guard = TestGuard::arm("connection_faults_yield_exact_results_or_typed_errors");
    let seed = chaos_seed();
    let db = seeded_db(200);
    let expected = db.execute("SELECT x, s FROM t ORDER BY x").unwrap();
    let expected = expected.batch();

    let server = Server::start_with(db.clone(), chaos_net_config()).unwrap();
    let before = metrics::snapshot();
    faults::configure_str("net.read:err:0.05,net.write:err:0.04,net.read:short:0.03", seed)
        .unwrap();

    let mut ok = 0usize;
    let mut failed = 0usize;
    for _ in 0..25 {
        let mut client = match TextClient::connect_with(server.addr(), chaos_net_config()) {
            Ok(c) => c,
            Err(e) => {
                assert_transport_error(&e, seed);
                failed += 1;
                continue;
            }
        };
        match client.query("SELECT x, s FROM t ORDER BY x") {
            Ok(batch) => {
                assert_batches_equal(&batch, expected, seed);
                ok += 1;
            }
            Err(e) => {
                assert_transport_error(&e, seed);
                failed += 1;
            }
        }
    }
    faults::clear();

    let delta = metrics::snapshot().since(&before);
    let injected: u64 = delta
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("faults.injected."))
        .map(|(_, v)| v)
        .sum();
    assert!(injected > 0, "no faults fired — the chaos run was vacuous (seed {seed})");
    assert!(ok > 0, "all 25 queries failed; retries never rescued one (seed {seed})");
    println!("connection chaos: {ok} ok, {failed} typed failures, {injected} faults injected");
    server.shutdown();
}

/// Byte-flip faults can deliver altered payloads (the frame protocol has
/// no checksum), so exactness is not promised — but the decoders must
/// still return typed errors or results, never panic, hang, or
/// over-allocate.
#[test]
fn byte_flip_faults_never_panic_or_hang() {
    let _guard = TestGuard::arm("byte_flip_faults_never_panic_or_hang");
    let seed = chaos_seed();
    let db = seeded_db(100);
    let server = Server::start_with(db, chaos_net_config()).unwrap();
    faults::configure_str("net.read:flip:0.1", seed ^ 0x1).unwrap();

    for _ in 0..30 {
        let mut client = match BinaryClient::connect_with(server.addr(), chaos_net_config()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        // Any DbError variant is acceptable here (a flipped byte can land
        // anywhere, including mid-value); completing with a typed Result
        // is the invariant.
        let _ = client.query("SELECT x, s FROM t ORDER BY x");
    }
    faults::clear();
    server.shutdown();
}

/// A deterministic single-shot write fault: the first attempt dies, the
/// retry succeeds, and the delivered batch is byte-identical to the
/// fault-free result — with exactly one retry on the books.
#[test]
fn retried_query_returns_byte_identical_result() {
    let _guard = TestGuard::arm("retried_query_returns_byte_identical_result");
    let seed = chaos_seed();
    let db = seeded_db(50);
    let expected = db.execute("SELECT x, s FROM t ORDER BY x").unwrap();
    let expected = expected.batch();
    let server = Server::start_with(db.clone(), chaos_net_config()).unwrap();
    let mut client = TextClient::connect_with(server.addr(), chaos_net_config()).unwrap();

    let before = metrics::snapshot();
    // nth-mode: exactly the first net.write I/O in the process fails,
    // which is this client's next query-frame write.
    faults::configure_str("net.write:err:1:1", seed).unwrap();
    let batch = client.query("SELECT x, s FROM t ORDER BY x").unwrap();
    faults::clear();

    assert_batches_equal(&batch, expected, seed);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("netproto.retries"), 1, "expected exactly one retry");
    assert_eq!(delta.counter("faults.injected.net.write.err"), 1);
    server.shutdown();
}

/// A panicking UDF costs the client one typed error frame; the connection
/// and the server both survive, and the panic is counted.
#[test]
fn panicking_udf_is_isolated_to_an_error_frame() {
    let _guard = TestGuard::arm("panicking_udf_is_isolated_to_an_error_frame");
    let db = seeded_db(10);
    db.register_scalar_udf(Arc::new(
        ClosureScalarUdf::new("boom", DataType::Int64, |_: &[Arc<Column>]| {
            panic!("kaboom from a udf")
        })
        .with_arity(1),
    ));
    let server = Server::start_with(db, chaos_net_config()).unwrap();
    let mut client = TextClient::connect_with(server.addr(), chaos_net_config()).unwrap();

    let before = metrics::snapshot();
    // Silence the default panic hook for the intentional panic; the server
    // catches it and the hook would only spam the test log.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = client.query("SELECT boom(x) FROM t").unwrap_err();
    std::panic::set_hook(prev_hook);

    assert!(err.to_string().contains("query panicked"), "expected a panic error frame, got: {err}");
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("netproto.panics_caught"), 1);

    // The same connection keeps working.
    let batch = client.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(batch.row(0)[0], Value::Int64(10));
    server.shutdown();
}

/// A server-side query deadline surfaces to the client as a typed
/// `DbError::Timeout` naming the operator path, and is counted.
#[test]
fn query_deadline_surfaces_as_typed_timeout() {
    let _guard = TestGuard::arm("query_deadline_surfaces_as_typed_timeout");
    let db = seeded_db(100);
    let config = NetConfig { query_deadline: Some(Duration::ZERO), ..chaos_net_config() };
    let server = Server::start_with(db, config).unwrap();
    let mut client = TextClient::connect_with(server.addr(), chaos_net_config()).unwrap();

    let before = metrics::snapshot();
    let err = client.query("SELECT x FROM t ORDER BY x").unwrap_err();
    match &err {
        DbError::Timeout { path } => {
            assert!(!path.is_empty(), "timeout must name the operator path")
        }
        other => panic!("expected DbError::Timeout, got {other:?}"),
    }
    let delta = metrics::snapshot().since(&before);
    assert!(delta.counter("netproto.timeouts") >= 1);

    // The connection survives a deadline expiry: the next query gets its
    // own typed answer (another timeout — the deadline is per-server)
    // instead of a dead socket.
    let err2 = client.query("SELECT 1").unwrap_err();
    assert!(matches!(err2, DbError::Timeout { .. }), "connection died after a timeout: {err2}");
    server.shutdown();
}

/// A connection over the cap is turned away with a typed
/// `DbError::Rejected` frame — shed load, not a torn connection — and the
/// server stays healthy for the connections it kept.
#[test]
fn capacity_rejection_is_typed() {
    let _guard = TestGuard::arm("capacity_rejection_is_typed");
    let db = seeded_db(5);
    let config = NetConfig { max_connections: 1, ..chaos_net_config() };
    let server = Server::start_with(db, config).unwrap();
    let mut first = TextClient::connect_with(server.addr(), chaos_net_config()).unwrap();
    assert_eq!(first.query("SELECT COUNT(*) FROM t").unwrap().rows(), 1); // holds the one slot

    let mut second = TextClient::connect_with(server.addr(), chaos_net_config()).unwrap();
    let err = second.query("SELECT 1").unwrap_err();
    match &err {
        DbError::Rejected(reason) => {
            assert!(reason.contains("capacity"), "rejection must say why: {reason}")
        }
        other => panic!("expected DbError::Rejected for shed load, got {other:?}"),
    }

    // The kept connection still answers: the server shed load, it didn't
    // fall over.
    let batch = first.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(batch.row(0)[0], Value::Int64(5));
    server.shutdown();
}

/// Faults at the pickle decode boundary surface as typed errors (a flip
/// exercises the envelope checksum), and a clean decode still round-trips
/// once the injector is disarmed.
#[test]
fn pickle_decode_faults_surface_typed_errors() {
    let _guard = TestGuard::arm("pickle_decode_faults_surface_typed_errors");
    let seed = chaos_seed();
    let db = Database::new();
    register_ml_udfs(&db);
    db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
    db.execute(
        "INSERT INTO points VALUES (-2.0, -2.0, 0), (-1.5, -1.0, 0),
                                   (-1.0, -2.5, 0), ( 1.0,  1.5, 1),
                                   ( 2.0,  1.0, 1), ( 1.5,  2.5, 1)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE models AS SELECT * FROM train(
           (SELECT x, y FROM points), (SELECT label FROM points), 4)",
    )
    .unwrap();
    let blob = match db.query_value("SELECT classifier FROM models").unwrap() {
        Value::Blob(b) => b,
        other => panic!("classifier column holds {other:?}"),
    };
    let clean = StoredModel::from_blob(&blob).unwrap();

    let before = metrics::snapshot();
    // A flipped byte anywhere in the blob must trip the envelope checksum.
    faults::configure_str("pickle.decode:flip:1", seed).unwrap();
    assert!(StoredModel::from_blob(&blob).is_err(), "flipped blob decoded cleanly");
    // An outright decode error is typed too.
    faults::configure_str("pickle.decode:err:1", seed).unwrap();
    assert!(StoredModel::from_blob(&blob).is_err());
    faults::clear();

    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.counter("faults.injected.pickle.decode.flip"), 1);
    assert_eq!(delta.counter("faults.injected.pickle.decode.err"), 1);

    // Disarmed: the same blob decodes to the same model.
    assert_eq!(StoredModel::from_blob(&blob).unwrap(), clean);
}
