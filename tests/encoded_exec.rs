//! Compressed execution must be invisible: a query over dictionary- or
//! RLE-encoded columns returns bit-identical results to the same query
//! over plain columns, serially and on the morsel-parallel path, over
//! NULL-heavy, low-NDV, and adversarial (all-distinct, single-run) data.
//!
//! Encodings are forced through `Table::set_column_encoding` so the suite
//! does not depend on the auto heuristic's row floor — every combination
//! runs over small, fully-controlled fixtures.

use mlcs::columnar::{Batch, Database, Encoding, Value};
use proptest::prelude::*;

/// Rows for one `t (k INTEGER, x DOUBLE, s VARCHAR)` table, as SQL tuples.
fn insert_sql(rows: &[(Option<i32>, Option<f64>, Option<String>)]) -> Option<String> {
    if rows.is_empty() {
        return None;
    }
    let values: Vec<String> = rows
        .iter()
        .map(|(k, x, s)| {
            let k = k.map_or("NULL".to_owned(), |v| v.to_string());
            let x = x.map_or("NULL".to_owned(), |v| format!("{v:?}"));
            let s = s.as_ref().map_or("NULL".to_owned(), |v| format!("'{v}'"));
            format!("({k}, {x}, {s})")
        })
        .collect();
    Some(format!("INSERT INTO t VALUES {}", values.join(",")))
}

/// A database holding `rows` with each column forced to the encoding in
/// `encodings` (positionally), pinned to `threads` workers.
fn db_with(
    rows: &[(Option<i32>, Option<f64>, Option<String>)],
    encodings: &[Encoding; 3],
    threads: usize,
) -> Database {
    let db = Database::new();
    db.set_threads(threads);
    if threads > 1 {
        db.set_parallel_threshold(1);
    }
    db.execute("CREATE TABLE t (k INTEGER, x DOUBLE, s VARCHAR)").unwrap();
    if let Some(sql) = insert_sql(rows) {
        db.execute(&sql).unwrap();
    }
    let table = db.catalog().table("t").unwrap();
    for (i, &enc) in encodings.iter().enumerate() {
        table.write().set_column_encoding(i, enc).unwrap();
    }
    db
}

const PLAIN: [Encoding; 3] = [Encoding::Plain, Encoding::Plain, Encoding::Plain];
const DICT: [Encoding; 3] = [Encoding::Dict, Encoding::Dict, Encoding::Dict];
const RLE: [Encoding; 3] = [Encoding::Rle, Encoding::Rle, Encoding::Rle];
const MIXED: [Encoding; 3] = [Encoding::Dict, Encoding::Rle, Encoding::Dict];

/// NULL-heavy mixed data: ~1/3 NULL keys, NULLs sprinkled everywhere.
fn null_heavy() -> Vec<(Option<i32>, Option<f64>, Option<String>)> {
    (0..300i32)
        .map(|i| {
            let k = (i % 3 != 0).then_some(i % 5);
            let x = (i % 4 != 0).then_some((i % 13) as f64 * 0.5);
            let s = (i % 6 != 0).then(|| format!("a{}", i % 7));
            (k, x, s)
        })
        .collect()
}

/// Low-NDV data: the dictionary's best case, long-ish runs for RLE.
fn low_ndv() -> Vec<(Option<i32>, Option<f64>, Option<String>)> {
    (0..300i32)
        .map(|i| (Some(i / 100), Some((i / 150) as f64), Some(format!("g{}", i / 75))))
        .collect()
}

/// Adversarial for dict: every value distinct (dictionary as long as the
/// column, every code unique).
fn all_distinct() -> Vec<(Option<i32>, Option<f64>, Option<String>)> {
    (0..200i32).map(|i| (Some(i), Some(i as f64 * 0.25), Some(format!("u{i}")))).collect()
}

/// Adversarial for RLE: one single run per column (plus a NULL stripe so
/// validity interacts with the run).
fn single_run() -> Vec<(Option<i32>, Option<f64>, Option<String>)> {
    (0..200i32).map(|i| (Some(7), (i < 150).then_some(1.5), Some("c".to_owned()))).collect()
}

/// The query battery: fusible predicates (comparisons, AND/OR/NOT,
/// BETWEEN, IS NULL), non-fusible ones (LIKE, IN, arithmetic), grouped and
/// ungrouped aggregation, DISTINCT, join, sort. Group-by queries without
/// ORDER BY pin the first-appearance output order, which the dict-code
/// group path must reproduce exactly.
const QUERIES: &[&str] = &[
    "SELECT k, x, s FROM t WHERE k < 2 ORDER BY k, x, s",
    "SELECT k, s FROM t WHERE s = 'a1' OR k IS NULL ORDER BY k, s",
    "SELECT k, x FROM t WHERE x >= 1.0 AND NOT (k = 1) ORDER BY k, x",
    "SELECT k FROM t WHERE k BETWEEN 0 AND 2 AND s IS NOT NULL ORDER BY k",
    "SELECT s FROM t WHERE s LIKE 'a%' ORDER BY s",
    "SELECT k FROM t WHERE k IN (0, 2, 5) ORDER BY k",
    "SELECT k, x FROM t WHERE k + 1 > 2 ORDER BY k, x",
    "SELECT k, COUNT(*) FROM t GROUP BY k",
    "SELECT s, COUNT(*) FROM t GROUP BY s",
    "SELECT k, COUNT(*), COUNT(x), SUM(k), AVG(x), MIN(s), MAX(x) FROM t GROUP BY k ORDER BY k",
    "SELECT COUNT(*), COUNT(x), SUM(k), MIN(k), MAX(s) FROM t",
    "SELECT SUM(k) FROM t WHERE s IS NOT NULL",
    "SELECT DISTINCT k, s FROM t ORDER BY k, s",
    "SELECT a.k, b.s FROM t a JOIN t b ON a.k = b.k WHERE a.x < 2.0 ORDER BY a.k, b.s, a.x",
    "SELECT k, x, s FROM t ORDER BY s DESC, k, x",
];

/// Bit-identical equality: doubles compared by bit pattern, everything
/// else by value. No tolerance — encoded execution must perform the exact
/// same float operations in the exact same order as plain execution.
fn assert_bit_identical(plain: &Batch, encoded: &Batch, what: &str, sql: &str) {
    assert_eq!(plain.rows(), encoded.rows(), "[{what}] row count differs for {sql}");
    for r in 0..plain.rows() {
        let (a, b) = (plain.row(r), encoded.row(r));
        assert_eq!(a.len(), b.len(), "[{what}] arity differs for {sql}");
        for (i, (va, vb)) in a.iter().zip(&b).enumerate() {
            let same = match (va, vb) {
                (Value::Float64(fa), Value::Float64(fb)) => fa.to_bits() == fb.to_bits(),
                _ => va == vb,
            };
            assert!(same, "[{what}] row {r} col {i} differs for {sql}: {va:?} vs {vb:?}");
        }
    }
}

fn battery(rows: &[(Option<i32>, Option<f64>, Option<String>)], dataset: &str) {
    let plain = db_with(rows, &PLAIN, 1);
    let variants: [(&str, [Encoding; 3]); 3] = [("dict", DICT), ("rle", RLE), ("mixed", MIXED)];
    for (name, encs) in &variants {
        let serial = db_with(rows, encs, 1);
        let parallel = db_with(rows, encs, 4);
        for sql in QUERIES {
            let want = plain.query(sql).unwrap();
            let got = serial.query(sql).unwrap();
            assert_bit_identical(&want, &got, &format!("{dataset}/{name}/serial"), sql);
            let got_par = parallel.query(sql).unwrap();
            assert_bit_identical(&want, &got_par, &format!("{dataset}/{name}/parallel"), sql);
        }
    }
}

#[test]
fn encoded_matches_plain_null_heavy() {
    battery(&null_heavy(), "null_heavy");
}

#[test]
fn encoded_matches_plain_low_ndv() {
    battery(&low_ndv(), "low_ndv");
}

#[test]
fn encoded_matches_plain_all_distinct() {
    battery(&all_distinct(), "all_distinct");
}

#[test]
fn encoded_matches_plain_single_run() {
    battery(&single_run(), "single_run");
}

/// Empty tables encode and execute too (zero runs, empty dictionary).
#[test]
fn encoded_matches_plain_empty() {
    battery(&[], "empty");
}

/// Random data, random per-column encodings, random query: encoded serial
/// execution is bit-identical to plain serial, and encoded parallel
/// matches on rows (floats compared exactly here too — filters and
/// integer aggregates dominate the generated shapes, and per-morsel float
/// partials are re-folded in morsel order).
fn arb_encoding(w: u64) -> Encoding {
    match w % 3 {
        0 => Encoding::Plain,
        1 => Encoding::Dict,
        _ => Encoding::Rle,
    }
}

fn build_query(r: &[u64]) -> String {
    let pick = |w: u64, menu: &[&str]| menu[(w % menu.len() as u64) as usize].to_owned();
    let exprs = ["k", "x", "s", "k + 1", "k % 3", "COALESCE(k, 0)", "LENGTH(s)"];
    let preds = [
        "k > 3",
        "k < 2",
        "x <= 4.0",
        "s = 'a1'",
        "k IS NULL",
        "s IS NOT NULL",
        "k BETWEEN 1 AND 5",
        "k IN (1, 2, 3)",
        "NOT (k = 2)",
        "k > 1 AND x < 50.0",
        "k < 1 OR s LIKE 'a%'",
    ];
    let aggs = ["COUNT(*)", "COUNT(x)", "SUM(k)", "MIN(s)", "MAX(k)"];
    let w = |i: usize| r.get(i).copied().unwrap_or(0);
    match w(0) % 3 {
        0 => {
            let mut q = format!("SELECT {}, {} FROM t", pick(w(1), &exprs), pick(w(2), &exprs));
            if w(3) % 2 == 0 {
                q += &format!(" WHERE {}", pick(w(4), &preds));
            }
            q += " ORDER BY 1, 2";
            q
        }
        1 => {
            let mut q = format!(
                "SELECT {}, {} FROM t GROUP BY {}",
                pick(w(1), &["k", "s", "k % 2"]),
                pick(w(2), &aggs),
                pick(w(1), &["k", "s", "k % 2"]),
            );
            if w(3) % 2 == 0 {
                q += &format!(" HAVING {}", pick(w(4), &["COUNT(*) > 1", "COUNT(*) >= 0"]));
            }
            q
        }
        _ => format!(
            "SELECT a.k, b.s FROM t a JOIN t b ON a.k = b.k WHERE {} ORDER BY a.k, b.s, a.x",
            pick(w(1), &["a.k > 1", "b.s IS NOT NULL", "a.x < 3.0", "a.k BETWEEN 0 AND 4"]),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoded_matches_plain(
        rows in proptest::collection::vec(
            (
                proptest::option::of(-4i32..6),
                proptest::option::of((-8i32..8).prop_map(|v| v as f64 * 0.5)),
                proptest::option::of((0u8..5).prop_map(|v| format!("a{v}"))),
            ),
            0..50,
        ),
        encs in proptest::collection::vec(any::<u64>(), 3),
        words in proptest::collection::vec(any::<u64>(), 6),
    ) {
        let encodings = [arb_encoding(encs[0]), arb_encoding(encs[1]), arb_encoding(encs[2])];
        let plain = db_with(&rows, &PLAIN, 1);
        let encoded = db_with(&rows, &encodings, 1);
        let encoded_par = db_with(&rows, &encodings, 4);
        let sql = build_query(&words);
        // Typed runtime errors are a valid outcome, but they must not
        // depend on the encoding or the executor.
        let (want, got, got_par) =
            match (plain.query(&sql), encoded.query(&sql), encoded_par.query(&sql)) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                (Err(_), Err(_), Err(_)) => return Ok(()),
                (a, b, c) => {
                    return Err(TestCaseError::fail(format!(
                        "plain/encoded disagreed on success for {sql}: \
                         plain {:?}, encoded {:?}, encoded-parallel {:?}",
                        a.map(|x| x.rows()),
                        b.map(|x| x.rows()),
                        c.map(|x| x.rows()),
                    )));
                }
            };
        prop_assert_eq!(want.rows(), got.rows(), "serial row count diverged for {}", &sql);
        prop_assert_eq!(want.rows(), got_par.rows(), "parallel row count diverged for {}", &sql);
        for r in 0..want.rows() {
            for (which, out) in [("serial", &got), ("parallel", &got_par)] {
                let (a, b) = (want.row(r), out.row(r));
                prop_assert_eq!(a.len(), b.len());
                for (va, vb) in a.iter().zip(&b) {
                    let same = match (va, vb) {
                        (Value::Float64(fa), Value::Float64(fb)) => fa.to_bits() == fb.to_bits(),
                        _ => va == vb,
                    };
                    prop_assert!(same, "{} row {} diverged for {}: {:?} vs {:?}",
                        which, r, &sql, va, vb);
                }
            }
        }
    }
}
