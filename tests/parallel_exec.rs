//! Morsel-parallel execution: a parallel plan must produce exactly the
//! rows the serial plan produces, the planner must only pick the parallel
//! path when it is safe and worthwhile, and the worker pool must be
//! persistent — no threads spawned per query.

use mlcs::columnar::parallel::hardware_threads;
use mlcs::columnar::{Batch, Database, Value};

/// Rows of NULL-heavy mixed data shared by the serial/parallel pair.
fn seed_sql() -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE t (k INTEGER, v INTEGER, x DOUBLE, s VARCHAR)".to_owned(),
        "CREATE TABLE d (k INTEGER, label VARCHAR)".to_owned(),
        "INSERT INTO d VALUES (0, 'zero'), (1, 'one'), (2, 'two'), (NULL, 'null')".to_owned(),
    ];
    // ~1/3 NULL keys, NULL floats and strings sprinkled in; values chosen
    // so float sums are exact (multiples of 0.5) and ties exist for sort.
    let mut values = Vec::new();
    for i in 0..500i64 {
        let k = if i % 3 == 0 { "NULL".to_owned() } else { (i % 5).to_string() };
        let v = if i % 7 == 0 { "NULL".to_owned() } else { (i % 11).to_string() };
        let x = if i % 4 == 0 { "NULL".to_owned() } else { format!("{}", (i % 13) as f64 * 0.5) };
        let s = if i % 6 == 0 { "NULL".to_owned() } else { format!("'s{}'", i % 9) };
        values.push(format!("({k}, {v}, {x}, {s})"));
    }
    stmts.push(format!("INSERT INTO t VALUES {}", values.join(",")));
    stmts
}

/// A database pinned to the serial executor and one forced parallel.
fn serial_and_parallel() -> (Database, Database) {
    let serial = Database::new();
    serial.set_threads(1);
    let parallel = Database::new();
    parallel.set_threads(4);
    parallel.set_parallel_threshold(1);
    for db in [&serial, &parallel] {
        for stmt in seed_sql() {
            db.execute(&stmt).unwrap();
        }
    }
    (serial, parallel)
}

/// Row-by-row equality with a relative tolerance for doubles, since the
/// parallel aggregate may sum float partials in a different association.
fn assert_batches_match(serial: &Batch, parallel: &Batch, sql: &str) {
    assert_eq!(serial.rows(), parallel.rows(), "row count differs for {sql}");
    for r in 0..serial.rows() {
        let (a, b) = (serial.row(r), parallel.row(r));
        assert_eq!(a.len(), b.len(), "arity differs for {sql}");
        for (i, (va, vb)) in a.iter().zip(&b).enumerate() {
            match (va, vb) {
                (Value::Float64(fa), Value::Float64(fb)) => {
                    let tol = 1e-9 * fa.abs().max(fb.abs()).max(1.0);
                    assert!(
                        (fa - fb).abs() <= tol,
                        "row {r} col {i} differs for {sql}: {fa} vs {fb}"
                    );
                }
                _ => assert_eq!(va, vb, "row {r} col {i} differs for {sql}"),
            }
        }
    }
}

#[test]
fn parallel_matches_serial_across_operators() {
    let (serial, parallel) = serial_and_parallel();
    let queries = [
        // Filter + projection.
        "SELECT k, v + 1, x * 2.0 FROM t WHERE v > 3 ORDER BY k, v, x",
        // NULL-sensitive predicate.
        "SELECT k, s FROM t WHERE k IS NOT NULL AND s IS NOT NULL ORDER BY k, s",
        // Hash join on a NULL-heavy key (NULL keys never match).
        "SELECT t.k, d.label, t.v FROM t JOIN d ON t.k = d.k ORDER BY t.k, d.label, t.v",
        // Left join keeps NULL-key probe rows.
        "SELECT t.k, d.label FROM t LEFT JOIN d ON t.k = d.k ORDER BY t.k, d.label, t.v",
        // Grouped aggregation over NULL keys and NULL arguments.
        "SELECT k, COUNT(*), COUNT(v), SUM(v), AVG(x), MIN(s), MAX(v) FROM t GROUP BY k ORDER BY k",
        // Ungrouped aggregation.
        "SELECT COUNT(*), SUM(v), AVG(x), MIN(k), MAX(x) FROM t",
        // Multi-key sort with NULLs and heavy ties.
        "SELECT k, v, x, s FROM t ORDER BY k DESC, x, s DESC",
    ];
    for sql in queries {
        let a = serial.query(sql).unwrap();
        let b = parallel.query(sql).unwrap();
        assert_batches_match(&a, &b, sql);
    }
}

#[test]
fn explain_annotates_parallel_eligible_operators() {
    let (_, parallel) = serial_and_parallel();
    let plan = parallel
        .query("EXPLAIN SELECT k, COUNT(*) FROM t WHERE v > 3 GROUP BY k ORDER BY k")
        .unwrap();
    let text: String = (0..plan.rows())
        .map(|r| match &plan.row(r)[0] {
            Value::Varchar(s) => format!("{s}\n"),
            other => panic!("EXPLAIN returned {other:?}"),
        })
        .collect();
    assert!(text.contains("[parallel]"), "EXPLAIN missing [parallel] annotation:\n{text}");
}

#[test]
fn threads_setting_round_trips() {
    let db = Database::new();
    assert_eq!(db.threads(), 0, "default requests hardware parallelism");
    db.set_threads(3);
    assert_eq!(db.threads(), 3);
    db.set_threads(0);
    assert_eq!(db.threads(), 0);
    assert!(hardware_threads() >= 1);
}

#[test]
fn mlcs_threads_env_overrides_hardware() {
    // Other tests only use explicit thread counts, so flipping the env
    // override here cannot change their plans.
    std::env::set_var("MLCS_THREADS", "2");
    assert_eq!(hardware_threads(), 2);
    std::env::set_var("MLCS_THREADS", "not a number");
    assert!(hardware_threads() >= 1);
    std::env::remove_var("MLCS_THREADS");
    assert!(hardware_threads() >= 1);
}

/// Repeated parallel queries must reuse the persistent pool: after a
/// warm-up query the process thread count stays flat.
#[cfg(target_os = "linux")]
#[test]
fn worker_pool_is_persistent_across_queries() {
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }
    let (_, parallel) = serial_and_parallel();
    // Warm-up spawns the pool (at most once per process).
    parallel.query("SELECT k, COUNT(*) FROM t GROUP BY k").unwrap();
    let warm = thread_count();
    for _ in 0..20 {
        parallel.query("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k").unwrap();
    }
    assert_eq!(
        thread_count(),
        warm,
        "thread count grew across queries — workers are being spawned per query"
    );
}
