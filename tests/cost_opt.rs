//! Cost-based optimization must be invisible in results: every query in
//! this battery runs on two databases built from the same data — one
//! with statistics-driven optimization on, one with it off — and the
//! outputs must be **bit-identical**, serial and morsel-parallel alike.
//! The rewrites under test: hash-join build-side selection, inner-join
//! chain reordering under order-insensitive aggregates, filter-conjunct
//! ordering, and aggregates answered straight from column statistics.
//!
//! Also pinned here: `EXPLAIN ANALYZE` prints `est=N` estimates next to
//! actual row counts (and omits them with stats off), bare MIN/MAX/COUNT
//! plans collapse to a literal projection over `UnitRow`, and a cached
//! plan is re-optimized once its table has grown past 2×.

use mlcs::columnar::{Batch, Database, Value};
use proptest::prelude::*;

/// Builds the shared fixture: `small` (8 rows, unique keys) and `big`
/// (1000 rows, 16 skewed keys, NULLs in `v`, exact-in-f64 doubles).
fn seeded(stats: bool, serial: bool) -> Database {
    let db = Database::new();
    db.set_stats_enabled(stats);
    if serial {
        db.set_threads(1);
    } else {
        db.set_threads(4);
        db.set_parallel_threshold(1);
    }
    db.execute("CREATE TABLE small (k INTEGER, tag VARCHAR)").unwrap();
    db.execute("CREATE TABLE big (k INTEGER, v INTEGER, w DOUBLE)").unwrap();
    let small: Vec<String> = (0..8).map(|i| format!("({i}, 'tag{i}')")).collect();
    db.execute(&format!("INSERT INTO small VALUES {}", small.join(","))).unwrap();
    let big: Vec<String> = (0..1000)
        .map(|i| {
            let k = i % 16;
            let v = if i % 13 == 0 { "NULL".to_owned() } else { format!("{}", i % 97) };
            format!("({k}, {v}, {}.5)", i % 50)
        })
        .collect();
    db.execute(&format!("INSERT INTO big VALUES {}", big.join(","))).unwrap();
    db
}

fn assert_identical(on: &Database, off: &Database, sql: &str) {
    let a = on.query(sql).unwrap_or_else(|e| panic!("stats on failed for `{sql}`: {e}"));
    let b = off.query(sql).unwrap_or_else(|e| panic!("stats off failed for `{sql}`: {e}"));
    assert_eq!(a.rows(), b.rows(), "row count diverged for `{sql}`");
    assert_eq!(a.width(), b.width(), "width diverged for `{sql}`");
    for i in 0..a.rows() {
        assert_eq!(a.row(i), b.row(i), "row {i} diverged for `{sql}`");
    }
}

/// The deterministic battery: joins both skews, outer joins, bare and
/// filtered aggregates, multi-conjunct filters, grouping, a reorderable
/// three-way chain, sorting, distinct, and float aggregation. None of
/// these carry an ORDER BY unless the operator itself is unordered
/// (GROUP BY / DISTINCT), so row *order* is compared too.
const BATTERY: &[&str] = &[
    "SELECT small.tag, big.v FROM small JOIN big ON small.k = big.k",
    "SELECT small.tag, big.v FROM big JOIN small ON big.k = small.k",
    "SELECT small.tag, big.v FROM small LEFT JOIN big ON small.k = big.k",
    "SELECT big.k, small.tag FROM big LEFT JOIN small ON big.k = small.k",
    "SELECT MIN(k), MAX(k), COUNT(*), COUNT(v) FROM big",
    "SELECT MIN(w), MAX(w) FROM big",
    "SELECT MIN(tag), MAX(tag), COUNT(*) FROM small",
    "SELECT MIN(k) FROM big WHERE k > 3",
    "SELECT k, v FROM big WHERE k > 2 AND v < 40 AND w < 30.0",
    "SELECT k FROM big WHERE v IS NOT NULL AND k = 7",
    "SELECT big.k, COUNT(*) AS n FROM small JOIN big ON small.k = big.k \
     GROUP BY big.k ORDER BY big.k",
    "SELECT COUNT(*) FROM big JOIN small ON big.k = small.k JOIN small s2 ON big.k = s2.k",
    "SELECT k, v FROM big ORDER BY k, v LIMIT 17 OFFSET 3",
    "SELECT DISTINCT k FROM big ORDER BY k",
    "SELECT AVG(w), SUM(v) FROM big WHERE k < 12",
];

#[test]
fn battery_bit_identical_serial() {
    let on = seeded(true, true);
    let off = seeded(false, true);
    for sql in BATTERY {
        assert_identical(&on, &off, sql);
    }
}

#[test]
fn battery_bit_identical_parallel() {
    let on = seeded(true, false);
    let off = seeded(false, false);
    for sql in BATTERY {
        assert_identical(&on, &off, sql);
    }
}

fn explain_text(db: &Database, sql: &str) -> String {
    let b: Batch = db.query(sql).unwrap();
    (0..b.rows()).map(|i| b.row(i)[0].as_str().unwrap().to_owned()).collect::<Vec<_>>().join("\n")
}

#[test]
fn explain_analyze_prints_estimates_next_to_actuals() {
    let db = seeded(true, true);
    let text = explain_text(&db, "EXPLAIN ANALYZE SELECT k, v FROM big WHERE k < 8");
    assert!(text.contains("rows="), "actuals missing:\n{text}");
    assert!(text.contains("est="), "estimates missing:\n{text}");
    // With stats off the report carries no estimates.
    let off = seeded(false, true);
    let text = explain_text(&off, "EXPLAIN ANALYZE SELECT k, v FROM big WHERE k < 8");
    assert!(text.contains("rows="), "{text}");
    assert!(!text.contains("est="), "estimates should be absent with stats off:\n{text}");
}

#[test]
fn bare_aggregates_collapse_to_unit_row_plan() {
    let db = seeded(true, true);
    // No predicate: the whole aggregate is answered from statistics.
    let text = explain_text(&db, "EXPLAIN SELECT MIN(k), MAX(k), COUNT(*) FROM big");
    assert!(text.contains("UnitRow"), "expected a literal projection:\n{text}");
    assert!(!text.contains("Aggregate"), "aggregate should be gone:\n{text}");
    assert!(!text.contains("Scan"), "scan should be gone:\n{text}");
    // A predicate intervenes: the aggregate must execute for real.
    let text = explain_text(&db, "EXPLAIN SELECT MIN(k) FROM big WHERE k > 3");
    assert!(text.contains("Aggregate"), "{text}");
    // Stats off: the bare aggregate keeps its scan.
    let off = seeded(false, true);
    let text = explain_text(&off, "EXPLAIN SELECT MIN(k), MAX(k), COUNT(*) FROM big");
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("Scan"), "{text}");
}

#[test]
fn stats_answered_aggregates_track_dml() {
    // The literal plan must reflect *current* stats on every run —
    // inserts, deletes, and updates in between must show up.
    let db = seeded(true, true);
    let q = "SELECT MIN(v), MAX(v), COUNT(v), COUNT(*) FROM big";
    let before = db.query(q).unwrap();
    assert_eq!(
        before.row(0),
        vec![Value::Int32(0), Value::Int32(96), Value::Int64(923), Value::Int64(1000)]
    );
    db.execute("INSERT INTO big VALUES (99, -5, 0.0), (99, 500, 0.0)").unwrap();
    let after = db.query(q).unwrap();
    assert_eq!(
        after.row(0),
        vec![Value::Int32(-5), Value::Int32(500), Value::Int64(925), Value::Int64(1002)]
    );
    db.execute("DELETE FROM big WHERE k = 99").unwrap();
    assert_eq!(db.query(q).unwrap().row(0), before.row(0));
}

#[test]
fn cached_plan_reoptimizes_after_2x_growth() {
    let db = seeded(true, true);
    let sql = "SELECT small.tag FROM small JOIN big ON small.k = big.k WHERE big.v = 1";
    db.query(sql).unwrap(); // populates the cache at current row counts
    let probe = format!("EXPLAIN ANALYZE {sql}");
    assert!(
        explain_text(&db, &probe).contains("plan cache: hit"),
        "stable row counts must keep the cached plan"
    );
    // Double `small` (8 → 16 rows): the recorded counts have drifted 2×,
    // so the cached plan is rejected and the statement re-optimizes.
    let grow: Vec<String> = (8..16).map(|i| format!("({i}, 'tag{i}')")).collect();
    db.execute(&format!("INSERT INTO small VALUES {}", grow.join(","))).unwrap();
    assert!(
        explain_text(&db, &probe).contains("plan cache: miss"),
        "2x growth must force re-optimization"
    );
    // And the re-optimized plan still answers correctly.
    let out = db.query(sql).unwrap();
    assert_eq!(
        out.rows(),
        db.query_value("SELECT COUNT(*) FROM big WHERE v = 1").unwrap().as_i64().unwrap() as usize
    );
}

/// Assembles a query over the fixture from random words, covering the
/// rewrite surface: filtered scans, bare aggregates, skewed joins, and
/// grouped joins.
fn build_query(r: &[u64]) -> String {
    let pick = |w: u64, menu: &[&str]| menu[(w % menu.len() as u64) as usize].to_owned();
    let w = |i: usize| r.get(i).copied().unwrap_or(0);
    let preds = [
        "k > 4",
        "k = 3",
        "v < 40",
        "v IS NOT NULL",
        "k BETWEEN 2 AND 9",
        "k IN (1, 3, 5)",
        "NOT (k = 2)",
        "k > 2 AND v < 60",
        "k = 7 AND v > 10 AND w < 30.0",
    ];
    let join_preds = [
        "big.v < 50",
        "small.k > 2",
        "big.v IS NOT NULL AND small.k < 6",
        "big.w < 40.0 AND big.v > 5 AND small.k > 1",
    ];
    match w(0) % 4 {
        0 => format!("SELECT k, v FROM big WHERE {}", pick(w(1), &preds)),
        1 => format!(
            "SELECT {} FROM big",
            pick(w(1), &["MIN(k)", "MAX(v)", "COUNT(*)", "COUNT(v)", "MIN(w), MAX(w)"])
        ),
        2 => format!(
            "SELECT small.tag, big.v FROM small JOIN big ON small.k = big.k WHERE {}",
            pick(w(1), &join_preds)
        ),
        _ => "SELECT big.k, COUNT(*) AS n, MAX(big.v) AS m FROM small JOIN big \
              ON small.k = big.k GROUP BY big.k ORDER BY big.k"
            .to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary queries from the menu, stats-on and stats-off
    /// executions return bit-identical batches.
    #[test]
    fn random_queries_bit_identical(words in proptest::collection::vec(any::<u64>(), 1..6)) {
        let sql = build_query(&words);
        let on = seeded(true, true);
        let off = seeded(false, true);
        let a = on.query(&sql).unwrap();
        let b = off.query(&sql).unwrap();
        prop_assert_eq!(a.rows(), b.rows(), "row count diverged for `{}`", sql);
        for i in 0..a.rows() {
            prop_assert_eq!(a.row(i), b.row(i), "row {} diverged for `{}`", i, sql);
        }
    }
}
