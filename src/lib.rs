//! # mlcs — Machine Learning in a Column Store
//!
//! Umbrella crate re-exporting the full public API of the workspace.
//!
//! This is a from-scratch Rust reproduction of *Deep Integration of Machine
//! Learning Into Column Stores* (Raasveldt et al., EDBT 2018): a columnar
//! database engine with vectorized user-defined functions that can train,
//! store, and apply machine-learning models entirely inside the database.

pub use mlcs_columnar as columnar;
pub use mlcs_core as mlcore;
pub use mlcs_fileio as fileio;
pub use mlcs_ml as ml;
pub use mlcs_netproto as netproto;
pub use mlcs_pickle as pickle;
pub use mlcs_voters as voters;
