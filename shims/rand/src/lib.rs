//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for tests and benchmarks. It is
//! NOT the same stream as the real `StdRng` (ChaCha12), which only matters
//! if exact historical sequences are expected; nothing in this workspace
//! depends on them, only on seed-determinism.

/// Low-level entropy source: a single `u64` per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seed material, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges that can produce a uniform sample (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits of precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough uniform draw in `[0, width)` via 128-bit multiply-shift.
#[inline]
fn below(rng: &mut impl RngCore, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = below(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = below(rng, width + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty float range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_from(rng))
            }
        }
    }
}

/// Everything most callers want in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&i));
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }
}
