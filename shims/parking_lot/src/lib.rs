//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: `Mutex` and `RwLock` with non-poisoning, non-`Result` guards.
//! Delegates to `std::sync`, recovering from poison (a panicked holder)
//! by taking the lock anyway — parking_lot semantics.

use std::sync::{self, PoisonError};

/// Exclusive-access guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a, *b);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
