//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: the `Buf` reader trait over `&[u8]`, the `BufMut` writer trait,
//! and a `Vec`-backed `BytesMut`.
//!
//! Semantics match `bytes` where the workspace depends on them: `get_*`
//! panic when the buffer is short (callers check `remaining()` first) and
//! `advance` panics past the end.

macro_rules! buf_get_le {
    ($($(#[$doc:meta])* $name:ident -> $t:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            fn $name(&mut self) -> $t {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                self.copy_to_slice(&mut b);
                <$t>::from_le_bytes(b)
            }
        )*
    };
}

/// Sequential reads over a byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies out `dst.len()` bytes. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Next byte, signed.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_get_le! {
        /// Reads a little-endian `u16`.
        get_u16_le -> u16,
        /// Reads a little-endian `i16`.
        get_i16_le -> i16,
        /// Reads a little-endian `u32`.
        get_u32_le -> u32,
        /// Reads a little-endian `i32`.
        get_i32_le -> i32,
        /// Reads a little-endian `u64`.
        get_u64_le -> u64,
        /// Reads a little-endian `i64`.
        get_i64_le -> i64,
        /// Reads a little-endian `f32`.
        get_f32_le -> f32,
        /// Reads a little-endian `f64`.
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }
}

/// Sequential writes into a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (a thin `Vec<u8>` wrapper here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Copies the contents into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(515);
        w.put_u32_le(70_000);
        w.put_i64_le(-9);
        w.put_f64_le(1.5);
        w.put_slice(b"xy");
        let v = w.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 515);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r.get_u8(), b'y');
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
