//! Offline stand-in for the subset of `criterion` 0.5 this workspace's
//! benches use. Each benchmark runs a fixed small number of timed
//! iterations and prints mean wall-clock time per iteration — enough for
//! `cargo bench` to build and produce comparable numbers, with none of
//! criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 10;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// No-op: CLI args are ignored by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }
}

/// Units processed per iteration, for reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// No-op in the shim: iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// No-op in the shim: measurement time is bounded by iteration count.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Records units-per-iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// A label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Handed to each benchmark closure; times the routine.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { mean_ns: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.mean_ns;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / per_iter * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {label}: {:.1} us/iter{rate}", per_iter / 1e3);
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(ran >= 1);
    }
}
