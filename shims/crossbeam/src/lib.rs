//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace
//! uses: `channel::unbounded` and `thread::scope`, both delegating to the
//! standard library (`std::sync::mpsc`, `std::thread::scope`).

/// MPMC-ish channels (MPSC underneath, which is all the workspace needs).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Sending half; clonable across worker threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Error returned when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads with crossbeam's `Result`-returning panic handling.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// `Err` carries the panic payload of a worker (or the closure).
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// A spawn scope; crossbeam passes this to both the scope closure and
    /// every spawned closure (enabling nested spawns).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to this scope. The closure receives the
        /// scope again, crossbeam-style; ignore it with `|_|` if unused.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope, joining all spawned threads before
    /// returning. Unlike `std::thread::scope`, a panicking worker (or a
    /// panic in `f` itself) surfaces as `Err` instead of propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(move || std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for i in 0..8 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 28);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        super::thread::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<usize> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
