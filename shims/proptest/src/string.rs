//! Regex-lite string generation for string-literal strategies.
//!
//! Supports exactly the pattern forms the workspace tests use:
//! character classes (`[a-z0-9_]`, with ranges and literal members),
//! `.` (any printable char except newline), literal characters, and an
//! optional `{m}` / `{m,n}` / `*` / `+` / `?` quantifier after an atom.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// One char drawn uniformly from the listed choices.
    Class(Vec<char>),
    /// `.`: any printable char except newline.
    AnyPrintable,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

// Pool for `.`: printable ASCII plus a few multibyte chars so UTF-8
// handling gets exercised.
const ANY_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '5', '9', ' ', '!', '#', '%', '&', '(', ')', '*',
    '+', ',', '-', '.', '/', ':', ';', '<', '=', '>', '?', '@', '[', ']', '^', '_', '`', '{', '|',
    '}', '~', '"', '\'', '\\', 'é', 'λ', '中', '🦀',
];

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        members.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(members)
            }
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing '\\' in pattern {pattern:?}");
                let c = chars[i + 1];
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().expect("bad quantifier lower bound");
                            let hi = hi.trim().parse().expect("bad quantifier upper bound");
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().expect("bad quantifier count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern` (regex-lite, see module docs).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Class(members) => {
                    out.push(members[rng.below(members.len() as u64) as usize]);
                }
                Atom::AnyPrintable => {
                    out.push(ANY_POOL[rng.below(ANY_POOL.len() as u64) as usize]);
                }
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = generate_matching("[a-z_][a-z0-9_]{0,20}", &mut rng);
            assert!((1..=21).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_', "{s:?}");
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn dot_and_literals() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = generate_matching(".{0,10}", &mut rng);
            assert!((0..=10).contains(&s.chars().count()), "{s:?}");
            assert!(!s.contains('\n'));
        }
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }
}
