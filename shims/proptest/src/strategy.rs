//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map: f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make: f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// String literals act as regex-ish string strategies (`"[a-z]{1,3}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/s0)
    (S0/s0, S1/s1)
    (S0/s0, S1/s1, S2/s2)
    (S0/s0, S1/s1, S2/s2, S3/s3)
    (S0/s0, S1/s1, S2/s2, S3/s3, S4/s4)
    (S0/s0, S1/s1, S2/s2, S3/s3, S4/s4, S5/s5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_combinators() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (1i32..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
        let doubled = (1i32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0i32..10, n));
        for _ in 0..100 {
            let v = nested.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn just_and_tuples() {
        let mut rng = TestRng::from_seed(2);
        let s = (Just(7u8), 0i32..3, Just("x"));
        let (a, b, c) = s.generate(&mut rng);
        assert_eq!(a, 7);
        assert!((0..3).contains(&b));
        assert_eq!(c, "x");
    }
}
