//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted length specs for [`vec()`]: an exact `usize`, `a..b`, or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi_inclusive: exact }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_specs() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = vec(0i32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
        let exact = vec(0i32..5, 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        let incl = vec(0i32..5, 1..=3).generate(&mut rng);
        assert!((1..=3).contains(&incl.len()));
    }
}
