//! `any::<T>()`: whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws a uniform value over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// Floats draw uniform bit patterns, so NaNs, infinities, subnormals, and
// signed zeros all appear — matching proptest's any::<f64>() coverage of
// special values (round-trip tests compare via to_bits()).
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform over scalar values, rejecting the surrogate gap.
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_covered() {
        let mut rng = TestRng::from_seed(5);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..100 {
            let v: i32 = any::<i32>().generate(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
        let b: bool = any::<bool>().generate(&mut rng);
        let _ = b;
        let f = any::<f64>().generate(&mut rng);
        let _ = f.to_bits();
    }
}
