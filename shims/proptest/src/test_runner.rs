//! Case runner and config: drives each property over `cases` random
//! inputs, reporting the generated values on failure.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A generator for one case, derived from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut st = seed;
        TestRng {
            s: [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, width)`.
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        ((self.next_u64() as u128 * width as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs one property: generates inputs with `generate`, executes `run`,
/// and panics with the inputs attached on the first failing case.
pub fn run_cases<T: std::fmt::Debug>(
    config: ProptestConfig,
    name: &str,
    mut generate: impl FnMut(&mut TestRng) -> T,
    mut run: impl FnMut(T) -> Result<(), TestCaseError>,
) {
    // Deterministic base seed per test name, so failures reproduce.
    let mut seed = 0x243F_6A88_85A3_08D3u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::from_seed(seed.wrapping_add(case_index.wrapping_mul(0x9E37_79B9)));
        case_index += 1;
        let value = generate(&mut rng);
        let repr = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| run(value)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s): {msg}\n\
                     inputs: {repr}"
                );
            }
            Err(payload) => {
                panic!(
                    "proptest '{name}' panicked after {passed} passing case(s): {}\n\
                     inputs: {repr}",
                    panic_message(payload.as_ref())
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut count = 0u32;
        run_cases(
            ProptestConfig::with_cases(10),
            "counting",
            |rng| rng.next_u64(),
            |_| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 10);
    }

    #[test]
    fn failure_reports_inputs() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_cases(
                ProptestConfig::with_cases(10),
                "failing",
                |_| 42u32,
                |v| Err(TestCaseError::fail(format!("value was {v}"))),
            )
        }));
        let msg = panic_message(r.unwrap_err().as_ref());
        assert!(msg.contains("value was 42"), "{msg}");
        assert!(msg.contains("inputs: 42"), "{msg}");
    }

    #[test]
    fn rejects_do_not_count() {
        let mut attempts = 0u32;
        run_cases(
            ProptestConfig::with_cases(5),
            "rejecting",
            |rng| rng.next_u64(),
            |v| {
                attempts += 1;
                if v % 2 == 0 {
                    Err(TestCaseError::reject("odd only"))
                } else {
                    Ok(())
                }
            },
        );
        assert!(attempts >= 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            run_cases(
                ProptestConfig::with_cases(8),
                "determinism",
                |rng| rng.next_u64(),
                |v| {
                    out.push(v);
                    Ok(())
                },
            );
        }
        assert_eq!(a, b);
    }
}
