//! Offline stand-in for the subset of `proptest` 1.x this workspace
//! uses. Random inputs are generated per case from a deterministic
//! per-test seed; failing cases report the generated inputs. There is no
//! shrinking — a failure prints the raw case instead of a minimal one.
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `Strategy` with `prop_map`/`prop_flat_map`,
//! `any::<T>()`, numeric range strategies, `Just`, tuple strategies,
//! `proptest::collection::vec`, `proptest::option::of`, simple
//! regex-string strategies (`"[a-z0-9_]{0,20}"`-style), and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every test file starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $config,
                stringify!($name),
                |__rng| ($( $crate::strategy::Strategy::generate(&($strat), __rng), )+),
                |__vals| {
                    let ($($arg,)+) = __vals;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!(($config); $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) without
/// panicking, so the runner can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)*)
                );
            }
        }
    };
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
}

/// Discards the current case (regenerating fresh inputs) when a
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
