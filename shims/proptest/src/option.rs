//! Option strategies: `of(inner)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some(inner)` about 3 in 4 draws and `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(9);
        let s = of(0i32..100);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match s.generate(&mut rng) {
                Some(v) => {
                    assert!((0..100).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
