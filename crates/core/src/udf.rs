//! The paper's vectorized machine-learning UDFs.
//!
//! * [`TrainUdf`] — Listing 1: a table-valued function that trains a
//!   random forest on whole columns and returns the pickled model plus
//!   metadata as a one-row table.
//! * [`TrainModelUdf`] — a generalized trainer selecting the algorithm by
//!   name (the paper notes swapping models is trivial; here it is an
//!   argument).
//! * [`PredictUdf`] — Listing 2: a scalar function that revives a model
//!   BLOB and classifies the feature columns, optionally morsel-parallel
//!   (the paper's §5.1 future work).
//! * [`PredictConfidenceUdf`] / [`PredictProbaOfUdf`] — probability
//!   outputs enabling the ensemble queries of §3.3.

use crate::bridge::{labels_from_column, matrix_from_columns};
use crate::stored::StoredModel;
use mlcs_columnar::parallel::hardware_threads;
use mlcs_columnar::{
    Batch, Column, DataType, Database, DbError, DbResult, Field, ScalarUdf, Schema, TableUdf,
};
use mlcs_ml::forest::RandomForestClassifier;
use mlcs_ml::knn::KNearestNeighbors;
use mlcs_ml::linear::LogisticRegression;
use mlcs_ml::naive_bayes::GaussianNb;
use mlcs_ml::tree::DecisionTreeClassifier;
use mlcs_ml::{MlError, Model};
use std::sync::Arc;

/// The default RNG seed used by [`TrainUdf`] / [`TrainModelUdf`]. Client-
/// side pipelines that must reproduce the in-database model bit-for-bit
/// (the Figure 1 comparison) seed their forests with this value.
pub const DEFAULT_TRAIN_SEED: u64 = 42;

fn udf_err(function: &str, e: MlError) -> DbError {
    DbError::Udf { function: function.to_owned(), message: e.to_string() }
}

/// The schema every trainer returns: the pickled classifier plus its
/// metadata, ready to be `INSERT INTO models SELECT * FROM train(...)`.
fn train_output_schema() -> DbResult<Arc<Schema>> {
    Ok(Arc::new(Schema::new(vec![
        Field::not_null("classifier", DataType::Blob),
        Field::not_null("algorithm", DataType::Varchar),
        Field::not_null("parameters", DataType::Varchar),
        Field::not_null("n_features", DataType::Int32),
        Field::not_null("train_rows", DataType::Int64),
    ])?))
}

fn train_output(sm: &StoredModel, parameters: String, rows: usize) -> DbResult<Batch> {
    let blob = sm.to_blob();
    Batch::new(
        train_output_schema()?,
        vec![
            Arc::new(Column::from_blobs([blob.as_slice()])),
            Arc::new(Column::from_strings([sm.algorithm()])),
            Arc::new(Column::from_strings([parameters.as_str()])),
            Arc::new(Column::from_i32s(vec![sm.model_n_features() as i32])),
            Arc::new(Column::from_i64s(vec![rows as i64])),
        ],
    )
}

impl StoredModel {
    fn model_n_features(&self) -> usize {
        use mlcs_ml::Classifier;
        self.model.n_features()
    }
}

/// Splits trainer arguments into `(features, labels, trailing scalars)`.
///
/// Convention (matching the paper's `train(data, classes, n_estimators)`):
/// the final `n_scalars` arguments are length-1 parameters, the column
/// before them is the label column, and everything earlier is a feature.
fn split_train_args<'a>(
    function: &str,
    args: &'a [Arc<Column>],
    n_scalars: usize,
) -> DbResult<(Vec<&'a Column>, &'a Column, Vec<&'a Column>)> {
    if args.len() < 2 + n_scalars {
        return Err(DbError::Udf {
            function: function.to_owned(),
            message: format!(
                "expected at least {} arguments (features..., labels, {n_scalars} parameter(s)), got {}",
                2 + n_scalars,
                args.len()
            ),
        });
    }
    let scalars: Vec<&Column> = args[args.len() - n_scalars..].iter().map(|c| c.as_ref()).collect();
    for (i, s) in scalars.iter().enumerate() {
        if s.len() != 1 {
            return Err(DbError::Udf {
                function: function.to_owned(),
                message: format!("parameter argument {i} must be a scalar, got {} rows", s.len()),
            });
        }
    }
    let labels = args[args.len() - n_scalars - 1].as_ref();
    let features: Vec<&Column> =
        args[..args.len() - n_scalars - 1].iter().map(|c| c.as_ref()).collect();
    Ok((features, labels, scalars))
}

/// The paper's `train` function: a random-forest trainer as a table UDF.
///
/// SQL: `SELECT * FROM train((SELECT f1, f2 FROM t), (SELECT label FROM t),
/// n_estimators)`. Returns `TABLE(classifier BLOB, algorithm VARCHAR,
/// parameters VARCHAR, n_features INTEGER, train_rows BIGINT)`.
pub struct TrainUdf {
    /// RNG seed for reproducible forests.
    pub seed: u64,
    /// Worker threads for tree fitting (0 = available parallelism).
    pub n_jobs: usize,
}

impl Default for TrainUdf {
    fn default() -> Self {
        TrainUdf { seed: DEFAULT_TRAIN_SEED, n_jobs: 0 }
    }
}

impl TableUdf for TrainUdf {
    fn name(&self) -> &str {
        "train"
    }

    fn schema(&self, arg_types: &[DataType]) -> DbResult<Arc<Schema>> {
        if arg_types.len() < 3 {
            return Err(DbError::Udf {
                function: "train".into(),
                message: "usage: train(features..., labels, n_estimators)".into(),
            });
        }
        train_output_schema()
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Batch> {
        let (features, labels, scalars) = split_train_args("train", args, 1)?;
        let n_estimators = scalars[0].i64_at(0).ok_or_else(|| DbError::Udf {
            function: "train".into(),
            message: "n_estimators must be a non-NULL integer".into(),
        })?;
        if n_estimators < 1 {
            return Err(DbError::Udf {
                function: "train".into(),
                message: format!("n_estimators must be positive, got {n_estimators}"),
            });
        }
        let x = matrix_from_columns(&features)?;
        let y = labels_from_column(labels)?;
        // `n_jobs == 0` resolves through the shared thread policy, so the
        // MLCS_THREADS override also pins tree-fitting parallelism.
        let jobs = if self.n_jobs == 0 { hardware_threads() } else { self.n_jobs };
        let forest = RandomForestClassifier::new(n_estimators as usize)
            .with_seed(self.seed)
            .with_n_jobs(jobs);
        mlcs_columnar::metrics::counter("udf.train.rows").add(x.rows() as u64);
        let (sm, _) = mlcs_columnar::metrics::time_section("udf.train.time_ns", || {
            StoredModel::train(Model::RandomForest(forest), &x, &y)
        });
        let sm = sm.map_err(|e| udf_err("train", e))?;
        train_output(&sm, format!("n_estimators={n_estimators}"), x.rows())
    }
}

/// Generalized trainer: `train_model('algorithm', features..., labels,
/// param)`.
///
/// Algorithms and their `param`: `random_forest` (trees),
/// `decision_tree` (max depth, 0 = unbounded), `logistic_regression`
/// (epochs), `gaussian_nb` (ignored), `knn` (k).
pub struct TrainModelUdf {
    /// RNG seed for stochastic algorithms.
    pub seed: u64,
}

impl Default for TrainModelUdf {
    fn default() -> Self {
        TrainModelUdf { seed: DEFAULT_TRAIN_SEED }
    }
}

impl TableUdf for TrainModelUdf {
    fn name(&self) -> &str {
        "train_model"
    }

    fn schema(&self, arg_types: &[DataType]) -> DbResult<Arc<Schema>> {
        if arg_types.len() < 4 {
            return Err(DbError::Udf {
                function: "train_model".into(),
                message: "usage: train_model('algorithm', features..., labels, param)".into(),
            });
        }
        if arg_types[0] != DataType::Varchar {
            return Err(DbError::Udf {
                function: "train_model".into(),
                message: format!("first argument must be the algorithm name, got {}", arg_types[0]),
            });
        }
        train_output_schema()
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Batch> {
        if args.is_empty() || args[0].len() != 1 {
            return Err(DbError::Udf {
                function: "train_model".into(),
                message: "algorithm name must be a scalar string".into(),
            });
        }
        let algo = args[0].strings().map(|s| s.get(0).to_owned()).ok_or_else(|| DbError::Udf {
            function: "train_model".into(),
            message: "algorithm name must be a VARCHAR".into(),
        })?;
        let (features, labels, scalars) = split_train_args("train_model", &args[1..], 1)?;
        let param = scalars[0].i64_at(0).unwrap_or(0);
        let model = match algo.as_str() {
            "random_forest" => Model::RandomForest(
                RandomForestClassifier::new(param.max(1) as usize).with_seed(self.seed),
            ),
            "decision_tree" => {
                let mut t = DecisionTreeClassifier::new().with_seed(self.seed);
                if param > 0 {
                    t.max_depth = Some(param as usize);
                }
                Model::DecisionTree(t)
            }
            "logistic_regression" => Model::LogisticRegression(
                LogisticRegression::new().with_seed(self.seed).with_epochs(param.max(1) as usize),
            ),
            "gaussian_nb" => Model::GaussianNb(GaussianNb::new()),
            "knn" => Model::Knn(KNearestNeighbors::new(param.max(1) as usize)),
            other => {
                return Err(DbError::Udf {
                    function: "train_model".into(),
                    message: format!(
                        "unknown algorithm '{other}' (expected random_forest, decision_tree, \
                         logistic_regression, gaussian_nb, or knn)"
                    ),
                })
            }
        };
        let x = matrix_from_columns(&features)?;
        let y = labels_from_column(labels)?;
        let sm = StoredModel::train(model, &x, &y).map_err(|e| udf_err("train_model", e))?;
        train_output(&sm, format!("algorithm={algo},param={param}"), x.rows())
    }
}

/// Splits predictor arguments into `(features, model, trailing scalars)`:
/// feature columns first, then the classifier BLOB, then `n_extra`
/// trailing scalar parameters.
fn split_predict_args<'a>(
    function: &str,
    args: &'a [Arc<Column>],
    n_extra: usize,
) -> DbResult<(Vec<&'a Column>, StoredModel, Vec<&'a Column>)> {
    if args.len() < 2 + n_extra {
        return Err(DbError::Udf {
            function: function.to_owned(),
            message: format!(
                "expected at least {} arguments (features..., classifier{}), got {}",
                2 + n_extra,
                if n_extra > 0 { ", parameter(s)" } else { "" },
                args.len()
            ),
        });
    }
    let extras: Vec<&Column> = args[args.len() - n_extra..].iter().map(|c| c.as_ref()).collect();
    let model_col = args[args.len() - n_extra - 1].as_ref();
    let blob = model_col.blobs().map(|b| b.get(0)).ok_or_else(|| DbError::Udf {
        function: function.to_owned(),
        message: format!("classifier argument must be a BLOB, got {}", model_col.data_type()),
    })?;
    let sm = StoredModel::from_blob(blob).map_err(|e| udf_err(function, e))?;
    let features: Vec<&Column> =
        args[..args.len() - n_extra - 1].iter().map(|c| c.as_ref()).collect();
    Ok((features, sm, extras))
}

/// The paper's `predict` function: classify feature columns with a stored
/// model.
///
/// SQL: `SELECT predict(f1, f2, (SELECT classifier FROM models ...)) FROM t`.
/// The classifier argument is a length-1 constant column (typically a
/// scalar subquery); feature columns are full length. With `parallel`,
/// the model layer splits rows into morsels predicted on the shared worker
/// pool — the paper's future-work item, registered separately as
/// `predict_parallel`. With a [`crate::cache::ModelCache`] attached
/// (`predict_cached`), repeated calls skip BLOB deserialization entirely —
/// the §5.1 in-memory-snapshot proposal. Every variant reuses the
/// column→matrix layout through a [`crate::cache::MatrixCache`] when
/// invoked again on the same column buffers.
pub struct PredictUdf {
    /// Morsel-parallel prediction (delegated to the model layer's pool
    /// integration; serial mode pins prediction to one thread).
    pub parallel: bool,
    /// Shared in-memory model snapshots; `None` decodes per invocation.
    pub cache: Option<Arc<crate::cache::ModelCache>>,
    /// Reused column→matrix layouts keyed by column buffer identity.
    pub matrix_cache: Arc<crate::cache::MatrixCache>,
}

impl PredictUdf {
    /// Single-threaded `predict`.
    pub fn serial() -> Self {
        PredictUdf { parallel: false, cache: None, matrix_cache: Arc::default() }
    }

    /// Morsel-parallel `predict_parallel`.
    pub fn parallel() -> Self {
        PredictUdf { parallel: true, cache: None, matrix_cache: Arc::default() }
    }

    /// `predict_cached`: serial prediction through a shared snapshot cache.
    pub fn cached(cache: Arc<crate::cache::ModelCache>) -> Self {
        PredictUdf { parallel: false, cache: Some(cache), matrix_cache: Arc::default() }
    }
}

impl ScalarUdf for PredictUdf {
    fn name(&self) -> &str {
        if self.cache.is_some() {
            "predict_cached"
        } else if self.parallel {
            "predict_parallel"
        } else {
            "predict"
        }
    }

    fn return_type(&self, arg_types: &[DataType]) -> DbResult<DataType> {
        if arg_types.len() < 2 {
            return Err(DbError::Udf {
                function: self.name().to_owned(),
                message: "usage: predict(features..., classifier)".into(),
            });
        }
        Ok(DataType::Int64)
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Column> {
        if args.len() < 2 {
            return Err(DbError::Udf {
                function: self.name().to_owned(),
                message: format!("usage: {}(features..., classifier)", self.name()),
            });
        }
        let model_col = args[args.len() - 1].as_ref();
        let blob = model_col.blobs().map(|b| b.get(0)).ok_or_else(|| DbError::Udf {
            function: self.name().to_owned(),
            message: format!("classifier argument must be a BLOB, got {}", model_col.data_type()),
        })?;
        // With a snapshot cache attached, repeated calls reuse the decoded
        // model (§5.1); otherwise deserialize per invocation — the cost the
        // paper wants to avoid, kept as the baseline `predict` measures.
        let sm: Arc<StoredModel> = match &self.cache {
            Some(cache) => cache.get_or_decode(blob)?,
            None => Arc::new(StoredModel::from_blob(blob).map_err(|e| udf_err(self.name(), e))?),
        };
        let feature_cols = &args[..args.len() - 1];
        let rows = feature_cols.first().map_or(0, |c| c.len());
        if rows == 0 {
            return Ok(Column::from_i64s(Vec::new()));
        }
        mlcs_columnar::metrics::counter(&format!("udf.{}.rows", self.name())).add(rows as u64);
        let x = self.matrix_cache.get_or_build(feature_cols)?;
        // The model layer splits rows into pool morsels on its own; the
        // serial variant pins it to one thread so `predict` stays a true
        // single-threaded baseline for the parallel speedup measurement.
        let pred = if self.parallel {
            sm.predict(&x)
        } else {
            mlcs_ml::parallel::with_threads(1, || sm.predict(&x))
        }
        .map_err(|e| udf_err(self.name(), e))?;
        Ok(Column::from_i64s(pred))
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

/// `predict_confidence(features..., classifier)` → DOUBLE: probability of
/// the predicted class per row; the quantity "use the model with the
/// highest confidence" (paper §3.3) maximizes.
pub struct PredictConfidenceUdf;

impl ScalarUdf for PredictConfidenceUdf {
    fn name(&self) -> &str {
        "predict_confidence"
    }

    fn return_type(&self, arg_types: &[DataType]) -> DbResult<DataType> {
        if arg_types.len() < 2 {
            return Err(DbError::Udf {
                function: "predict_confidence".into(),
                message: "usage: predict_confidence(features..., classifier)".into(),
            });
        }
        Ok(DataType::Float64)
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Column> {
        let (features, sm, _) = split_predict_args("predict_confidence", args, 0)?;
        let x = matrix_from_columns(&features)?;
        let conf = sm.confidence(&x).map_err(|e| udf_err("predict_confidence", e))?;
        Ok(Column::from_f64s(conf))
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

/// `predict_proba_of(features..., classifier, label)` → DOUBLE: the
/// model's probability for one specific raw label. Useful for ensemble
/// SQL that compares class probabilities across models.
pub struct PredictProbaOfUdf;

impl ScalarUdf for PredictProbaOfUdf {
    fn name(&self) -> &str {
        "predict_proba_of"
    }

    fn return_type(&self, arg_types: &[DataType]) -> DbResult<DataType> {
        if arg_types.len() < 3 {
            return Err(DbError::Udf {
                function: "predict_proba_of".into(),
                message: "usage: predict_proba_of(features..., classifier, label)".into(),
            });
        }
        Ok(DataType::Float64)
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Column> {
        let (features, sm, extras) = split_predict_args("predict_proba_of", args, 1)?;
        let label = extras[0].i64_at(0).ok_or_else(|| DbError::Udf {
            function: "predict_proba_of".into(),
            message: "label must be a non-NULL integer scalar".into(),
        })?;
        let x = matrix_from_columns(&features)?;
        let p = sm.proba_of(&x, label).map_err(|e| udf_err("predict_proba_of", e))?;
        Ok(Column::from_f64s(p))
    }

    fn parallel_safe(&self) -> bool {
        true
    }
}

/// `evaluate(features..., labels, classifier)` — a table UDF scoring a
/// stored model against labeled data, the paper's "Testing" stage as one
/// SQL call. Returns `TABLE(accuracy DOUBLE, macro_f1 DOUBLE,
/// log_loss DOUBLE, test_rows BIGINT)`.
pub struct EvaluateUdf;

impl TableUdf for EvaluateUdf {
    fn name(&self) -> &str {
        "evaluate"
    }

    fn schema(&self, arg_types: &[DataType]) -> DbResult<Arc<Schema>> {
        if arg_types.len() < 3 {
            return Err(DbError::Udf {
                function: "evaluate".into(),
                message: "usage: evaluate(features..., labels, classifier)".into(),
            });
        }
        Ok(Arc::new(Schema::new(vec![
            Field::not_null("accuracy", DataType::Float64),
            Field::not_null("macro_f1", DataType::Float64),
            Field::not_null("log_loss", DataType::Float64),
            Field::not_null("test_rows", DataType::Int64),
        ])?))
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Batch> {
        // Layout: features..., labels, classifier (a 1-row BLOB column).
        if args.len() < 3 {
            return Err(DbError::Udf {
                function: "evaluate".into(),
                message: "usage: evaluate(features..., labels, classifier)".into(),
            });
        }
        let model_col = args[args.len() - 1].as_ref();
        let blob = model_col.blobs().map(|b| b.get(0)).ok_or_else(|| DbError::Udf {
            function: "evaluate".into(),
            message: format!("classifier argument must be a BLOB, got {}", model_col.data_type()),
        })?;
        let sm = StoredModel::from_blob(blob).map_err(|e| udf_err("evaluate", e))?;
        let labels_col = args[args.len() - 2].as_ref();
        let features: Vec<&Column> = args[..args.len() - 2].iter().map(|c| c.as_ref()).collect();
        let x = matrix_from_columns(&features)?;
        let raw = labels_from_column(labels_col)?;
        let truth = sm.classes.encode(&raw).map_err(|e| udf_err("evaluate", e))?;
        let n_classes = sm.classes.n_classes();
        use mlcs_ml::Classifier;
        let pred_idx = sm.model.predict(&x).map_err(|e| udf_err("evaluate", e))?;
        let proba = sm.model.predict_proba(&x).map_err(|e| udf_err("evaluate", e))?;
        let accuracy =
            mlcs_ml::metrics::accuracy(&truth, &pred_idx).map_err(|e| udf_err("evaluate", e))?;
        let scores = mlcs_ml::metrics::precision_recall_f1(&truth, &pred_idx, n_classes)
            .map_err(|e| udf_err("evaluate", e))?;
        let ll = mlcs_ml::metrics::log_loss(&truth, &proba).map_err(|e| udf_err("evaluate", e))?;
        Batch::new(
            self.schema(&args.iter().map(|c| c.data_type()).collect::<Vec<_>>())?,
            vec![
                Arc::new(Column::from_f64s(vec![accuracy])),
                Arc::new(Column::from_f64s(vec![scores.macro_f1()])),
                Arc::new(Column::from_f64s(vec![ll])),
                Arc::new(Column::from_i64s(vec![x.rows() as i64])),
            ],
        )
    }
}

/// `cross_validate('algorithm', features..., labels, k, param)` — k-fold
/// cross-validation as a table UDF (the paper's §3 "Training and
/// Verification" stage). Returns one row per fold:
/// `TABLE(fold INTEGER, accuracy DOUBLE)`.
pub struct CrossValidateUdf {
    /// RNG seed for fold shuffling and stochastic models.
    pub seed: u64,
}

impl Default for CrossValidateUdf {
    fn default() -> Self {
        CrossValidateUdf { seed: DEFAULT_TRAIN_SEED }
    }
}

impl TableUdf for CrossValidateUdf {
    fn name(&self) -> &str {
        "cross_validate"
    }

    fn schema(&self, arg_types: &[DataType]) -> DbResult<Arc<Schema>> {
        if arg_types.len() < 5 {
            return Err(DbError::Udf {
                function: "cross_validate".into(),
                message: "usage: cross_validate('algorithm', features..., labels, k, param)".into(),
            });
        }
        Ok(Arc::new(Schema::new(vec![
            Field::not_null("fold", DataType::Int32),
            Field::not_null("accuracy", DataType::Float64),
        ])?))
    }

    fn invoke(&self, args: &[Arc<Column>]) -> DbResult<Batch> {
        if args.len() < 5 || args[0].len() != 1 {
            return Err(DbError::Udf {
                function: "cross_validate".into(),
                message: "usage: cross_validate('algorithm', features..., labels, k, param)".into(),
            });
        }
        let algo = args[0].strings().map(|s| s.get(0).to_owned()).ok_or_else(|| DbError::Udf {
            function: "cross_validate".into(),
            message: "algorithm name must be a VARCHAR".into(),
        })?;
        let (features, labels, scalars) = split_train_args("cross_validate", &args[1..], 2)?;
        let k = scalars[0].i64_at(0).unwrap_or(0);
        if k < 2 {
            return Err(DbError::Udf {
                function: "cross_validate".into(),
                message: format!("k must be at least 2, got {k}"),
            });
        }
        let param = scalars[1].i64_at(0).unwrap_or(0);
        let x = matrix_from_columns(&features)?;
        let raw = labels_from_column(labels)?;
        let classes = mlcs_ml::dataset::ClassMap::fit(&raw);
        let y = classes.encode(&raw).map_err(|e| udf_err("cross_validate", e))?;
        let seed = self.seed;
        let scores = match algo.as_str() {
            "random_forest" => mlcs_ml::model_selection::cross_validate(
                &x,
                &y,
                classes.n_classes(),
                k as usize,
                seed,
                || RandomForestClassifier::new(param.max(1) as usize).with_seed(seed),
            ),
            "decision_tree" => mlcs_ml::model_selection::cross_validate(
                &x,
                &y,
                classes.n_classes(),
                k as usize,
                seed,
                || {
                    let mut t = DecisionTreeClassifier::new().with_seed(seed);
                    if param > 0 {
                        t.max_depth = Some(param as usize);
                    }
                    t
                },
            ),
            "logistic_regression" => mlcs_ml::model_selection::cross_validate(
                &x,
                &y,
                classes.n_classes(),
                k as usize,
                seed,
                || LogisticRegression::new().with_seed(seed).with_epochs(param.max(1) as usize),
            ),
            "gaussian_nb" => mlcs_ml::model_selection::cross_validate(
                &x,
                &y,
                classes.n_classes(),
                k as usize,
                seed,
                GaussianNb::new,
            ),
            "knn" => mlcs_ml::model_selection::cross_validate(
                &x,
                &y,
                classes.n_classes(),
                k as usize,
                seed,
                || KNearestNeighbors::new(param.max(1) as usize),
            ),
            other => {
                return Err(DbError::Udf {
                    function: "cross_validate".into(),
                    message: format!("unknown algorithm '{other}'"),
                })
            }
        }
        .map_err(|e| udf_err("cross_validate", e))?;
        Batch::new(
            self.schema(&args.iter().map(|c| c.data_type()).collect::<Vec<_>>())?,
            vec![
                Arc::new(Column::from_i32s((0..scores.len() as i32).collect())),
                Arc::new(Column::from_f64s(scores)),
            ],
        )
    }
}

/// Registers the full suite of ML UDFs on a database: `train`,
/// `train_model`, `evaluate`, `cross_validate`, `predict`, `predict_parallel`,
/// `predict_cached` (§5.1 snapshot cache), `predict_confidence`, and
/// `predict_proba_of`.
pub fn register_ml_udfs(db: &Database) {
    db.register_table_udf(Arc::new(TrainUdf::default()));
    db.register_table_udf(Arc::new(TrainModelUdf::default()));
    db.register_table_udf(Arc::new(EvaluateUdf));
    db.register_table_udf(Arc::new(CrossValidateUdf::default()));
    db.register_scalar_udf(Arc::new(PredictUdf::serial()));
    db.register_scalar_udf(Arc::new(PredictUdf::parallel()));
    db.register_scalar_udf(Arc::new(PredictUdf::cached(Arc::new(
        crate::cache::ModelCache::default(),
    ))));
    db.register_scalar_udf(Arc::new(PredictConfidenceUdf));
    db.register_scalar_udf(Arc::new(PredictProbaOfUdf));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-blob dataset in SQL, labels 10/20.
    fn db_with_points() -> Database {
        let db = Database::new();
        register_ml_udfs(&db);
        db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
        let mut rows = Vec::new();
        for i in 0..40 {
            let (cx, label) = if i % 2 == 0 { (-3.0, 10) } else { (3.0, 20) };
            let j = (i / 2) as f64 * 0.05;
            rows.push(format!("({}, {}, {label})", cx + j, cx - j));
        }
        db.execute(&format!("INSERT INTO pts VALUES {}", rows.join(", "))).unwrap();
        db
    }

    #[test]
    fn listing1_train_from_sql() {
        let db = db_with_points();
        let out = db
            .query("SELECT * FROM train((SELECT x, y FROM pts), (SELECT label FROM pts), 8)")
            .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(
            out.schema().names(),
            vec!["classifier", "algorithm", "parameters", "n_features", "train_rows"]
        );
        assert_eq!(out.row(0)[1], mlcs_columnar::Value::Varchar("random_forest".into()));
        assert_eq!(out.row(0)[4], mlcs_columnar::Value::Int64(40));
        let blob = out.row(0)[0].as_blob().unwrap().to_vec();
        assert!(StoredModel::from_blob(&blob).is_ok());
    }

    #[test]
    fn listing2_predict_from_sql() {
        let db = db_with_points();
        db.execute(
            "CREATE TABLE models AS SELECT * FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 8)",
        )
        .unwrap();
        let out = db
            .query("SELECT label, predict(x, y, (SELECT classifier FROM models)) AS p FROM pts")
            .unwrap();
        assert_eq!(out.rows(), 40);
        let correct =
            (0..out.rows()).filter(|&r| out.row(r)[0].as_i64() == out.row(r)[1].as_i64()).count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn cached_predict_matches_uncached() {
        let db = db_with_points();
        db.execute(
            "CREATE TABLE models AS SELECT * FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 4)",
        )
        .unwrap();
        let plain =
            db.query("SELECT predict(x, y, (SELECT classifier FROM models)) FROM pts").unwrap();
        // Run twice so the second call exercises the cache-hit path.
        for _ in 0..2 {
            let cached = db
                .query("SELECT predict_cached(x, y, (SELECT classifier FROM models)) FROM pts")
                .unwrap();
            assert_eq!(cached.column(0), plain.column(0));
        }
    }

    #[test]
    fn parallel_predict_matches_serial() {
        let db = db_with_points();
        db.execute(
            "CREATE TABLE models AS SELECT * FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 4)",
        )
        .unwrap();
        let serial =
            db.query("SELECT predict(x, y, (SELECT classifier FROM models)) FROM pts").unwrap();
        let parallel = db
            .query("SELECT predict_parallel(x, y, (SELECT classifier FROM models)) FROM pts")
            .unwrap();
        assert_eq!(serial.column(0), parallel.column(0));
    }

    #[test]
    fn train_model_all_algorithms() {
        let db = db_with_points();
        for (algo, param) in [
            ("random_forest", 4),
            ("decision_tree", 0),
            ("logistic_regression", 100),
            ("gaussian_nb", 0),
            ("knn", 3),
        ] {
            let out = db
                .query(&format!(
                    "SELECT algorithm FROM train_model('{algo}',
                       (SELECT x, y FROM pts), (SELECT label FROM pts), {param})"
                ))
                .unwrap();
            assert_eq!(
                out.row(0)[0],
                mlcs_columnar::Value::Varchar(algo.into()),
                "algorithm {algo}"
            );
        }
        assert!(db
            .execute(
                "SELECT * FROM train_model('no_such', (SELECT x FROM pts),
                   (SELECT label FROM pts), 1)"
            )
            .is_err());
    }

    #[test]
    fn confidence_and_proba_udfs() {
        let db = db_with_points();
        db.execute(
            "CREATE TABLE models AS SELECT * FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 8)",
        )
        .unwrap();
        let out = db
            .query(
                "SELECT predict_confidence(x, y, (SELECT classifier FROM models)) AS c,
                        predict_proba_of(x, y, (SELECT classifier FROM models), 10) AS p10
                 FROM pts",
            )
            .unwrap();
        for r in 0..out.rows() {
            let c = out.row(r)[0].as_f64().unwrap();
            let p = out.row(r)[1].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!((0.0..=1.0).contains(&p));
            assert!(c >= 0.5 - 1e-9);
        }
    }

    #[test]
    fn cross_validate_udf_in_sql() {
        let db = db_with_points();
        let out = db
            .query(
                "SELECT * FROM cross_validate('gaussian_nb',
                   (SELECT x, y FROM pts), (SELECT label FROM pts), 4, 0)",
            )
            .unwrap();
        assert_eq!(out.rows(), 4);
        assert_eq!(out.schema().names(), vec!["fold", "accuracy"]);
        for i in 0..4 {
            let acc = out.row(i)[1].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&acc));
            assert!(acc > 0.8, "fold {i} accuracy {acc}");
        }
        // Aggregating fold scores with plain SQL.
        let mean = db
            .query_value(
                "SELECT AVG(accuracy) FROM cross_validate('decision_tree',
                   (SELECT x, y FROM pts), (SELECT label FROM pts), 4, 4)",
            )
            .unwrap();
        assert!(mean.as_f64().unwrap() > 0.8);
        // Bad k rejected.
        assert!(db
            .execute(
                "SELECT * FROM cross_validate('knn',
                   (SELECT x FROM pts), (SELECT label FROM pts), 1, 3)"
            )
            .is_err());
    }

    #[test]
    fn evaluate_udf_scores_in_sql() {
        let db = db_with_points();
        db.execute(
            "CREATE TABLE models AS SELECT * FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 8)",
        )
        .unwrap();
        let out = db
            .query(
                "SELECT * FROM evaluate((SELECT x, y FROM pts),
                                        (SELECT label FROM pts),
                                        (SELECT classifier FROM models))",
            )
            .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.schema().names(), vec!["accuracy", "macro_f1", "log_loss", "test_rows"]);
        let acc = out.row(0)[0].as_f64().unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(out.row(0)[2].as_f64().unwrap() >= 0.0);
        assert_eq!(out.row(0)[3].as_i64().unwrap(), 40);
        // Misuse: classifier must be a blob.
        assert!(db
            .execute("SELECT * FROM evaluate((SELECT x FROM pts), (SELECT label FROM pts), 3)")
            .is_err());
    }

    #[test]
    fn helpful_errors_on_misuse() {
        let db = db_with_points();
        // Too few arguments.
        assert!(db.execute("SELECT * FROM train((SELECT x FROM pts), 4)").is_err());
        // Non-integer labels.
        assert!(db
            .execute("SELECT * FROM train((SELECT x FROM pts), (SELECT y FROM pts), 4)")
            .is_err());
        // Predict with a non-BLOB classifier.
        assert!(db.execute("SELECT predict(x, y, 5) FROM pts").is_err());
        // Predict with a garbage blob.
        assert!(db.execute("SELECT predict(x, y, x'0011') FROM pts").is_err());
    }

    #[test]
    fn trained_model_survives_store_and_reload_via_sql() {
        let db = db_with_points();
        db.execute("CREATE TABLE m2 (name VARCHAR, classifier BLOB)").unwrap();
        db.execute(
            "INSERT INTO m2 SELECT 'rf', classifier FROM train(
               (SELECT x, y FROM pts), (SELECT label FROM pts), 4)",
        )
        .unwrap();
        let out = db
            .query("SELECT predict(x, y, (SELECT classifier FROM m2 WHERE name = 'rf')) FROM pts")
            .unwrap();
        assert_eq!(out.rows(), 40);
    }
}
