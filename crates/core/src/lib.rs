//! # mlcs-core — deep integration of machine learning into a column store
//!
//! The primary contribution of *Deep Integration of Machine Learning Into
//! Column Stores* (Raasveldt, Holanda, Mühleisen, Manegold — EDBT 2018),
//! reproduced in Rust on top of the `mlcs-columnar` engine and the
//! `mlcs-ml` library:
//!
//! * **Vectorized training UDFs** ([`udf::TrainUdf`]) — callable from SQL as
//!   `SELECT * FROM train((SELECT age, income FROM voters),
//!   (SELECT label FROM voters), 16)`, mirroring the paper's Listing 1. The
//!   UDF receives whole columns zero-copy, trains a random forest, pickles
//!   it, and returns a one-row table with the model BLOB and its metadata.
//! * **Vectorized prediction UDFs** ([`udf::PredictUdf`]) — the paper's
//!   Listing 2: `SELECT predict(age, income, (SELECT classifier FROM models
//!   WHERE ...)) FROM voters`. The model arrives as a length-1 constant
//!   column; features are borrowed slices.
//! * **Model storage** ([`modelstore::ModelStore`]) — trained models are
//!   pickled into a `BLOB` column of a regular `models` table together
//!   with their metadata (algorithm, hyperparameters, accuracy), enabling
//!   relational *meta-analysis* of models (paper §3.3).
//! * **Ensemble learning** ([`ensemble`]) — classify with the
//!   highest-confidence model, majority voting, and accuracy-weighted
//!   voting across stored models.
//! * **In-database pipelines** ([`pipeline`]) — preprocessing, train/test
//!   split, training, evaluation, and prediction executed entirely inside
//!   the database, plus a morsel-parallel prediction path (the paper's
//!   §5.1 future work).
//!
//! ## Quick start
//!
//! ```
//! use mlcs_columnar::Database;
//! use mlcs_core::register_ml_udfs;
//!
//! let db = Database::new();
//! register_ml_udfs(&db);
//! db.execute("CREATE TABLE points (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
//! db.execute(
//!     "INSERT INTO points VALUES (-2.0, -2.0, 0), (-1.5, -1.0, 0),
//!                                (-1.0, -2.5, 0), ( 1.0,  1.5, 1),
//!                                ( 2.0,  1.0, 1), ( 1.5,  2.5, 1)",
//! ).unwrap();
//! // Train inside the database (Listing 1 of the paper) ...
//! db.execute(
//!     "CREATE TABLE models AS SELECT * FROM train(
//!         (SELECT x, y FROM points), (SELECT label FROM points), 8)",
//! ).unwrap();
//! // ... and classify with the stored model (Listing 2).
//! let out = db.query(
//!     "SELECT predict(x, y, (SELECT classifier FROM models)) AS p FROM points",
//! ).unwrap();
//! assert_eq!(out.rows(), 6);
//! ```

#![deny(missing_docs)]

pub mod bridge;
pub mod cache;
pub mod ensemble;
pub mod meta;
pub mod modelstore;
pub mod pipeline;
pub mod stored;
pub mod udf;

pub use bridge::{labels_from_column, matrix_from_columns};
pub use cache::{MatrixCache, ModelCache};
pub use modelstore::{ModelMeta, ModelStore};
pub use stored::StoredModel;
pub use udf::register_ml_udfs;
