//! Bridging database columns and ML matrices.
//!
//! The paper's key efficiency argument is that vectorized UDFs hand the
//! model code whole columns without per-value conversion. Our equivalent:
//! `Float64` columns are memcpy'd straight into the row-major [`Matrix`];
//! other numeric types are widened in one vectorized pass. NULLs become
//! NaN and are rejected by model fitting with a clear error, pushing
//! cleaning into SQL where the paper does it.

use mlcs_columnar::{Column, DbError, DbResult};
use mlcs_ml::Matrix;

/// Builds a feature matrix from equally-long numeric columns.
pub fn matrix_from_columns(cols: &[&Column]) -> DbResult<Matrix> {
    if cols.is_empty() {
        return Err(DbError::Shape("at least one feature column required".into()));
    }
    let rows = cols[0].len();
    for (i, c) in cols.iter().enumerate() {
        if c.len() != rows {
            return Err(DbError::Shape(format!(
                "feature column {i} has {} rows, expected {rows}",
                c.len()
            )));
        }
    }
    let ncols = cols.len();
    let mut data = vec![0.0f64; rows * ncols];
    for (j, col) in cols.iter().enumerate() {
        // NULL-free Float64 columns scatter straight from the borrowed
        // buffer; other types (or NULL-bearing columns) widen once into a
        // scratch vector first. Either way each cell is written exactly
        // once — the old path copied every column twice.
        let widened;
        let src: &[f64] = match col.f64s() {
            Some(s) if col.null_count() == 0 => s,
            _ => {
                widened = col.to_f64_vec()?;
                &widened
            }
        };
        for (r, &v) in src.iter().enumerate() {
            data[r * ncols + j] = v;
        }
    }
    Matrix::new(data, rows, ncols)
        .map_err(|e| DbError::Shape(format!("building feature matrix: {e}")))
}

/// Extracts integer class labels from a column. NULL labels are an error
/// (the paper's pipeline generates labels before training).
pub fn labels_from_column(col: &Column) -> DbResult<Vec<i64>> {
    if !col.data_type().is_integer() && col.data_type() != mlcs_columnar::DataType::Boolean {
        return Err(DbError::Type(format!(
            "class labels must be integers, got {}",
            col.data_type()
        )));
    }
    (0..col.len())
        .map(|i| {
            col.i64_at(i).ok_or_else(|| {
                DbError::Bind(format!("NULL label at row {i}; clean labels before training"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_conversion_widens_types() {
        let a = Column::from_i32s(vec![1, 2]);
        let b = Column::from_f64s(vec![0.5, 1.5]);
        let m = matrix_from_columns(&[&a, &b]).unwrap();
        assert_eq!(m.row(0), &[1.0, 0.5]);
        assert_eq!(m.row(1), &[2.0, 1.5]);
    }

    #[test]
    fn nulls_become_nan() {
        let a = Column::from_opt_i32s(vec![Some(1), None]);
        let m = matrix_from_columns(&[&a]).unwrap();
        assert!(m.get(1, 0).is_nan());
    }

    #[test]
    fn shape_and_type_errors() {
        let a = Column::from_i32s(vec![1, 2]);
        let short = Column::from_i32s(vec![1]);
        assert!(matrix_from_columns(&[&a, &short]).is_err());
        assert!(matrix_from_columns(&[]).is_err());
        let s = Column::from_strings(["x", "y"]);
        assert!(matrix_from_columns(&[&s]).is_err());
    }

    #[test]
    fn labels_extracted_and_validated() {
        let l = Column::from_i32s(vec![5, 7]);
        assert_eq!(labels_from_column(&l).unwrap(), vec![5, 7]);
        let n = Column::from_opt_i32s(vec![Some(1), None]);
        assert!(labels_from_column(&n).is_err());
        let f = Column::from_f64s(vec![1.0]);
        assert!(labels_from_column(&f).is_err());
        let b = Column::from_bools(vec![true, false]);
        assert_eq!(labels_from_column(&b).unwrap(), vec![1, 0]);
    }
}
