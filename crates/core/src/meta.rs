//! Relational meta-analysis of stored models (paper §3.3).
//!
//! Because models live in an ordinary table, questions about models are
//! SQL queries. This module packages the common ones; anything else is a
//! `db.query(...)` away.

use mlcs_columnar::{Batch, Database, DbResult};

/// Accuracy leaderboard: all models ordered by accuracy, best first.
pub fn leaderboard(db: &Database) -> DbResult<Batch> {
    db.query(
        "SELECT name, algorithm, parameters, accuracy, macro_f1, test_rows
         FROM models
         WHERE accuracy IS NOT NULL
         ORDER BY accuracy DESC, name ASC",
    )
}

/// Mean accuracy and model count per algorithm — which model family works
/// best on this data?
pub fn accuracy_by_algorithm(db: &Database) -> DbResult<Batch> {
    db.query(
        "SELECT algorithm,
                COUNT(*) AS n_models,
                AVG(accuracy) AS mean_accuracy,
                MAX(accuracy) AS best_accuracy
         FROM models
         WHERE accuracy IS NOT NULL
         GROUP BY algorithm
         ORDER BY mean_accuracy DESC",
    )
}

/// Storage cost per model: serialized size next to quality, quantifying
/// the serialization trade-off the paper's §5.1 discusses.
pub fn storage_report(db: &Database) -> DbResult<Batch> {
    db.query(
        "SELECT name, algorithm, OCTET_LENGTH(classifier) AS blob_bytes, accuracy
         FROM models
         ORDER BY blob_bytes DESC",
    )
}

/// Models meeting an accuracy floor, for ensemble candidate selection.
pub fn models_above(db: &Database, min_accuracy: f64) -> DbResult<Batch> {
    db.query(&format!(
        "SELECT name, accuracy FROM models
         WHERE accuracy >= {min_accuracy}
         ORDER BY accuracy DESC"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelstore::{ModelMeta, ModelStore};
    use crate::stored::StoredModel;
    use mlcs_ml::naive_bayes::GaussianNb;
    use mlcs_ml::tree::DecisionTreeClassifier;
    use mlcs_ml::{Matrix, Model};

    fn setup() -> Database {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        let x = Matrix::from_rows(&[[0.0], [1.0], [10.0], [11.0]]).unwrap();
        let y = [1i64, 1, 2, 2];
        let nb = StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &y).unwrap();
        let dt =
            StoredModel::train(Model::DecisionTree(DecisionTreeClassifier::new()), &x, &y).unwrap();
        for (model, name, acc) in [(&nb, "nb_a", 0.8), (&nb, "nb_b", 0.9), (&dt, "dt_a", 0.85)] {
            store
                .save(
                    model,
                    &ModelMeta {
                        name: name.into(),
                        parameters: "p".into(),
                        accuracy: Some(acc),
                        macro_f1: Some(acc),
                        train_rows: Some(4),
                        test_rows: Some(2),
                    },
                )
                .unwrap();
        }
        db
    }

    #[test]
    fn leaderboard_orders_by_accuracy() {
        let db = setup();
        let lb = leaderboard(&db).unwrap();
        assert_eq!(lb.rows(), 3);
        assert_eq!(lb.row(0)[0].as_str(), Some("nb_b"));
        assert_eq!(lb.row(2)[0].as_str(), Some("nb_a"));
    }

    #[test]
    fn per_algorithm_aggregation() {
        let db = setup();
        let by = accuracy_by_algorithm(&db).unwrap();
        assert_eq!(by.rows(), 2);
        // gaussian_nb mean = 0.85, decision_tree mean = 0.85; both present.
        let algos: Vec<String> =
            (0..2).map(|r| by.row(r)[0].as_str().unwrap().to_owned()).collect();
        assert!(algos.contains(&"gaussian_nb".to_owned()));
        assert!(algos.contains(&"decision_tree".to_owned()));
    }

    #[test]
    fn storage_report_sizes_positive() {
        let db = setup();
        let rep = storage_report(&db).unwrap();
        for r in 0..rep.rows() {
            assert!(rep.row(r)[2].as_i64().unwrap() > 0);
        }
    }

    #[test]
    fn threshold_filter() {
        let db = setup();
        assert_eq!(models_above(&db, 0.84).unwrap().rows(), 2);
        assert_eq!(models_above(&db, 0.95).unwrap().rows(), 0);
    }
}
