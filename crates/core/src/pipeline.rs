//! In-database training pipelines: preprocessing, train/test split,
//! training, evaluation, and storage without data ever leaving the
//! database process.

use crate::bridge::{labels_from_column, matrix_from_columns};
use crate::modelstore::{ModelMeta, ModelStore};
use crate::stored::StoredModel;
use mlcs_columnar::{Column, Database, DbError, DbResult};
use mlcs_ml::dataset::ClassMap;
use mlcs_ml::forest::RandomForestClassifier;
use mlcs_ml::knn::KNearestNeighbors;
use mlcs_ml::linear::LogisticRegression;
use mlcs_ml::metrics::{accuracy, precision_recall_f1};
use mlcs_ml::model_selection::train_test_split;
use mlcs_ml::naive_bayes::GaussianNb;
use mlcs_ml::tree::DecisionTreeClassifier;
use mlcs_ml::{Classifier, Model};

/// Which algorithm to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Random forest with the given tree count (the paper's model).
    RandomForest {
        /// Number of trees.
        n_estimators: usize,
    },
    /// Single CART tree with optional depth bound.
    DecisionTree {
        /// Depth bound.
        max_depth: Option<usize>,
    },
    /// Logistic regression with the given epoch count.
    LogisticRegression {
        /// Training epochs.
        epochs: usize,
    },
    /// Gaussian naive Bayes.
    GaussianNb,
    /// k-nearest neighbors.
    Knn {
        /// Neighbor count.
        k: usize,
    },
}

impl Algorithm {
    fn build(self, seed: u64, n_jobs: usize) -> Model {
        match self {
            Algorithm::RandomForest { n_estimators } => Model::RandomForest(
                RandomForestClassifier::new(n_estimators).with_seed(seed).with_n_jobs(n_jobs),
            ),
            Algorithm::DecisionTree { max_depth } => {
                let mut t = DecisionTreeClassifier::new().with_seed(seed);
                t.max_depth = max_depth;
                Model::DecisionTree(t)
            }
            Algorithm::LogisticRegression { epochs } => Model::LogisticRegression(
                LogisticRegression::new().with_seed(seed).with_epochs(epochs),
            ),
            Algorithm::GaussianNb => Model::GaussianNb(GaussianNb::new()),
            Algorithm::Knn { k } => Model::Knn(KNearestNeighbors::new(k)),
        }
    }

    /// Hyperparameter description for the model store.
    pub fn describe(self) -> String {
        match self {
            Algorithm::RandomForest { n_estimators } => format!("n_estimators={n_estimators}"),
            Algorithm::DecisionTree { max_depth } => format!("max_depth={max_depth:?}"),
            Algorithm::LogisticRegression { epochs } => format!("epochs={epochs}"),
            Algorithm::GaussianNb => "default".into(),
            Algorithm::Knn { k } => format!("k={k}"),
        }
    }
}

/// Options for [`train_in_db`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Which model to train.
    pub algorithm: Algorithm,
    /// Fraction of rows held out for testing.
    pub test_fraction: f64,
    /// RNG seed (split + model).
    pub seed: u64,
    /// Worker threads for parallel-capable models (0 = auto).
    pub n_jobs: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            algorithm: Algorithm::RandomForest { n_estimators: 16 },
            test_fraction: 0.25,
            seed: 42,
            n_jobs: 0,
        }
    }
}

/// The outcome of an in-database training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// The trained model (also stored if a name was given).
    pub model: StoredModel,
    /// Test-set accuracy.
    pub accuracy: f64,
    /// Test-set macro F1.
    pub macro_f1: f64,
    /// Training rows used.
    pub train_rows: usize,
    /// Test rows used.
    pub test_rows: usize,
}

/// Trains a model on the result of `query` (all columns but the last are
/// features; the last column is the integer label), evaluating on a held-
/// out fraction. If `store_as` is given, the model and its metrics are
/// saved to the model store under that name.
///
/// This is the whole paper pipeline as one call: SQL does the
/// preprocessing (the query), the split/fit/evaluate happens in-process on
/// borrowed columns, and the result lands back in a table.
pub fn train_in_db(
    db: &Database,
    query: &str,
    options: &TrainOptions,
    store_as: Option<&str>,
) -> DbResult<TrainReport> {
    let batch = db.query(query)?;
    if batch.width() < 2 {
        return Err(DbError::Shape(
            "training query must return at least one feature column plus the label column".into(),
        ));
    }
    let label_col = batch.column(batch.width() - 1);
    let feature_cols: Vec<&Column> =
        batch.columns()[..batch.width() - 1].iter().map(|c| c.as_ref()).collect();
    let x = matrix_from_columns(&feature_cols)?;
    let raw = labels_from_column(label_col)?;
    let classes = ClassMap::fit(&raw);
    let y = classes
        .encode(&raw)
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;

    let split = train_test_split(&x, &y, options.test_fraction, options.seed)
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;

    let mut model = options.algorithm.build(options.seed, options.n_jobs);
    model
        .fit(&split.x_train, &split.y_train, classes.n_classes())
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;
    let pred = model
        .predict(&split.x_test)
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;
    let acc = accuracy(&split.y_test, &pred)
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;
    let scores = precision_recall_f1(&split.y_test, &pred, classes.n_classes())
        .map_err(|e| DbError::Udf { function: "train_in_db".into(), message: e.to_string() })?;

    let stored = StoredModel { model, classes };
    let report = TrainReport {
        model: stored.clone(),
        accuracy: acc,
        macro_f1: scores.macro_f1(),
        train_rows: split.x_train.rows(),
        test_rows: split.x_test.rows(),
    };
    if let Some(name) = store_as {
        let store = ModelStore::open(db)?;
        store.save(
            &stored,
            &ModelMeta {
                name: name.to_owned(),
                parameters: options.algorithm.describe(),
                accuracy: Some(report.accuracy),
                macro_f1: Some(report.macro_f1),
                train_rows: Some(report.train_rows as i64),
                test_rows: Some(report.test_rows as i64),
            },
        )?;
    }
    Ok(report)
}

/// Applies a stored model to the result of `query` (every column is a
/// feature), returning the predicted raw labels as a column.
pub fn predict_in_db(db: &Database, query: &str, model: &StoredModel) -> DbResult<Column> {
    let batch = db.query(query)?;
    let feature_cols: Vec<&Column> = batch.columns().iter().map(|c| c.as_ref()).collect();
    let x = matrix_from_columns(&feature_cols)?;
    let pred = model
        .predict(&x)
        .map_err(|e| DbError::Udf { function: "predict_in_db".into(), message: e.to_string() })?;
    Ok(Column::from_i64s(pred))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_blobs(n: usize) -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE, label INTEGER)").unwrap();
        let mut rows = Vec::new();
        for i in 0..n {
            let (c, label) = if i % 2 == 0 { (-2.0, 10) } else { (2.0, 20) };
            let j = (i as f64) * 0.001;
            rows.push(format!("({}, {}, {label})", c + j, c - j));
        }
        db.execute(&format!("INSERT INTO pts VALUES {}", rows.join(", "))).unwrap();
        db
    }

    #[test]
    fn full_pipeline_trains_evaluates_stores() {
        let db = db_with_blobs(200);
        let report =
            train_in_db(&db, "SELECT x, y, label FROM pts", &TrainOptions::default(), Some("rf16"))
                .unwrap();
        assert!(report.accuracy > 0.95, "accuracy {}", report.accuracy);
        assert_eq!(report.train_rows + report.test_rows, 200);
        // The model is now in the models table, queryable by SQL.
        let acc = db.query_value("SELECT accuracy FROM models WHERE name = 'rf16'").unwrap();
        assert!(acc.as_f64().unwrap() > 0.95);
    }

    #[test]
    fn predict_in_db_applies_model() {
        let db = db_with_blobs(100);
        let report = train_in_db(
            &db,
            "SELECT x, y, label FROM pts",
            &TrainOptions { algorithm: Algorithm::GaussianNb, ..Default::default() },
            None,
        )
        .unwrap();
        let pred = predict_in_db(&db, "SELECT x, y FROM pts", &report.model).unwrap();
        assert_eq!(pred.len(), 100);
        let labels = db.query("SELECT label FROM pts").unwrap();
        let correct = (0..100).filter(|&i| pred.i64_at(i) == labels.column(0).i64_at(i)).count();
        assert!(correct > 95);
    }

    #[test]
    fn every_algorithm_runs_through_the_pipeline() {
        let db = db_with_blobs(120);
        for algo in [
            Algorithm::RandomForest { n_estimators: 4 },
            Algorithm::DecisionTree { max_depth: Some(4) },
            Algorithm::LogisticRegression { epochs: 100 },
            Algorithm::GaussianNb,
            Algorithm::Knn { k: 3 },
        ] {
            let report = train_in_db(
                &db,
                "SELECT x, y, label FROM pts",
                &TrainOptions { algorithm: algo, ..Default::default() },
                None,
            )
            .unwrap();
            assert!(report.accuracy > 0.9, "{algo:?} accuracy {}", report.accuracy);
        }
    }

    #[test]
    fn rejects_bad_training_queries() {
        let db = db_with_blobs(10);
        // Only one column: no features.
        assert!(train_in_db(&db, "SELECT label FROM pts", &TrainOptions::default(), None).is_err());
        // Labels are floats.
        assert!(train_in_db(&db, "SELECT x, y FROM pts", &TrainOptions::default(), None).is_err());
    }

    #[test]
    fn sql_preprocessing_feeds_training() {
        // WHERE-clause cleaning + derived feature, all in SQL.
        let db = db_with_blobs(100);
        db.execute("INSERT INTO pts VALUES (NULL, 0.0, 10)").unwrap();
        let report = train_in_db(
            &db,
            "SELECT x, y, x + y AS sum_xy, label FROM pts WHERE x IS NOT NULL",
            &TrainOptions { algorithm: Algorithm::GaussianNb, ..Default::default() },
            None,
        )
        .unwrap();
        assert!(report.accuracy > 0.9);
    }
}
