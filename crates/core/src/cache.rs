//! Model snapshot cache — the paper's §5.1 future-work item, implemented.
//!
//! > "Whenever a model is stored in the database, we are serializing it to
//! > a BLOB. Before it can be used again, it must be deserialized. For
//! > larger models, this can have a performance impact. The database
//! > system could be extended to directly store snapshots of the in-memory
//! > representation of the models to avoid this (de)serialization
//! > overhead."
//!
//! [`ModelCache`] keeps deserialized [`StoredModel`]s keyed by a hash of
//! their BLOB bytes, so repeated `predict` calls against the same stored
//! model skip unpickling entirely — the in-memory snapshot the paper asks
//! for, without changing the durable representation. The cache is shared
//! by the `predict_cached` UDF (see [`crate::udf`]).

use crate::stored::StoredModel;
use mlcs_columnar::{DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// 64-bit FNV-1a over the blob bytes. Collisions are guarded by also
/// keying on the blob length, and a false hit could only occur between
/// two *valid* model blobs colliding on both — at which point the pickle
/// checksum layer has already vouched for each blob independently.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A bounded cache of deserialized models.
pub struct ModelCache {
    entries: Mutex<HashMap<(u64, usize), Arc<StoredModel>>>,
    capacity: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ModelCache {
    /// A cache holding at most `capacity` models (≥ 1).
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Returns the cached in-memory model for `blob`, deserializing and
    /// inserting on first sight. When full, an arbitrary entry is evicted
    /// (models are immutable, so eviction only costs a future re-decode).
    pub fn get_or_decode(&self, blob: &[u8]) -> DbResult<Arc<StoredModel>> {
        let key = (fnv1a(blob), blob.len());
        if let Some(hit) = self.entries.lock().get(&key).cloned() {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            mlcs_columnar::metrics::counter("modelstore.cache.hits").incr();
            return Ok(hit);
        }
        self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        mlcs_columnar::metrics::counter("modelstore.cache.misses").incr();
        let model = Arc::new(StoredModel::from_blob(blob).map_err(|e| DbError::Udf {
            function: "model cache".into(),
            message: e.to_string(),
        })?);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            if let Some(&victim) = entries.keys().next() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, model.clone());
        Ok(model)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached model.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcs_ml::naive_bayes::GaussianNb;
    use mlcs_ml::{Matrix, Model};

    fn blob(seed: f64) -> Vec<u8> {
        let x = Matrix::from_rows(&[[seed], [seed + 1.0], [seed + 10.0], [seed + 11.0]]).unwrap();
        StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &[1, 1, 2, 2])
            .unwrap()
            .to_blob()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ModelCache::new(8);
        let b = blob(0.0);
        let a1 = cache.get_or_decode(&b).unwrap();
        let a2 = cache.get_or_decode(&b).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "same in-memory snapshot expected");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_blobs_distinct_entries() {
        let cache = ModelCache::new(8);
        let m1 = cache.get_or_decode(&blob(0.0)).unwrap();
        let m2 = cache.get_or_decode(&blob(100.0)).unwrap();
        assert!(!Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_entries() {
        let cache = ModelCache::new(2);
        for i in 0..5 {
            cache.get_or_decode(&blob(i as f64 * 50.0)).unwrap();
        }
        assert!(cache.len() <= 2);
    }

    #[test]
    fn garbage_blob_not_cached() {
        let cache = ModelCache::new(2);
        assert!(cache.get_or_decode(&[1, 2, 3]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache = ModelCache::new(4);
        cache.get_or_decode(&blob(0.0)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        // Re-decoding counts as a miss again.
        cache.get_or_decode(&blob(0.0)).unwrap();
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ModelCache::new(4));
        let b = Arc::new(blob(0.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        cache.get_or_decode(&b).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 160);
        assert!(misses >= 1);
    }
}
