//! Model snapshot cache — the paper's §5.1 future-work item, implemented.
//!
//! > "Whenever a model is stored in the database, we are serializing it to
//! > a BLOB. Before it can be used again, it must be deserialized. For
//! > larger models, this can have a performance impact. The database
//! > system could be extended to directly store snapshots of the in-memory
//! > representation of the models to avoid this (de)serialization
//! > overhead."
//!
//! [`ModelCache`] keeps deserialized [`StoredModel`]s keyed by a hash of
//! their BLOB bytes, so repeated `predict` calls against the same stored
//! model skip unpickling entirely — the in-memory snapshot the paper asks
//! for, without changing the durable representation. The cache is shared
//! by the `predict_cached` UDF (see [`crate::udf`]).

use crate::stored::StoredModel;
use mlcs_columnar::{Column, DbError, DbResult};
use mlcs_ml::Matrix;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// 64-bit FNV-1a over the blob bytes. Collisions are guarded by also
/// keying on the blob length, and a false hit could only occur between
/// two *valid* model blobs colliding on both — at which point the pickle
/// checksum layer has already vouched for each blob independently.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A bounded cache of deserialized models.
pub struct ModelCache {
    entries: Mutex<HashMap<(u64, usize), Arc<StoredModel>>>,
    capacity: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ModelCache {
    /// A cache holding at most `capacity` models (≥ 1).
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Returns the cached in-memory model for `blob`, deserializing and
    /// inserting on first sight. When full, an arbitrary entry is evicted
    /// (models are immutable, so eviction only costs a future re-decode).
    pub fn get_or_decode(&self, blob: &[u8]) -> DbResult<Arc<StoredModel>> {
        let key = (fnv1a(blob), blob.len());
        if let Some(hit) = self.entries.lock().get(&key).cloned() {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            mlcs_columnar::metrics::counter("modelstore.cache.hits").incr();
            return Ok(hit);
        }
        self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        mlcs_columnar::metrics::counter("modelstore.cache.misses").incr();
        let model = Arc::new(StoredModel::from_blob(blob).map_err(|e| DbError::Udf {
            function: "model cache".into(),
            message: e.to_string(),
        })?);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            if let Some(&victim) = entries.keys().next() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, model.clone());
        Ok(model)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached model.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new(64)
    }
}

/// A bounded cache of row-major feature matrices, keyed by the identity of
/// the column buffers they were built from.
///
/// Repeated predictions over the same stored columns (the common shape of
/// the paper's Figure 1 loop: one trained model, many `predict` calls)
/// re-run the column→matrix transpose every time. Since [`Column`]s are
/// immutable and shared via [`Arc`], the pointer identity of the argument
/// columns is a sound cache key — and each entry retains its `Arc`s, so a
/// key can never be reused by a freed-and-reallocated column while the
/// entry lives.
pub struct MatrixCache {
    #[allow(clippy::type_complexity)]
    entries: Mutex<HashMap<Vec<usize>, (Vec<Arc<Column>>, Arc<Matrix>)>>,
    capacity: usize,
}

impl MatrixCache {
    /// A cache holding at most `capacity` matrices (≥ 1).
    pub fn new(capacity: usize) -> MatrixCache {
        MatrixCache { entries: Mutex::new(HashMap::new()), capacity: capacity.max(1) }
    }

    /// Returns the cached matrix for exactly these column buffers, building
    /// and inserting it on first sight. When full, an arbitrary entry is
    /// evicted (matrices are immutable, so eviction only costs a rebuild).
    pub fn get_or_build(&self, cols: &[Arc<Column>]) -> DbResult<Arc<Matrix>> {
        let key: Vec<usize> = cols.iter().map(|c| Arc::as_ptr(c) as usize).collect();
        if let Some((_, hit)) = self.entries.lock().get(&key).cloned() {
            mlcs_columnar::metrics::counter("ml.matrix_cache.hits").incr();
            return Ok(hit);
        }
        mlcs_columnar::metrics::counter("ml.matrix_cache.misses").incr();
        let refs: Vec<&Column> = cols.iter().map(|c| c.as_ref()).collect();
        let matrix = Arc::new(crate::bridge::matrix_from_columns(&refs)?);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            if let Some(victim) = entries.keys().next().cloned() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, (cols.to_vec(), matrix.clone()));
        Ok(matrix)
    }

    /// Number of matrices currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MatrixCache {
    fn default() -> Self {
        MatrixCache::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcs_ml::naive_bayes::GaussianNb;
    use mlcs_ml::{Matrix, Model};

    fn blob(seed: f64) -> Vec<u8> {
        let x = Matrix::from_rows(&[[seed], [seed + 1.0], [seed + 10.0], [seed + 11.0]]).unwrap();
        StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &[1, 1, 2, 2])
            .unwrap()
            .to_blob()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ModelCache::new(8);
        let b = blob(0.0);
        let a1 = cache.get_or_decode(&b).unwrap();
        let a2 = cache.get_or_decode(&b).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "same in-memory snapshot expected");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_blobs_distinct_entries() {
        let cache = ModelCache::new(8);
        let m1 = cache.get_or_decode(&blob(0.0)).unwrap();
        let m2 = cache.get_or_decode(&blob(100.0)).unwrap();
        assert!(!Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_entries() {
        let cache = ModelCache::new(2);
        for i in 0..5 {
            cache.get_or_decode(&blob(i as f64 * 50.0)).unwrap();
        }
        assert!(cache.len() <= 2);
    }

    #[test]
    fn garbage_blob_not_cached() {
        let cache = ModelCache::new(2);
        assert!(cache.get_or_decode(&[1, 2, 3]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache = ModelCache::new(4);
        cache.get_or_decode(&blob(0.0)).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        // Re-decoding counts as a miss again.
        cache.get_or_decode(&blob(0.0)).unwrap();
        assert_eq!(cache.stats().1, 2);
    }

    #[test]
    fn matrix_cache_reuses_layout_for_same_columns() {
        let cache = MatrixCache::new(4);
        let a = Arc::new(mlcs_columnar::Column::from_f64s(vec![1.0, 2.0]));
        let b = Arc::new(mlcs_columnar::Column::from_i32s(vec![3, 4]));
        let m1 = cache.get_or_build(&[a.clone(), b.clone()]).unwrap();
        let m2 = cache.get_or_build(&[a.clone(), b.clone()]).unwrap();
        assert!(Arc::ptr_eq(&m1, &m2), "same layout expected on the second call");
        assert_eq!(m1.row(0), &[1.0, 3.0]);
        assert_eq!(cache.len(), 1);
        // A different column order is a different matrix.
        let m3 = cache.get_or_build(&[b.clone(), a.clone()]).unwrap();
        assert!(!Arc::ptr_eq(&m1, &m3));
        assert_eq!(m3.row(0), &[3.0, 1.0]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn matrix_cache_capacity_bounded() {
        let cache = MatrixCache::new(2);
        let cols: Vec<_> =
            (0..5).map(|i| Arc::new(mlcs_columnar::Column::from_f64s(vec![i as f64]))).collect();
        for c in &cols {
            cache.get_or_build(std::slice::from_ref(c)).unwrap();
        }
        assert!(cache.len() <= 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ModelCache::new(4));
        let b = Arc::new(blob(0.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        cache.get_or_decode(&b).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 160);
        assert!(misses >= 1);
    }
}
