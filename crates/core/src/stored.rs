//! [`StoredModel`]: the unit of model persistence — a trained classifier
//! bundled with its label mapping, pickled as one BLOB.

use mlcs_ml::dataset::ClassMap;
use mlcs_ml::{Classifier, Matrix, MlResult, Model};
use mlcs_pickle::{Pickle, PickleError, Reader, Writer};

/// A trained model plus the mapping between raw labels (as stored in the
/// database, e.g. party ids) and the dense class indices the model uses.
///
/// This is what the paper's `pickle.dumps(clf)` produces in spirit: one
/// opaque byte string that the `predict` UDF can revive and apply.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredModel {
    /// The trained classifier.
    pub model: Model,
    /// Raw-label ↔ class-index mapping.
    pub classes: ClassMap,
}

impl StoredModel {
    /// Trains `model` on features and **raw** labels, fitting the class
    /// map on the way.
    pub fn train(mut model: Model, x: &Matrix, raw_labels: &[i64]) -> MlResult<StoredModel> {
        let classes = ClassMap::fit(raw_labels);
        let y = classes.encode(raw_labels)?;
        model.fit(x, &y, classes.n_classes())?;
        Ok(StoredModel { model, classes })
    }

    /// Predicts **raw** labels for the feature rows.
    pub fn predict(&self, x: &Matrix) -> MlResult<Vec<i64>> {
        let idx = self.model.predict(x)?;
        self.classes.decode(&idx)
    }

    /// Per-row probability of the predicted class.
    pub fn confidence(&self, x: &Matrix) -> MlResult<Vec<f64>> {
        self.model.confidence(x)
    }

    /// Per-row probability of one specific raw label (0.0 for labels the
    /// model never saw).
    pub fn proba_of(&self, x: &Matrix, raw_label: i64) -> MlResult<Vec<f64>> {
        let proba = self.model.predict_proba(x)?;
        Ok(match self.classes.index(raw_label) {
            Some(c) => (0..proba.rows()).map(|r| proba.get(r, c as usize)).collect(),
            None => vec![0.0; proba.rows()],
        })
    }

    /// Serializes into a BLOB for storage in the database.
    ///
    /// Each call feeds the `pickle.serialize.invocations` counter and the
    /// `pickle.serialize.bytes` histogram — `mlcs-pickle` itself is a leaf
    /// crate, so the envelope's byte accounting hooks in here, at the point
    /// where models cross into the engine.
    pub fn to_blob(&self) -> Vec<u8> {
        let blob = mlcs_pickle::pickle(self);
        mlcs_columnar::metrics::counter("pickle.serialize.invocations").incr();
        mlcs_columnar::metrics::record_bytes("pickle.serialize.bytes", blob.len());
        blob
    }

    /// Revives a stored model from a BLOB, feeding the
    /// `pickle.deserialize.*` metrics (see [`StoredModel::to_blob`]).
    ///
    /// This is also the `pickle.decode` fault-injection point: `mlcs-pickle`
    /// is a leaf crate below the injector, so — like the metrics hooks —
    /// decode faults are applied here, where model bytes cross back into
    /// the engine. An injected `flip` exercises the envelope's checksum
    /// path; every other kind fails the decode outright.
    pub fn from_blob(blob: &[u8]) -> MlResult<StoredModel> {
        mlcs_columnar::metrics::counter("pickle.deserialize.invocations").incr();
        mlcs_columnar::metrics::record_bytes("pickle.deserialize.bytes", blob.len());
        match mlcs_columnar::faults::decide("pickle.decode") {
            None => Ok(mlcs_pickle::unpickle(blob)?),
            Some(f) => match f.kind {
                mlcs_columnar::faults::FaultKind::Delay => {
                    std::thread::sleep(mlcs_columnar::faults::DELAY);
                    Ok(mlcs_pickle::unpickle(blob)?)
                }
                mlcs_columnar::faults::FaultKind::Flip => {
                    let mut copy = blob.to_vec();
                    if !copy.is_empty() {
                        let pos = (f.rand as usize) % copy.len();
                        copy[pos] ^= 1 + ((f.rand >> 17) % 255) as u8;
                    }
                    Ok(mlcs_pickle::unpickle(&copy)?)
                }
                _ => Err(PickleError::Invalid("injected fault: pickle.decode".into()).into()),
            },
        }
    }

    /// The algorithm name of the wrapped model.
    pub fn algorithm(&self) -> &'static str {
        self.model.algorithm()
    }
}

impl Pickle for StoredModel {
    const CLASS_NAME: &'static str = "StoredModel";
    fn pickle_body(&self, w: &mut Writer) {
        self.classes.pickle_body(w);
        // The inner model is stored as a nested enveloped pickle so that
        // class-name dispatch (Model::from_blob) keeps working.
        w.put_bytes(&self.model.to_blob());
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        let classes = ClassMap::unpickle_body(r)?;
        let blob = r.get_bytes()?;
        let model = Model::from_blob(blob)
            .map_err(|e| PickleError::Invalid(format!("nested model: {e}")))?;
        Ok(StoredModel { model, classes })
    }
    fn size_hint(&self) -> usize {
        64 + self.model.to_blob().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcs_ml::forest::RandomForestClassifier;
    use mlcs_ml::naive_bayes::GaussianNb;

    fn data() -> (Matrix, Vec<i64>) {
        let rows: Vec<[f64; 1]> = (0..20).map(|i| [i as f64]).collect();
        // Raw labels are arbitrary ints (like party ids 100/200).
        let y: Vec<i64> = (0..20).map(|i| if i < 10 { 100 } else { 200 }).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn train_predict_with_raw_labels() {
        let (x, y) = data();
        let sm = StoredModel::train(
            Model::RandomForest(RandomForestClassifier::new(8).with_seed(1)),
            &x,
            &y,
        )
        .unwrap();
        let pred = sm.predict(&x).unwrap();
        assert!(pred.iter().all(|&p| p == 100 || p == 200));
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(acc >= 18);
    }

    #[test]
    fn blob_round_trip() {
        let (x, y) = data();
        let sm = StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &y).unwrap();
        let blob = sm.to_blob();
        let back = StoredModel::from_blob(&blob).unwrap();
        assert_eq!(back, sm);
        assert_eq!(back.predict(&x).unwrap(), sm.predict(&x).unwrap());
    }

    #[test]
    fn proba_of_unknown_label_is_zero() {
        let (x, y) = data();
        let sm = StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &y).unwrap();
        let p = sm.proba_of(&x, 999).unwrap();
        assert!(p.iter().all(|&v| v == 0.0));
        let p100 = sm.proba_of(&x, 100).unwrap();
        assert!(p100[0] > 0.5);
    }

    #[test]
    fn corrupted_blob_rejected() {
        let (x, y) = data();
        let sm = StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &y).unwrap();
        let mut blob = sm.to_blob();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        assert!(StoredModel::from_blob(&blob).is_err());
    }

    #[test]
    fn confidence_matches_predicted_class() {
        let (x, y) = data();
        let sm = StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &y).unwrap();
        let conf = sm.confidence(&x).unwrap();
        assert!(conf.iter().all(|&c| (0.5..=1.0).contains(&c)));
    }
}
