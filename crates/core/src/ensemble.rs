//! Ensemble learning over stored models (paper §3.3).
//!
//! With several models in the store, the same rows can be classified by
//! all of them and the results combined: majority voting, picking the
//! per-row answer of the most confident model, or weighting votes by each
//! model's recorded accuracy.

use crate::stored::StoredModel;
use mlcs_ml::{Matrix, MlError, MlResult};
use std::collections::HashMap;

/// How to combine per-model predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnsembleStrategy {
    /// One model, one vote; ties go to the lowest label.
    MajorityVote,
    /// Per row, take the answer of the model with the highest confidence
    /// (the paper's "use the result of the model that reports the highest
    /// confidence").
    HighestConfidence,
    /// Votes weighted by the models' accuracies (pass via
    /// [`ensemble_predict_weighted`]).
    AccuracyWeighted,
}

/// Combines predictions from several models by majority vote or highest
/// confidence.
pub fn ensemble_predict(
    models: &[StoredModel],
    x: &Matrix,
    strategy: EnsembleStrategy,
) -> MlResult<Vec<i64>> {
    match strategy {
        EnsembleStrategy::MajorityVote => {
            let weights = vec![1.0; models.len()];
            ensemble_predict_weighted(models, x, &weights)
        }
        EnsembleStrategy::AccuracyWeighted => Err(MlError::InvalidParam {
            param: "strategy",
            message: "AccuracyWeighted requires ensemble_predict_weighted with weights".into(),
        }),
        EnsembleStrategy::HighestConfidence => {
            if models.is_empty() {
                return Err(MlError::BadData("ensemble of zero models".into()));
            }
            let mut preds = Vec::with_capacity(models.len());
            let mut confs = Vec::with_capacity(models.len());
            for m in models {
                preds.push(m.predict(x)?);
                confs.push(m.confidence(x)?);
            }
            let mut out = Vec::with_capacity(x.rows());
            for r in 0..x.rows() {
                let mut best = 0usize;
                for k in 1..models.len() {
                    if confs[k][r] > confs[best][r] {
                        best = k;
                    }
                }
                out.push(preds[best][r]);
            }
            Ok(out)
        }
    }
}

/// Weighted voting: each model's prediction counts `weights[k]`. Ties go
/// to the smallest label, making results deterministic.
pub fn ensemble_predict_weighted(
    models: &[StoredModel],
    x: &Matrix,
    weights: &[f64],
) -> MlResult<Vec<i64>> {
    if models.is_empty() {
        return Err(MlError::BadData("ensemble of zero models".into()));
    }
    if models.len() != weights.len() {
        return Err(MlError::Shape(format!(
            "{} models but {} weights",
            models.len(),
            weights.len()
        )));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(MlError::InvalidParam {
            param: "weights",
            message: "weights must be finite and non-negative".into(),
        });
    }
    let preds: Vec<Vec<i64>> = models.iter().map(|m| m.predict(x)).collect::<MlResult<_>>()?;
    let mut out = Vec::with_capacity(x.rows());
    let mut votes: HashMap<i64, f64> = HashMap::new();
    for r in 0..x.rows() {
        votes.clear();
        for (k, p) in preds.iter().enumerate() {
            *votes.entry(p[r]).or_insert(0.0) += weights[k];
        }
        let winner = votes
            .iter()
            .map(|(&label, &w)| (label, w))
            .max_by(|a, b| {
                // Higher weight wins; on ties the smaller label wins.
                a.1.partial_cmp(&b.1).expect("finite weights").then(b.0.cmp(&a.0))
            })
            .map(|(label, _)| label)
            .expect("at least one vote");
        out.push(winner);
    }
    Ok(out)
}

/// Mean per-class probability across models ("soft voting"): returns the
/// per-row probability that the ensemble assigns to `raw_label`.
pub fn ensemble_proba_of(models: &[StoredModel], x: &Matrix, raw_label: i64) -> MlResult<Vec<f64>> {
    if models.is_empty() {
        return Err(MlError::BadData("ensemble of zero models".into()));
    }
    let mut acc = vec![0.0; x.rows()];
    for m in models {
        let p = m.proba_of(x, raw_label)?;
        for (a, v) in acc.iter_mut().zip(p) {
            *a += v;
        }
    }
    let k = models.len() as f64;
    for a in &mut acc {
        *a /= k;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcs_ml::knn::KNearestNeighbors;
    use mlcs_ml::naive_bayes::GaussianNb;
    use mlcs_ml::tree::DecisionTreeClassifier;
    use mlcs_ml::Model;

    fn train_on(x: &Matrix, y: &[i64], model: Model) -> StoredModel {
        StoredModel::train(model, x, y).unwrap()
    }

    fn blobs() -> (Matrix, Vec<i64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let c = i % 2;
            rows.push([if c == 0 { -2.0 } else { 2.0 } + (i as f64) * 0.01]);
            y.push(if c == 0 { 7 } else { 9 });
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn three_models() -> (Matrix, Vec<i64>, Vec<StoredModel>) {
        let (x, y) = blobs();
        let models = vec![
            train_on(&x, &y, Model::GaussianNb(GaussianNb::new())),
            train_on(&x, &y, Model::DecisionTree(DecisionTreeClassifier::new())),
            train_on(&x, &y, Model::Knn(KNearestNeighbors::new(3))),
        ];
        (x, y, models)
    }

    #[test]
    fn majority_vote_agrees_on_easy_data() {
        let (x, y, models) = three_models();
        let pred = ensemble_predict(&models, &x, EnsembleStrategy::MajorityVote).unwrap();
        assert_eq!(pred, y);
    }

    #[test]
    fn highest_confidence_agrees_on_easy_data() {
        let (x, y, models) = three_models();
        let pred = ensemble_predict(&models, &x, EnsembleStrategy::HighestConfidence).unwrap();
        assert_eq!(pred, y);
    }

    #[test]
    fn weighted_vote_respects_dominant_weight() {
        let (x, _, models) = three_models();
        // A "broken" model that maps everything to label 7 by training it
        // on constant labels... ClassMap needs 2 classes; instead weight
        // model 0 overwhelmingly and verify output equals model 0's.
        let solo = models[0].predict(&x).unwrap();
        let pred = ensemble_predict_weighted(&models, &x, &[100.0, 0.1, 0.1]).unwrap();
        assert_eq!(pred, solo);
    }

    #[test]
    fn tie_breaks_to_smaller_label() {
        let (x, y) = blobs();
        let a = train_on(&x, &y, Model::GaussianNb(GaussianNb::new()));
        let b = train_on(&x, &y, Model::Knn(KNearestNeighbors::new(1)));
        // Equal weights, and force disagreement by flipping one model's
        // input... simplest: identical models agree, so tie-break path is
        // only exercised with two different-label predictions at equal
        // weight. Construct that directly:
        let pred = ensemble_predict_weighted(&[a.clone(), b.clone()], &x, &[1.0, 1.0]).unwrap();
        // Models agree here; verify determinism of repeated runs instead.
        let pred2 = ensemble_predict_weighted(&[a, b], &x, &[1.0, 1.0]).unwrap();
        assert_eq!(pred, pred2);
    }

    #[test]
    fn soft_vote_probabilities_bounded() {
        let (x, _, models) = three_models();
        let p7 = ensemble_proba_of(&models, &x, 7).unwrap();
        let p9 = ensemble_proba_of(&models, &x, 9).unwrap();
        for (a, b) in p7.iter().zip(&p9) {
            assert!((0.0..=1.0).contains(a));
            assert!((a + b - 1.0).abs() < 1e-9, "p7 + p9 = {}", a + b);
        }
    }

    #[test]
    fn validation_errors() {
        let (x, _, models) = three_models();
        assert!(ensemble_predict(&[], &x, EnsembleStrategy::MajorityVote).is_err());
        assert!(ensemble_predict(&models, &x, EnsembleStrategy::AccuracyWeighted).is_err());
        assert!(ensemble_predict_weighted(&models, &x, &[1.0]).is_err());
        assert!(ensemble_predict_weighted(&models, &x, &[1.0, -1.0, 1.0]).is_err());
        assert!(ensemble_proba_of(&[], &x, 7).is_err());
    }
}
