//! The model store: trained models and their metadata in a regular table.
//!
//! Paper §3.1 ("Model Storage") and §3.3: models are pickled to BLOBs and
//! kept in the database next to their hyperparameters and quality metrics,
//! so ordinary SQL can select, compare, and combine them.

use crate::stored::StoredModel;
use mlcs_columnar::{Database, DbError, DbResult, Value};

/// The DDL of the backing table (created on first use).
pub const MODELS_TABLE_DDL: &str = "CREATE TABLE IF NOT EXISTS models (
    id BIGINT NOT NULL,
    name VARCHAR NOT NULL,
    algorithm VARCHAR NOT NULL,
    parameters VARCHAR,
    classifier BLOB NOT NULL,
    accuracy DOUBLE,
    macro_f1 DOUBLE,
    train_rows BIGINT,
    test_rows BIGINT,
    n_features INTEGER
)";

/// Metadata stored alongside a model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelMeta {
    /// Human-readable model name (unique within the store).
    pub name: String,
    /// Hyperparameter description, e.g. `n_estimators=16`.
    pub parameters: String,
    /// Test-set accuracy, if evaluated.
    pub accuracy: Option<f64>,
    /// Test-set macro F1, if evaluated.
    pub macro_f1: Option<f64>,
    /// Training-set size.
    pub train_rows: Option<i64>,
    /// Test-set size.
    pub test_rows: Option<i64>,
}

/// A handle over the `models` table of a database.
#[derive(Clone)]
pub struct ModelStore {
    db: Database,
}

impl ModelStore {
    /// Opens (creating if needed) the model store of `db`.
    pub fn open(db: &Database) -> DbResult<ModelStore> {
        db.execute(MODELS_TABLE_DDL)?;
        Ok(ModelStore { db: db.clone() })
    }

    /// Stores a model with its metadata. The name must be unused.
    pub fn save(&self, model: &StoredModel, meta: &ModelMeta) -> DbResult<i64> {
        if self.lookup_id(&meta.name)?.is_some() {
            return Err(DbError::AlreadyExists { kind: "model", name: meta.name.clone() });
        }
        let id = self.next_id()?;
        use mlcs_ml::Classifier;
        let row = vec![
            Value::Int64(id),
            Value::Varchar(meta.name.clone()),
            Value::Varchar(model.algorithm().to_owned()),
            Value::Varchar(meta.parameters.clone()),
            Value::Blob(model.to_blob()),
            meta.accuracy.map(Value::Float64).unwrap_or(Value::Null),
            meta.macro_f1.map(Value::Float64).unwrap_or(Value::Null),
            meta.train_rows.map(Value::Int64).unwrap_or(Value::Null),
            meta.test_rows.map(Value::Int64).unwrap_or(Value::Null),
            Value::Int32(model.model.n_features() as i32),
        ];
        let handle = self.db.catalog().table("models")?;
        handle.write().append_rows(&[row])?;
        Ok(id)
    }

    /// Loads a model by name.
    pub fn load(&self, name: &str) -> DbResult<StoredModel> {
        let batch = self
            .db
            .query(&format!("SELECT classifier FROM models WHERE name = '{}'", escape(name)))?;
        if batch.rows() == 0 {
            return Err(DbError::NotFound { kind: "model", name: name.to_owned() });
        }
        let blob = batch.column(0).value(0);
        let blob =
            blob.as_blob().ok_or_else(|| DbError::Corrupt("classifier is not a BLOB".into()))?;
        StoredModel::from_blob(blob).map_err(|e| DbError::Corrupt(format!("model '{name}': {e}")))
    }

    /// Loads the model with the highest recorded accuracy — the paper's
    /// "choose a model to classify new data based on this metadata".
    pub fn load_best_by_accuracy(&self) -> DbResult<(String, StoredModel)> {
        let batch = self.db.query(
            "SELECT name, classifier FROM models
             WHERE accuracy IS NOT NULL
             ORDER BY accuracy DESC LIMIT 1",
        )?;
        if batch.rows() == 0 {
            return Err(DbError::NotFound { kind: "model", name: "<best by accuracy>".into() });
        }
        let name = batch.column(0).value(0).as_str().unwrap_or_default().to_owned();
        let blob_v = batch.column(1).value(0);
        let blob =
            blob_v.as_blob().ok_or_else(|| DbError::Corrupt("classifier is not a BLOB".into()))?;
        let sm = StoredModel::from_blob(blob)
            .map_err(|e| DbError::Corrupt(format!("model '{name}': {e}")))?;
        Ok((name, sm))
    }

    /// Loads every stored model as `(name, model)` pairs, in id order.
    pub fn load_all(&self) -> DbResult<Vec<(String, StoredModel)>> {
        let batch = self.db.query("SELECT name, classifier FROM models ORDER BY id")?;
        (0..batch.rows())
            .map(|r| {
                let name = batch.column(0).value(r).as_str().unwrap_or_default().to_owned();
                let blob_v = batch.column(1).value(r);
                let blob = blob_v
                    .as_blob()
                    .ok_or_else(|| DbError::Corrupt("classifier is not a BLOB".into()))?;
                let sm = StoredModel::from_blob(blob)
                    .map_err(|e| DbError::Corrupt(format!("model '{name}': {e}")))?;
                Ok((name, sm))
            })
            .collect()
    }

    /// Lists model metadata (no BLOBs) as a batch for display.
    pub fn list(&self) -> DbResult<mlcs_columnar::Batch> {
        self.db.query(
            "SELECT id, name, algorithm, parameters, accuracy, macro_f1,
                    train_rows, test_rows, n_features,
                    OCTET_LENGTH(classifier) AS blob_bytes
             FROM models ORDER BY id",
        )
    }

    /// Deletes a model by name.
    pub fn delete(&self, name: &str) -> DbResult<()> {
        let affected = self
            .db
            .execute(&format!("DELETE FROM models WHERE name = '{}'", escape(name)))?
            .rows_affected();
        if affected == 0 {
            return Err(DbError::NotFound { kind: "model", name: name.to_owned() });
        }
        Ok(())
    }

    /// Number of stored models.
    pub fn count(&self) -> DbResult<usize> {
        let v = self.db.query_value("SELECT COUNT(*) FROM models")?;
        Ok(v.as_i64().unwrap_or(0) as usize)
    }

    fn lookup_id(&self, name: &str) -> DbResult<Option<i64>> {
        let batch =
            self.db.query(&format!("SELECT id FROM models WHERE name = '{}'", escape(name)))?;
        Ok(if batch.rows() == 0 { None } else { batch.column(0).value(0).as_i64() })
    }

    fn next_id(&self) -> DbResult<i64> {
        let v = self.db.query_value("SELECT COALESCE(MAX(id), 0) + 1 FROM models")?;
        v.as_i64().ok_or_else(|| DbError::internal("MAX(id) returned a non-integer"))
    }
}

/// Escapes a string for inclusion in a single-quoted SQL literal.
fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stored::StoredModel;
    use mlcs_ml::naive_bayes::GaussianNb;
    use mlcs_ml::{Matrix, Model};

    fn trained() -> StoredModel {
        let x = Matrix::from_rows(&[[0.0], [1.0], [10.0], [11.0]]).unwrap();
        StoredModel::train(Model::GaussianNb(GaussianNb::new()), &x, &[1, 1, 2, 2]).unwrap()
    }

    fn meta(name: &str, acc: f64) -> ModelMeta {
        ModelMeta {
            name: name.into(),
            parameters: "test".into(),
            accuracy: Some(acc),
            macro_f1: Some(acc - 0.01),
            train_rows: Some(4),
            test_rows: Some(2),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        let sm = trained();
        let id = store.save(&sm, &meta("nb1", 0.9)).unwrap();
        assert_eq!(id, 1);
        let back = store.load("nb1").unwrap();
        assert_eq!(back, sm);
        assert_eq!(store.count().unwrap(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("m", 0.5)).unwrap();
        assert!(matches!(
            store.save(&trained(), &meta("m", 0.6)),
            Err(DbError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn best_by_accuracy() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("weak", 0.6)).unwrap();
        store.save(&trained(), &meta("strong", 0.95)).unwrap();
        store.save(&trained(), &meta("mid", 0.8)).unwrap();
        let (name, _) = store.load_best_by_accuracy().unwrap();
        assert_eq!(name, "strong");
    }

    #[test]
    fn metadata_queryable_via_plain_sql() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("a", 0.7)).unwrap();
        store.save(&trained(), &meta("b", 0.9)).unwrap();
        // The paper's meta-analysis: ordinary SQL over model metadata.
        let v = db.query_value("SELECT name FROM models WHERE accuracy > 0.8").unwrap();
        assert_eq!(v, Value::Varchar("b".into()));
        let list = store.list().unwrap();
        assert_eq!(list.rows(), 2);
        assert!(list.column_by_name("blob_bytes").unwrap().i64_at(0).unwrap() > 0);
    }

    #[test]
    fn delete_and_missing() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("gone", 0.7)).unwrap();
        store.delete("gone").unwrap();
        assert!(matches!(store.load("gone"), Err(DbError::NotFound { .. })));
        assert!(matches!(store.delete("gone"), Err(DbError::NotFound { .. })));
        assert!(store.load_best_by_accuracy().is_err());
    }

    #[test]
    fn names_with_quotes_are_safe() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("it's", 0.7)).unwrap();
        assert!(store.load("it's").is_ok());
    }

    #[test]
    fn load_all_in_id_order() {
        let db = Database::new();
        let store = ModelStore::open(&db).unwrap();
        store.save(&trained(), &meta("first", 0.5)).unwrap();
        store.save(&trained(), &meta("second", 0.6)).unwrap();
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "first");
        assert_eq!(all[1].0, "second");
    }
}
