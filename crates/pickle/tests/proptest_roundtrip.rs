//! Property-based tests: every value that can be pickled unpickles to an
//! equal value, and no mutation of the blob is silently accepted.

use mlcs_pickle::{pickle, unpickle, Pickle, PickleError, Reader, Writer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_varint_round_trip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        prop_assert_eq!(Reader::new(&bytes).get_varint().unwrap(), v);
    }

    #[test]
    fn i64_zigzag_round_trip(v in any::<i64>()) {
        let mut w = Writer::new();
        w.put_varint_signed(v);
        let bytes = w.into_bytes();
        prop_assert_eq!(Reader::new(&bytes).get_varint_signed().unwrap(), v);
    }

    #[test]
    fn f64_vec_round_trip(v in proptest::collection::vec(any::<f64>(), 0..200)) {
        let blob = pickle(&v);
        let back: Vec<f64> = unpickle(&blob).unwrap();
        prop_assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(&v) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn string_round_trip(s in ".{0,120}") {
        let blob = pickle(&s.to_string());
        let back: String = unpickle(&blob).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn nested_round_trip(v in proptest::collection::vec(
        proptest::collection::vec(any::<i64>(), 0..20), 0..20)) {
        let blob = pickle(&v);
        let back: Vec<Vec<i64>> = unpickle(&blob).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Flipping any single byte of the blob must be detected — either as a
    /// checksum mismatch or as a structural error — never accepted as a
    /// different valid value of the same class with intact envelope.
    #[test]
    fn single_byte_corruption_never_silently_accepted(
        v in proptest::collection::vec(any::<i64>(), 1..50),
        idx_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let blob = pickle(&v);
        let idx = idx_seed % blob.len();
        let mut bad = blob.clone();
        bad[idx] ^= flip;
        match unpickle::<Vec<i64>>(&bad) {
            Err(_) => {} // detected: good
            Ok(back) => {
                // Only acceptable silent case: corruption in the *checksum
                // field itself* cannot produce Ok, and header corruption is
                // caught, so payload corruption producing Ok would require a
                // crc32 collision — treat as failure.
                prop_assert_eq!(back, v, "corruption produced a different value");
                // If it round-trips to the same value the flipped byte must
                // have been... impossible, since every byte is significant.
                prop_assert!(false, "corrupted blob decoded successfully");
            }
        }
    }

    /// Truncation at any point must fail.
    #[test]
    fn truncation_always_detected(
        v in proptest::collection::vec(any::<f64>(), 0..30),
        cut_seed in any::<usize>(),
    ) {
        let blob = pickle(&v);
        let cut = cut_seed % blob.len();
        prop_assert!(unpickle::<Vec<f64>>(&blob[..cut]).is_err());
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Meta {
    name: String,
    accuracy: f64,
    trees: u32,
    tags: Vec<String>,
}

impl Pickle for Meta {
    const CLASS_NAME: &'static str = "Meta";
    fn pickle_body(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_f64(self.accuracy);
        w.put_u32(self.trees);
        self.tags.pickle_body(w);
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        Ok(Meta {
            name: r.get_str()?.to_owned(),
            accuracy: r.get_f64()?,
            trees: r.get_u32()?,
            tags: Vec::<String>::unpickle_body(r)?,
        })
    }
}

proptest! {
    #[test]
    fn struct_round_trip(
        name in ".{0,40}",
        accuracy in 0.0f64..1.0,
        trees in 0u32..1000,
        tags in proptest::collection::vec(".{0,10}", 0..8),
    ) {
        let m = Meta { name: name.to_string(), accuracy, trees, tags };
        let blob = pickle(&m);
        prop_assert_eq!(unpickle::<Meta>(&blob).unwrap(), m);
    }
}
