//! The pickle envelope: magic, version, class name, payload, checksum.
//!
//! Layout of an enveloped pickle (all integers little-endian):
//!
//! ```text
//! +------+---------+------------------+-----------------+----------+--------+
//! | MAGIC| version | class name       | payload length  | payload  | crc32  |
//! | 4 B  | u16     | varint len + str | varint          | N bytes  | u32    |
//! +------+---------+------------------+-----------------+----------+--------+
//! ```
//!
//! The checksum covers only the payload, so the (cheap) header can be read
//! to identify a BLOB's class without validating megabytes of model weights;
//! see [`unpickle_class_name`].

use crate::crc::crc32;
use crate::error::PickleError;
use crate::reader::Reader;
use crate::traits::Pickle;
use crate::writer::Writer;

/// Magic bytes identifying an mlcs pickle blob: `MLPK`.
pub const MAGIC: [u8; 4] = *b"MLPK";

/// Current envelope format version. Readers accept this version and older.
pub const FORMAT_VERSION: u16 = 1;

/// Serializes `value` into an enveloped, checksummed byte string suitable
/// for storage in a database BLOB column.
pub fn pickle<T: Pickle>(value: &T) -> Vec<u8> {
    let mut body = Writer::with_capacity(value.size_hint());
    value.pickle_body(&mut body);
    let payload = body.into_bytes();

    let mut w = Writer::with_capacity(payload.len() + T::CLASS_NAME.len() + 24);
    w.put_raw(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_str(T::CLASS_NAME);
    w.put_bytes(&payload);
    w.put_u32(crc32(&payload));
    w.into_bytes()
}

/// Reads and validates the envelope header, returning the payload slice.
fn open_envelope<'a>(
    blob: &'a [u8],
    expected_class: Option<&'static str>,
) -> Result<(&'a str, &'a [u8]), PickleError> {
    let mut r = Reader::new(blob);
    let magic = r.get_raw(4)?;
    if magic != MAGIC {
        return Err(PickleError::BadMagic { found: magic.try_into().unwrap() });
    }
    let version = r.get_u16()?;
    if version > FORMAT_VERSION {
        return Err(PickleError::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }
    let class = r.get_str()?;
    if let Some(expected) = expected_class {
        if class != expected {
            return Err(PickleError::ClassMismatch { found: class.to_owned(), expected });
        }
    }
    let payload = r.get_bytes()?;
    let stored = r.get_u32()?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(PickleError::ChecksumMismatch { stored, computed });
    }
    r.expect_exhausted()?;
    Ok((class, payload))
}

/// Deserializes an enveloped pickle produced by [`pickle`], validating the
/// magic number, version, class name, and checksum.
pub fn unpickle<T: Pickle>(blob: &[u8]) -> Result<T, PickleError> {
    let (_, payload) = open_envelope(blob, Some(T::CLASS_NAME))?;
    let mut r = Reader::new(payload);
    let value = T::unpickle_body(&mut r)?;
    r.expect_exhausted()?;
    Ok(value)
}

/// Reads only the class name from an enveloped pickle, without decoding the
/// payload. Useful for dispatching on heterogeneous model BLOBs: the model
/// store looks at the class name to decide which concrete model type to
/// unpickle. The payload checksum **is** still verified.
pub fn unpickle_class_name(blob: &[u8]) -> Result<String, PickleError> {
    let (class, _) = open_envelope(blob, None)?;
    Ok(class.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trip() {
        let blob = pickle(&vec![1.0f64, 2.0, 3.0]);
        let v: Vec<f64> = unpickle(&blob).unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn class_name_readable_without_decoding() {
        let blob = pickle(&String::from("hi"));
        assert_eq!(unpickle_class_name(&blob).unwrap(), "String");
    }

    #[test]
    fn wrong_class_rejected() {
        let blob = pickle(&42i32);
        let err = unpickle::<String>(&blob).unwrap_err();
        assert!(matches!(err, PickleError::ClassMismatch { .. }));
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut blob = pickle(&vec![5i64; 100]);
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        let err = unpickle::<Vec<i64>>(&blob).unwrap_err();
        assert!(
            matches!(err, PickleError::ChecksumMismatch { .. })
                || matches!(err, PickleError::ImplausibleLength { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut blob = pickle(&1u8);
        blob[0] = b'X';
        assert!(matches!(unpickle::<u8>(&blob).unwrap_err(), PickleError::BadMagic { .. }));
    }

    #[test]
    fn future_version_rejected() {
        let mut blob = pickle(&1u8);
        blob[4] = 0xFF;
        blob[5] = 0xFF;
        assert!(matches!(
            unpickle::<u8>(&blob).unwrap_err(),
            PickleError::UnsupportedVersion { found: 0xFFFF, .. }
        ));
    }

    #[test]
    fn truncated_blob_rejected() {
        let blob = pickle(&vec![1i64, 2, 3]);
        for cut in 0..blob.len() {
            let err = unpickle::<Vec<i64>>(&blob[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut blob = pickle(&7u32);
        blob.push(0);
        assert!(unpickle::<u32>(&blob).is_err());
    }

    #[test]
    fn empty_blob_rejected() {
        assert!(unpickle::<u8>(&[]).is_err());
    }
}
