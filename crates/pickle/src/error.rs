//! Error type for pickling and unpickling.

use std::fmt;

/// Everything that can go wrong while unpickling a byte string.
///
/// Pickling itself is infallible (it only appends to a growable buffer);
/// all variants here describe malformed, truncated, corrupted, or
/// wrongly-typed input encountered during *unpickling*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickleError {
    /// The buffer ended before the value being decoded was complete.
    UnexpectedEof {
        /// Bytes needed to finish decoding the current value.
        needed: usize,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// The leading magic number was not [`crate::MAGIC`].
    BadMagic {
        /// The four bytes actually found at the start of the buffer.
        found: [u8; 4],
    },
    /// The format version is newer than this library understands.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u16,
        /// Highest version this build can read.
        supported: u16,
    },
    /// The envelope's class name does not match the requested type.
    ClassMismatch {
        /// Class name recorded in the envelope.
        found: String,
        /// Class name of the type being unpickled into.
        expected: &'static str,
    },
    /// The CRC-32 of the payload does not match the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A varint ran past its maximum encoded width (corrupt data).
    VarintOverflow,
    /// A string field held bytes that are not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the bytes actually available, or an
    /// implausible size that would require allocating more memory than the
    /// buffer itself could justify.
    ImplausibleLength {
        /// The decoded length.
        length: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// An enum discriminant or type tag had no defined meaning.
    InvalidTag {
        /// The offending tag byte.
        tag: u8,
        /// Human-readable description of what was being decoded.
        context: &'static str,
    },
    /// The payload decoded successfully but left trailing bytes behind,
    /// indicating a format mismatch between writer and reader.
    TrailingBytes {
        /// Number of undecoded bytes left over.
        count: usize,
    },
    /// Domain-specific validation failed after structural decoding
    /// (e.g. a decision-tree node index pointing past the node array).
    Invalid(String),
}

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PickleError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of pickle data: needed {needed} more bytes, {remaining} remaining"
            ),
            PickleError::BadMagic { found } => {
                write!(f, "bad magic number {found:02x?}; not a pickle blob")
            }
            PickleError::UnsupportedVersion { found, supported } => write!(
                f,
                "pickle format version {found} is newer than supported version {supported}"
            ),
            PickleError::ClassMismatch { found, expected } => {
                write!(f, "pickle holds a '{found}' object but a '{expected}' was requested")
            }
            PickleError::ChecksumMismatch { stored, computed } => write!(
                f,
                "pickle payload corrupted: stored crc32 {stored:#010x} != computed {computed:#010x}"
            ),
            PickleError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            PickleError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            PickleError::ImplausibleLength { length, remaining } => {
                write!(f, "length prefix {length} exceeds the {remaining} bytes remaining")
            }
            PickleError::InvalidTag { tag, context } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {context}")
            }
            PickleError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after payload; format mismatch")
            }
            PickleError::Invalid(msg) => write!(f, "invalid pickled object: {msg}"),
        }
    }
}

impl std::error::Error for PickleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = PickleError::UnexpectedEof { needed: 8, remaining: 3 };
        assert!(e.to_string().contains("needed 8"));
        let e = PickleError::BadMagic { found: [0, 1, 2, 3] };
        assert!(e.to_string().contains("magic"));
        let e = PickleError::ClassMismatch { found: "A".into(), expected: "B" };
        assert!(e.to_string().contains('A') && e.to_string().contains('B'));
        let e = PickleError::ChecksumMismatch { stored: 1, computed: 2 };
        assert!(e.to_string().contains("corrupted"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PickleError::VarintOverflow);
    }
}
