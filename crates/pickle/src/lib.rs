//! # mlcs-pickle — binary object serialization
//!
//! A small, self-contained binary serialization library playing the role that
//! Python's `pickle` module plays in the paper: trained machine-learning
//! models are *pickled* into a byte string, stored in a `BLOB` column inside
//! the database, and *unpickled* back into an in-memory object before use.
//!
//! The format is deliberately simple and fully specified:
//!
//! * Every pickled object is wrapped in an [`envelope`] carrying a magic
//!   number, a format version, the class name of the serialized object, the
//!   payload length, and a CRC-32 checksum of the payload. Deserialization
//!   validates all of these, so a corrupted or mislabeled BLOB is rejected
//!   with a descriptive [`PickleError`] instead of producing garbage.
//! * Scalars are fixed-width little-endian; lengths and collection sizes are
//!   LEB128 varints; strings are UTF-8 with a varint length prefix.
//! * Types opt in by implementing the [`Pickle`] trait. Implementations for
//!   all primitive types, `String`, `Option<T>`, `Vec<T>` and small tuples
//!   are provided.
//!
//! ## Example
//!
//! ```
//! use mlcs_pickle::{pickle, unpickle, Pickle, Reader, Writer, PickleError};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point { x: f64, y: f64 }
//!
//! impl Pickle for Point {
//!     const CLASS_NAME: &'static str = "Point";
//!     fn pickle_body(&self, w: &mut Writer) {
//!         w.put_f64(self.x);
//!         w.put_f64(self.y);
//!     }
//!     fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
//!         Ok(Point { x: r.get_f64()?, y: r.get_f64()? })
//!     }
//! }
//!
//! let p = Point { x: 1.5, y: -2.0 };
//! let blob = pickle(&p);
//! let q: Point = unpickle(&blob).unwrap();
//! assert_eq!(p, q);
//! ```

pub mod crc;
pub mod envelope;
pub mod error;
pub mod reader;
pub mod traits;
pub mod writer;

pub use envelope::{pickle, unpickle, unpickle_class_name, FORMAT_VERSION, MAGIC};
pub use error::PickleError;
pub use reader::Reader;
pub use traits::Pickle;
pub use writer::Writer;
