//! CRC-32 (IEEE 802.3 polynomial) used to checksum pickle payloads.
//!
//! Implemented with a lazily-built 256-entry lookup table; this is the same
//! polynomial (`0xEDB88320` reflected) used by zlib, PNG and Ethernet, so
//! the values are easy to cross-check against other tools.

/// The reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Builds the byte-indexed CRC table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 checksum of `data`.
///
/// ```
/// // Well-known test vector: crc32(b"123456789") == 0xCBF43926.
/// assert_eq!(mlcs_pickle::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks through `update`, starting from
/// `0xFFFF_FFFF`, and XOR the final state with `0xFFFF_FFFF`.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello pickle world, this is a streaming test";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            st = update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"some payload bytes".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }
}
