//! Bounds-checked binary reader, the mirror image of [`crate::Writer`].

use crate::error::PickleError;

/// Cursor over a byte slice with checked decoding primitives.
///
/// Every accessor verifies that enough bytes remain and returns
/// [`PickleError::UnexpectedEof`] otherwise, so a truncated BLOB can never
/// cause a panic or an out-of-bounds read.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Current byte offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PickleError> {
        if self.remaining() < n {
            return Err(PickleError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PickleError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any nonzero byte is `true`.
    pub fn get_bool(&mut self) -> Result<bool, PickleError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, PickleError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PickleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PickleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i8`.
    pub fn get_i8(&mut self) -> Result<i8, PickleError> {
        Ok(self.get_u8()? as i8)
    }

    /// Reads a little-endian `i16`.
    pub fn get_i16(&mut self) -> Result<i16, PickleError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, PickleError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, PickleError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian IEEE-754 `f32`.
    pub fn get_f32(&mut self) -> Result<f32, PickleError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, PickleError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, PickleError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(PickleError::VarintOverflow);
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(PickleError::VarintOverflow);
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn get_varint_signed(&mut self) -> Result<i64, PickleError> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Decodes a varint length prefix, rejecting lengths that exceed the
    /// bytes remaining (protection against allocation bombs).
    pub fn get_len(&mut self) -> Result<usize, PickleError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(PickleError::ImplausibleLength {
                length: len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Decodes a varint element count where each element needs at least
    /// `min_elem_bytes` bytes, rejecting counts the buffer cannot hold.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, PickleError> {
        let n = self.get_varint()?;
        let need = n.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(PickleError::ImplausibleLength { length: n, remaining: self.remaining() });
        }
        Ok(n as usize)
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], PickleError> {
        self.take(n)
    }

    /// Reads a varint-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], PickleError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, PickleError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| PickleError::InvalidUtf8)
    }

    /// Reads a `f64` slice written by [`crate::Writer::put_f64_slice`].
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, PickleError> {
        let n = self.get_count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads an `i64` slice written by [`crate::Writer::put_i64_slice`].
    pub fn get_i64_vec(&mut self) -> Result<Vec<i64>, PickleError> {
        let n = self.get_count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_varint_signed()?);
        }
        Ok(out)
    }

    /// Reads a `u32` slice written by [`crate::Writer::put_u32_slice`].
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, PickleError> {
        let n = self.get_count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = self.get_varint()?;
            if v > u32::MAX as u64 {
                return Err(PickleError::Invalid(format!("u32 slice element {v} out of range")));
            }
            out.push(v as u32);
        }
        Ok(out)
    }

    /// Errors with [`PickleError::TrailingBytes`] unless the buffer is fully
    /// consumed. Call at the end of `unpickle_body` for strict decoding.
    pub fn expect_exhausted(&self) -> Result<(), PickleError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(PickleError::TrailingBytes { count: self.remaining() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::Writer;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_i32(-12345);
        w.put_f64(2.5);
        w.put_bool(true);
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_i32().unwrap(), -12345);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert!(r.is_exhausted());
    }

    #[test]
    fn eof_is_reported_not_panicked() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(err, PickleError::UnexpectedEof { needed: 4, remaining: 2 });
    }

    #[test]
    fn varint_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_varint().unwrap(), v);
        }
    }

    #[test]
    fn signed_varint_round_trip_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1_000_000] {
            let mut w = Writer::new();
            w.put_varint_signed(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_varint_signed().unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0xFFu8; 11];
        assert_eq!(Reader::new(&bytes).get_varint().unwrap_err(), PickleError::VarintOverflow);
    }

    #[test]
    fn length_bomb_rejected() {
        // Claims a 2^40-byte string in a 3-byte buffer.
        let mut w = Writer::new();
        w.put_varint(1 << 40);
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_len().unwrap_err();
        assert!(matches!(err, PickleError::ImplausibleLength { .. }));
    }

    #[test]
    fn count_bomb_rejected() {
        let mut w = Writer::new();
        w.put_varint(1 << 40); // claims 2^40 f64s
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_f64_vec().unwrap_err();
        assert!(matches!(err, PickleError::ImplausibleLength { .. }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).get_str().unwrap_err(), PickleError::InvalidUtf8);
    }

    #[test]
    fn slices_round_trip() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, -2.5, f64::INFINITY]);
        w.put_i64_slice(&[i64::MIN, 0, i64::MAX]);
        w.put_u32_slice(&[0, 42, u32::MAX]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, -2.5, f64::INFINITY]);
        assert_eq!(r.get_i64_vec().unwrap(), vec![i64::MIN, 0, i64::MAX]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![0, 42, u32::MAX]);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.expect_exhausted().unwrap_err(), PickleError::TrailingBytes { count: 3 });
    }
}
