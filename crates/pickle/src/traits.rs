//! The [`Pickle`] trait and blanket implementations for common types.

use crate::error::PickleError;
use crate::reader::Reader;
use crate::writer::Writer;

/// Types that can be serialized into a pickle payload.
///
/// Implementors provide a stable `CLASS_NAME` (recorded in the envelope and
/// checked at unpickle time) plus symmetric body encode/decode functions.
/// Use [`crate::pickle`] / [`crate::unpickle`] for the enveloped form that
/// is stored in database BLOBs; `pickle_body` / `unpickle_body` are the raw
/// building blocks used for nested fields.
pub trait Pickle: Sized {
    /// Stable identifier recorded in the envelope; mismatches are rejected.
    const CLASS_NAME: &'static str;

    /// Serializes `self` into the writer. Infallible.
    fn pickle_body(&self, w: &mut Writer);

    /// Decodes an instance from the reader, validating as it goes.
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError>;

    /// Hint for preallocating the output buffer. Implementations with a
    /// cheaply computable encoded size should override this; the default of
    /// 64 bytes is fine for small metadata objects.
    fn size_hint(&self) -> usize {
        64
    }
}

macro_rules! impl_pickle_scalar {
    ($ty:ty, $name:literal, $put:ident, $get:ident) => {
        impl Pickle for $ty {
            const CLASS_NAME: &'static str = $name;
            fn pickle_body(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
                r.$get()
            }
            fn size_hint(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
    };
}

impl_pickle_scalar!(u8, "u8", put_u8, get_u8);
impl_pickle_scalar!(u16, "u16", put_u16, get_u16);
impl_pickle_scalar!(u32, "u32", put_u32, get_u32);
impl_pickle_scalar!(u64, "u64", put_u64, get_u64);
impl_pickle_scalar!(i8, "i8", put_i8, get_i8);
impl_pickle_scalar!(i16, "i16", put_i16, get_i16);
impl_pickle_scalar!(i32, "i32", put_i32, get_i32);
impl_pickle_scalar!(i64, "i64", put_i64, get_i64);
impl_pickle_scalar!(f32, "f32", put_f32, get_f32);
impl_pickle_scalar!(f64, "f64", put_f64, get_f64);
impl_pickle_scalar!(bool, "bool", put_bool, get_bool);

impl Pickle for String {
    const CLASS_NAME: &'static str = "String";
    fn pickle_body(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        Ok(r.get_str()?.to_owned())
    }
    fn size_hint(&self) -> usize {
        self.len() + 5
    }
}

impl<T: Pickle> Pickle for Option<T> {
    const CLASS_NAME: &'static str = "Option";
    fn pickle_body(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.pickle_body(w);
            }
        }
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpickle_body(r)?)),
            tag => Err(PickleError::InvalidTag { tag, context: "Option discriminant" }),
        }
    }
}

impl<T: Pickle> Pickle for Vec<T> {
    const CLASS_NAME: &'static str = "Vec";
    fn pickle_body(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.pickle_body(w);
        }
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        let n = r.get_count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unpickle_body(r)?);
        }
        Ok(out)
    }
    fn size_hint(&self) -> usize {
        5 + self.iter().map(Pickle::size_hint).sum::<usize>()
    }
}

impl<A: Pickle, B: Pickle> Pickle for (A, B) {
    const CLASS_NAME: &'static str = "Tuple2";
    fn pickle_body(&self, w: &mut Writer) {
        self.0.pickle_body(w);
        self.1.pickle_body(w);
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        Ok((A::unpickle_body(r)?, B::unpickle_body(r)?))
    }
}

impl<A: Pickle, B: Pickle, C: Pickle> Pickle for (A, B, C) {
    const CLASS_NAME: &'static str = "Tuple3";
    fn pickle_body(&self, w: &mut Writer) {
        self.0.pickle_body(w);
        self.1.pickle_body(w);
        self.2.pickle_body(w);
    }
    fn unpickle_body(r: &mut Reader) -> Result<Self, PickleError> {
        Ok((A::unpickle_body(r)?, B::unpickle_body(r)?, C::unpickle_body(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pickle + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.pickle_body(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::unpickle_body(&mut r).unwrap();
        assert_eq!(back, v);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(42u8);
        round_trip(-3i64);
        round_trip(6.25f64);
        round_trip(true);
        round_trip(f32::NEG_INFINITY);
    }

    #[test]
    fn nan_survives_round_trip_bitwise() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Writer::new();
        v.pickle_body(&mut w);
        let bytes = w.into_bytes();
        let back = f64::unpickle_body(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(String::from("hello world"));
        round_trip(String::new());
        round_trip(Option::<i32>::None);
        round_trip(Some(99i32));
        round_trip(vec![1i64, -2, 3]);
        round_trip(Vec::<f64>::new());
        round_trip(vec![Some("a".to_string()), None]);
        round_trip((1u32, -5i64));
        round_trip((true, 2.5f64, String::from("z")));
    }

    #[test]
    fn nested_vectors_round_trip() {
        round_trip(vec![vec![1u32, 2], vec![], vec![3]]);
    }

    #[test]
    fn option_bad_tag_rejected() {
        let bytes = [7u8];
        let err = Option::<u8>::unpickle_body(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, PickleError::InvalidTag { tag: 7, .. }));
    }
}
