//! Append-only binary writer.
//!
//! All multi-byte scalars are little-endian. Collection sizes and string
//! lengths use unsigned LEB128 varints so that small collections — the common
//! case in model metadata — cost one byte instead of eight.

/// Growable binary output buffer.
///
/// Writing is infallible; the buffer grows as needed. Call
/// [`Writer::into_bytes`] to take ownership of the encoded bytes.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated. Use when the encoded
    /// size is roughly known (e.g. pickling a forest of known node count)
    /// to avoid reallocation in the hot path.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i8`.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Writes a little-endian `i16`.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed varint using zigzag encoding.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes raw bytes with **no** length prefix. The reader must know the
    /// exact length from elsewhere.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a varint length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a UTF-8 string with a varint length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes a slice of `f64` as a varint count followed by the raw
    /// little-endian values. This is the bulk path used for model weights.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_varint(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a slice of `i64` as a varint count followed by zigzag varints.
    pub fn put_i64_slice(&mut self, values: &[i64]) {
        self.put_varint(values.len() as u64);
        for &v in values {
            self.put_varint_signed(v);
        }
    }

    /// Writes a slice of `u32` as a varint count followed by varints.
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_varint(values.len() as u64);
        for &v in values {
            self.put_varint(v as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_to_expected_bytes() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0x0102);
        w.put_u32(0xDEAD_BEEF);
        assert_eq!(w.as_bytes(), &[0xAB, 0x02, 0x01, 0xEF, 0xBE, 0xAD, 0xDE]);
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut w = Writer::new();
            w.put_varint(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut w = Writer::new();
        w.put_varint(127);
        assert_eq!(w.len(), 1);
        let mut w = Writer::new();
        w.put_varint(128);
        assert_eq!(w.as_bytes(), &[0x80, 0x01]);
        let mut w = Writer::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn zigzag_keeps_small_negatives_small() {
        let mut w = Writer::new();
        w.put_varint_signed(-1);
        assert_eq!(w.len(), 1);
        let mut w = Writer::new();
        w.put_varint_signed(-64);
        assert_eq!(w.len(), 1);
        let mut w = Writer::new();
        w.put_varint_signed(-65);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut w = Writer::new();
        w.put_str("abc");
        assert_eq!(w.as_bytes(), &[3, b'a', b'b', b'c']);
    }

    #[test]
    fn with_capacity_does_not_change_contents() {
        let mut a = Writer::new();
        let mut b = Writer::with_capacity(1024);
        for w in [&mut a, &mut b] {
            w.put_f64(3.25);
            w.put_str("x");
        }
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
