//! Fuzz-style property tests: the wire decoders must reject arbitrary
//! garbage with errors, never panic or over-allocate.

use mlcs_columnar::{ColumnBuilder, DataType};
use mlcs_netproto::framing::{
    decode_query, decode_schema, encode_query, encode_schema, read_frame, write_frame, Encoding,
    FrameKind,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// read_frame on random bytes: returns Ok or Err, never panics, and
    /// never allocates beyond the frame cap.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// decode_schema on random bytes never panics.
    #[test]
    fn decode_schema_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_schema(&bytes);
    }

    /// decode_query on random bytes never panics.
    #[test]
    fn decode_query_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_query(&bytes);
    }

    /// Frame round trip is exact for arbitrary payloads.
    #[test]
    fn frame_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::RowsBinary, &payload).unwrap();
        let (kind, back) = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(kind, FrameKind::RowsBinary);
        prop_assert_eq!(back, payload);
    }

    /// Query round trip is exact for arbitrary SQL text.
    #[test]
    fn query_round_trip(sql in ".{0,200}") {
        for enc in [Encoding::Text, Encoding::Binary] {
            let payload = encode_query(enc, &sql);
            let (e, s) = decode_query(&payload).unwrap();
            prop_assert_eq!(e, enc);
            prop_assert_eq!(&s, &sql);
        }
    }

    /// Schema round trip for arbitrary names and types.
    #[test]
    fn schema_round_trip(
        names in proptest::collection::vec("[a-z_][a-z0-9_]{0,20}", 0..12),
        tags in proptest::collection::vec(0u8..9, 0..12),
    ) {
        let fields: Vec<(String, DataType)> = names
            .iter()
            .zip(&tags)
            .map(|(n, t)| (n.clone(), DataType::from_tag(*t).unwrap()))
            .collect();
        let enc = encode_schema(&fields);
        prop_assert_eq!(decode_schema(&enc).unwrap(), fields);
    }
}

/// A valid frame truncated at **every** byte offset must yield a typed
/// error following the documented taxonomy — clean EOF at byte 0 is "the
/// peer hung up", a partial header or payload is corruption — and never a
/// panic or a bogus `Ok`.
#[test]
fn truncation_at_every_offset_yields_typed_errors() {
    for payload_len in [0usize, 1, 18, 300] {
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::RowsBinary, &payload).unwrap();
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            let msg = err.to_string();
            if cut == 0 {
                assert!(msg.contains("connection closed"), "len {payload_len} cut 0: {msg}");
            } else if cut < 5 {
                assert!(
                    msg.contains("truncated frame header"),
                    "len {payload_len} cut {cut}: {msg}"
                );
            } else {
                assert!(
                    msg.contains("truncated frame payload"),
                    "len {payload_len} cut {cut}: {msg}"
                );
            }
        }
        // The untruncated frame still reads back exactly.
        let (kind, back) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(kind, FrameKind::RowsBinary);
        assert_eq!(back, payload);
    }
}

proptest! {
    /// The truncation taxonomy holds for arbitrary payloads and cut
    /// points, not just the hand-picked sizes above.
    #[test]
    fn truncated_random_frames_error_and_never_panic(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::RowsText, &payload).unwrap();
        let cut = (cut_seed as usize) % wire.len();
        prop_assert!(read_frame(&mut &wire[..cut]).is_err());
    }
}

// The binary row decoder is not public, but the TextClient/BinaryClient
// paths over a real socket are covered elsewhere. Validate here that the
// builder the clients drive handles arbitrary push sequences.
proptest! {
    #[test]
    fn column_builder_accepts_any_push_order(
        ops in proptest::collection::vec(proptest::option::of(any::<i64>()), 0..100)
    ) {
        let mut b = ColumnBuilder::new(DataType::Int64);
        for op in &ops {
            match op {
                None => b.push_null(),
                Some(v) => b.push_value(&mlcs_columnar::Value::Int64(*v)).unwrap(),
            }
        }
        let col = b.finish();
        prop_assert_eq!(col.len(), ops.len());
        for (i, op) in ops.iter().enumerate() {
            prop_assert_eq!(col.i64_at(i), *op);
        }
    }
}
