//! The database server: accepts TCP connections, runs queries, streams
//! result rows in the requested encoding.
//!
//! This is the "separate database server, connected through a socket"
//! setup whose end-to-end cost Figure 1 measures: results are serialized
//! row by row, shipped through the kernel, and re-parsed on the client —
//! work the in-database UDFs never do.
//!
//! Two serving modes share this module's framing and row encoding (see
//! [`crate::config::ServeMode`]): the default multiplexed reactor in the
//! private `reactor` module, and the original thread-per-connection
//! baseline implemented here.
//!
//! Durability rides the same statement path: serve a database opened
//! with `Database::open_durable` and every mutation a client commits is
//! write-ahead-logged before it is acknowledged; clients can issue
//! `CHECKPOINT` (fold the log into the page base) over the wire like any
//! other statement. `SAVE '<dir>'` (consistent snapshot to an arbitrary
//! server-side path) is refused unless the operator opted in via
//! [`NetConfig::allow_remote_save`] — a client naming the filesystem
//! path the server writes to is an injection primitive, not a query.

use crate::config::{NetConfig, ServeMode};
use crate::framing::{decode_query, encode_schema, write_frame, Encoding, FrameKind};
use mlcs_columnar::faults::FaultyStream;
use mlcs_columnar::{Batch, Database, DbError, DbResult, Value};
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Rows per `Rows*` frame.
pub const ROWS_PER_FRAME: usize = 1024;

/// A running server. Dropping the handle stops serving.
pub struct Server {
    addr: std::net::SocketAddr,
    inner: ServerInner,
}

/// The mode-specific machinery behind a [`Server`] handle.
enum ServerInner {
    /// Thread-per-connection: the accept loop plus its stop flag.
    Threaded { stop: Arc<AtomicBool>, accept_thread: Option<std::thread::JoinHandle<()>> },
    /// Reactor event loops (taken on shutdown).
    Reactor(Option<crate::reactor::Reactor>),
}

/// Decrements the active-connection count when a worker exits, however it
/// exits (including by panic — the guard drops during unwind).
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Server {
    /// Starts serving `db` on a fresh localhost port with default
    /// [`NetConfig`].
    pub fn start(db: Database) -> DbResult<Server> {
        Server::start_with(db, NetConfig::default())
    }

    /// Starts serving `db` on a fresh localhost port with explicit
    /// timeouts, per-query deadline, connection cap, and serving mode.
    pub fn start_with(db: Database, config: NetConfig) -> DbResult<Server> {
        match config.mode {
            ServeMode::Reactor => {
                let reactor = crate::reactor::Reactor::start(db, config)?;
                Ok(Server { addr: reactor.addr(), inner: ServerInner::Reactor(Some(reactor)) })
            }
            ServeMode::ThreadPerConn => Server::start_threaded(db, config),
        }
    }

    /// The thread-per-connection baseline: one detached OS thread per
    /// accepted socket.
    fn start_threaded(db: Database, config: NetConfig) -> DbResult<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true)?;
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = std::thread::Builder::new()
            .name("mlcs-server-accept".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if active.load(Ordering::Relaxed) >= config.max_connections.max(1) {
                                reject_stream(stream, &config);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let guard = ConnGuard(active.clone());
                            let db = db.clone();
                            let stop = stop2.clone();
                            // Workers are detached: joining them here would
                            // deadlock shutdown whenever a client keeps its
                            // connection open. A worker exits as soon as its
                            // client disconnects, and the socket read
                            // timeout set in `handle_connection` bounds how
                            // long an idle connection can outlive the
                            // server.
                            std::thread::spawn(move || {
                                let _guard = guard;
                                let _ = handle_connection(stream, db, config, stop);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| DbError::Io(format!("spawn accept thread: {e}")))?;
        Ok(Server {
            addr,
            inner: ServerInner::Threaded { stop, accept_thread: Some(accept_thread) },
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops serving: joins the accept thread (threaded mode) or every
    /// event loop (reactor mode).
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        match &mut self.inner {
            ServerInner::Threaded { stop, accept_thread } => {
                stop.store(true, Ordering::Relaxed);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
            }
            ServerInner::Reactor(reactor) => {
                if let Some(mut reactor) = reactor.take() {
                    reactor.shutdown();
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Tells a client the server is at capacity with a typed
/// [`DbError::Rejected`] error frame (so clients can tell shed load from
/// a torn connection), then drops the socket. Shared by both serving
/// modes. Never blocks the accept path for long — a short write timeout
/// guards the frame.
pub(crate) fn reject_stream(stream: TcpStream, config: &NetConfig) {
    mlcs_columnar::metrics::counter("netproto.conn_rejected").incr();
    // Reactor listeners are nonblocking; the rejection frame is written
    // synchronously under a deadline instead.
    let _ = stream.set_nonblocking(false);
    let _ = stream
        .set_write_timeout(Some(config.write_timeout.unwrap_or(std::time::Duration::from_secs(1))));
    let mut w = stream;
    let e =
        DbError::Rejected(format!("server at capacity ({} connections)", config.max_connections));
    let _ = write_frame(&mut w, FrameKind::Error, e.to_string().as_bytes());
    let _ = w.flush();
}

/// Returns the rejection for a wire query containing `SAVE` when the
/// server has not opted in ([`NetConfig::allow_remote_save`]), `None`
/// when the query may proceed. Decided on the parsed statement list, not
/// a substring match, so `SELECT 'save'` passes and a `SAVE` hidden in a
/// multi-statement batch does not. Unparseable input proceeds: execution
/// reports the real syntax error, and nothing unparseable can reach the
/// `SAVE` path. Shared by both serving modes so the policy cannot drift.
pub(crate) fn remote_save_rejection(sql: &str, config: &NetConfig) -> Option<DbError> {
    if config.allow_remote_save {
        return None;
    }
    use mlcs_columnar::sql::{ast::Statement, parser::parse_many};
    let has_save = parse_many(sql)
        .map(|stmts| stmts.iter().any(|s| matches!(s, Statement::Save { .. })))
        .unwrap_or(false);
    if has_save {
        mlcs_columnar::metrics::counter("netproto.save_refused").incr();
        Some(DbError::Rejected(
            "SAVE is disabled over the network (it writes a snapshot to a \
             server-side path of the client's choosing); enable \
             NetConfig::allow_remote_save to permit it"
                .into(),
        ))
    } else {
        None
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn handle_connection(
    stream: TcpStream,
    db: Database,
    config: NetConfig,
    stop: Arc<AtomicBool>,
) -> DbResult<()> {
    stream.set_nodelay(true)?;
    // The idle-connection bound: a worker blocked on the next query frame
    // gives up once the read deadline passes instead of outliving the
    // server indefinitely.
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let mut reader = FaultyStream::new(stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 16, FaultyStream::new(stream));
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let (kind, payload) = match crate::framing::read_frame(&mut reader) {
            Ok(f) => f,
            Err(DbError::Timeout { .. }) => {
                // Idle past the read deadline: close the connection.
                mlcs_columnar::metrics::counter("netproto.timeouts").incr();
                return Ok(());
            }
            Err(e @ DbError::Corrupt(_)) => {
                // A torn or garbled frame: tell the client (best-effort)
                // and close — framing sync is lost.
                let _ = write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
            Err(_) => return Ok(()), // client hung up
        };
        if kind != FrameKind::Query {
            write_frame(&mut writer, FrameKind::Error, b"expected a query frame")?;
            writer.flush()?;
            continue;
        }
        let (encoding, sql) = match decode_query(&payload) {
            Ok(q) => q,
            Err(e) => {
                write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes())?;
                writer.flush()?;
                continue;
            }
        };
        if let Some(e) = remote_save_rejection(&sql, &config) {
            write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes())?;
            writer.flush()?;
            continue;
        }
        // Panic isolation: a panicking UDF (or engine bug) must cost the
        // client one Error frame, not the whole connection — and must never
        // take down the worker silently.
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match config.query_deadline {
                Some(d) => db.execute_with_timeout(&sql, d),
                None => db.execute(&sql),
            }
        }));
        match executed {
            Err(panic) => {
                mlcs_columnar::metrics::counter("netproto.panics_caught").incr();
                let msg = format!("query panicked: {}", panic_message(panic.as_ref()));
                write_frame(&mut writer, FrameKind::Error, msg.as_bytes())?;
            }
            Ok(Err(e)) => {
                if matches!(e, DbError::Timeout { .. }) {
                    mlcs_columnar::metrics::counter("netproto.timeouts").incr();
                }
                write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes())?;
            }
            Ok(Ok(result)) => {
                let batch = result.batch();
                stream_result(&mut writer, batch, encoding)?;
            }
        }
        writer.flush()?;
    }
}

/// Streams one result set: schema frame, row frames, done frame.
fn stream_result(w: &mut impl Write, batch: &Batch, encoding: Encoding) -> DbResult<()> {
    let fields: Vec<(String, mlcs_columnar::DataType)> =
        batch.schema().fields().iter().map(|f| (f.name.clone(), f.dtype)).collect();
    write_frame(w, FrameKind::Schema, &encode_schema(&fields))?;
    let mut start = 0;
    while start < batch.rows() {
        let end = (start + ROWS_PER_FRAME).min(batch.rows());
        let (kind, payload) = encode_rows_chunk(batch, start, end, encoding);
        write_frame(w, kind, &payload)?;
        start = end;
    }
    mlcs_columnar::metrics::counter("netproto.server.queries").incr();
    write_frame(w, FrameKind::Done, &(batch.rows() as u64).to_le_bytes())?;
    Ok(())
}

/// Encodes rows `[start, end)` as one `Rows*` frame payload in the
/// requested encoding, ticking the per-encoding byte counters. Shared by
/// [`stream_result`] and the reactor's streaming path so both serving
/// modes produce byte-identical frames.
pub(crate) fn encode_rows_chunk(
    batch: &Batch,
    start: usize,
    end: usize,
    encoding: Encoding,
) -> (FrameKind, Vec<u8>) {
    let mut payload = Vec::with_capacity(64 * (end - start));
    match encoding {
        Encoding::Text => {
            encode_rows_text(batch, start, end, &mut payload);
            mlcs_columnar::metrics::counter("netproto.text.bytes_sent").add(payload.len() as u64);
            (FrameKind::RowsText, payload)
        }
        Encoding::Binary => {
            encode_rows_binary(batch, start, end, &mut payload);
            mlcs_columnar::metrics::counter("netproto.binary.bytes_sent").add(payload.len() as u64);
            (FrameKind::RowsBinary, payload)
        }
    }
}

/// Text encoding: rows separated by `\n`, fields by `\t`, NULL as `\N`,
/// with `\` `\t` `\n` escaped — the PostgreSQL COPY-ish format.
fn encode_rows_text(batch: &Batch, start: usize, end: usize, out: &mut Vec<u8>) {
    for r in start..end {
        for (c, col) in batch.columns().iter().enumerate() {
            if c > 0 {
                out.push(b'\t');
            }
            let v = col.value(r);
            if v.is_null() {
                out.extend_from_slice(b"\\N");
            } else {
                let text = v.render();
                for b in text.bytes() {
                    match b {
                        b'\\' => out.extend_from_slice(b"\\\\"),
                        b'\t' => out.extend_from_slice(b"\\t"),
                        b'\n' => out.extend_from_slice(b"\\n"),
                        other => out.push(other),
                    }
                }
            }
        }
        out.push(b'\n');
    }
}

/// Binary encoding: per value a null marker byte, then for non-NULLs the
/// fixed-width little-endian value or a u32-length-prefixed byte string.
fn encode_rows_binary(batch: &Batch, start: usize, end: usize, out: &mut Vec<u8>) {
    for r in start..end {
        for col in batch.columns() {
            let v = col.value(r);
            match v {
                Value::Null => out.push(0),
                other => {
                    out.push(1);
                    match other {
                        Value::Boolean(b) => out.push(b as u8),
                        Value::Int8(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int16(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int32(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int64(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Float32(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Float64(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Varchar(s) => {
                            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            out.extend_from_slice(s.as_bytes());
                        }
                        Value::Blob(b) => {
                            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                            out.extend_from_slice(&b);
                        }
                        Value::Null => unreachable!(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_starts_and_stops() {
        let db = Database::new();
        let server = Server::start(db).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        // Connect/disconnect without sending anything.
        let stream = TcpStream::connect(addr).unwrap();
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn shutdown_does_not_hang_with_open_connections() {
        let db = Database::new();
        let config = NetConfig {
            read_timeout: Some(std::time::Duration::from_millis(200)),
            ..NetConfig::default()
        };
        let server = Server::start_with(db, config).unwrap();
        // A client that connects and then goes idle, holding its end open.
        // Workers are detached and bounded by the read deadline, so
        // shutdown must return promptly regardless.
        let idle = TcpStream::connect(server.addr()).unwrap();
        let begin = std::time::Instant::now();
        server.shutdown();
        assert!(
            begin.elapsed() < std::time::Duration::from_secs(2),
            "shutdown blocked on an idle connection"
        );
        drop(idle);
    }

    #[test]
    fn malformed_first_frame_gets_error() {
        let db = Database::new();
        let server = Server::start(db).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A Schema frame is not a valid request.
        write_frame(&mut stream, FrameKind::Schema, b"").unwrap();
        let (kind, payload) = crate::framing::read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Error);
        assert!(!payload.is_empty());
        server.shutdown();
    }
}
