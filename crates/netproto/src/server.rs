//! The database server: accepts TCP connections, runs queries, streams
//! result rows in the requested encoding.
//!
//! This is the "separate database server, connected through a socket"
//! setup whose end-to-end cost Figure 1 measures: results are serialized
//! row by row, shipped through the kernel, and re-parsed on the client —
//! work the in-database UDFs never do.

use crate::framing::{decode_query, encode_schema, write_frame, Encoding, FrameKind};
use mlcs_columnar::{Batch, Database, DbResult, Value};
use std::io::{BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Rows per `Rows*` frame.
pub const ROWS_PER_FRAME: usize = 1024;

/// A running server. Dropping the handle stops accepting new connections.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts serving `db` on a fresh localhost port.
    pub fn start(db: Database) -> DbResult<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::Builder::new()
            .name("mlcs-server-accept".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let db = db.clone();
                            // Workers are detached: joining them here would
                            // deadlock shutdown whenever a client keeps its
                            // connection open. A worker exits as soon as its
                            // client disconnects; a read timeout bounds how
                            // long an idle connection can outlive the server.
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, db);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(Server { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, db: Database) -> DbResult<()> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::with_capacity(1 << 16, stream);
    loop {
        let (kind, payload) = match crate::framing::read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return Ok(()), // client hung up
        };
        if kind != FrameKind::Query {
            write_frame(&mut writer, FrameKind::Error, b"expected a query frame")?;
            writer.flush()?;
            continue;
        }
        let (encoding, sql) = match decode_query(&payload) {
            Ok(q) => q,
            Err(e) => {
                write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes())?;
                writer.flush()?;
                continue;
            }
        };
        match db.execute(&sql) {
            Err(e) => {
                write_frame(&mut writer, FrameKind::Error, e.to_string().as_bytes())?;
            }
            Ok(result) => {
                let batch = result.batch();
                stream_result(&mut writer, batch, encoding)?;
            }
        }
        writer.flush()?;
    }
}

/// Streams one result set: schema frame, row frames, done frame.
fn stream_result(w: &mut impl Write, batch: &Batch, encoding: Encoding) -> DbResult<()> {
    let fields: Vec<(String, mlcs_columnar::DataType)> =
        batch.schema().fields().iter().map(|f| (f.name.clone(), f.dtype)).collect();
    write_frame(w, FrameKind::Schema, &encode_schema(&fields))?;
    let mut payload = Vec::with_capacity(64 * ROWS_PER_FRAME);
    let mut start = 0;
    while start < batch.rows() {
        let end = (start + ROWS_PER_FRAME).min(batch.rows());
        payload.clear();
        match encoding {
            Encoding::Text => encode_rows_text(batch, start, end, &mut payload),
            Encoding::Binary => encode_rows_binary(batch, start, end, &mut payload),
        }
        let kind = match encoding {
            Encoding::Text => FrameKind::RowsText,
            Encoding::Binary => FrameKind::RowsBinary,
        };
        let sent = match encoding {
            Encoding::Text => "netproto.text.bytes_sent",
            Encoding::Binary => "netproto.binary.bytes_sent",
        };
        mlcs_columnar::metrics::counter(sent).add(payload.len() as u64);
        write_frame(w, kind, &payload)?;
        start = end;
    }
    mlcs_columnar::metrics::counter("netproto.server.queries").incr();
    write_frame(w, FrameKind::Done, &(batch.rows() as u64).to_le_bytes())?;
    Ok(())
}

/// Text encoding: rows separated by `\n`, fields by `\t`, NULL as `\N`,
/// with `\` `\t` `\n` escaped — the PostgreSQL COPY-ish format.
fn encode_rows_text(batch: &Batch, start: usize, end: usize, out: &mut Vec<u8>) {
    for r in start..end {
        for (c, col) in batch.columns().iter().enumerate() {
            if c > 0 {
                out.push(b'\t');
            }
            let v = col.value(r);
            if v.is_null() {
                out.extend_from_slice(b"\\N");
            } else {
                let text = v.render();
                for b in text.bytes() {
                    match b {
                        b'\\' => out.extend_from_slice(b"\\\\"),
                        b'\t' => out.extend_from_slice(b"\\t"),
                        b'\n' => out.extend_from_slice(b"\\n"),
                        other => out.push(other),
                    }
                }
            }
        }
        out.push(b'\n');
    }
}

/// Binary encoding: per value a null marker byte, then for non-NULLs the
/// fixed-width little-endian value or a u32-length-prefixed byte string.
fn encode_rows_binary(batch: &Batch, start: usize, end: usize, out: &mut Vec<u8>) {
    for r in start..end {
        for col in batch.columns() {
            let v = col.value(r);
            match v {
                Value::Null => out.push(0),
                other => {
                    out.push(1);
                    match other {
                        Value::Boolean(b) => out.push(b as u8),
                        Value::Int8(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int16(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int32(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Int64(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Float32(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Float64(x) => out.extend_from_slice(&x.to_le_bytes()),
                        Value::Varchar(s) => {
                            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            out.extend_from_slice(s.as_bytes());
                        }
                        Value::Blob(b) => {
                            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                            out.extend_from_slice(&b);
                        }
                        Value::Null => unreachable!(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_starts_and_stops() {
        let db = Database::new();
        let server = Server::start(db).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        // Connect/disconnect without sending anything.
        let stream = TcpStream::connect(addr).unwrap();
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn malformed_first_frame_gets_error() {
        let db = Database::new();
        let server = Server::start(db).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A Schema frame is not a valid request.
        write_frame(&mut stream, FrameKind::Schema, b"").unwrap();
        let (kind, payload) = crate::framing::read_frame(&mut stream).unwrap();
        assert_eq!(kind, FrameKind::Error);
        assert!(!payload.is_empty());
        server.shutdown();
    }
}
