//! Shared client plumbing: connect with timeouts, and run queries with a
//! bounded retry loop.
//!
//! Both socket clients ([`crate::TextClient`], [`crate::BinaryClient`])
//! differ only in how they decode row frames; everything transport-related
//! — dialing with a connect timeout, socket read/write deadlines, fault
//! wrapping, and the retry policy — lives here.
//!
//! # Retry semantics
//!
//! A query attempt is retryable **only until the first `Schema` frame
//! arrives**: before that point the client has consumed no result bytes,
//! so reconnecting and resending the query cannot silently replay a
//! half-consumed result. Once the schema has been read, any failure is
//! final. A server `Error` frame is always final — the server made a
//! statement about the query; retrying would not change it. Retrying does
//! re-execute the statement server-side, so the usual idempotence caveat
//! applies: safe for reads, caller's responsibility for DML.

use crate::config::NetConfig;
use crate::framing::{
    decode_schema, encode_query, io_to_db, read_frame, write_frame, Encoding, FrameKind,
};
use mlcs_columnar::faults::FaultyStream;
use mlcs_columnar::{DataType, DbError, DbResult};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

/// One live connection: buffered reader plus writer over the fault-wrapped
/// socket.
struct Conn {
    reader: BufReader<FaultyStream<TcpStream>>,
    writer: FaultyStream<TcpStream>,
}

/// A query result before protocol-specific row decoding: the schema and
/// the raw payload of every row frame, in arrival order.
pub(crate) struct RawResult {
    /// Column names and types from the `Schema` frame.
    pub fields: Vec<(String, DataType)>,
    /// Payloads of the `RowsText` / `RowsBinary` frames.
    pub row_frames: Vec<Vec<u8>>,
}

/// Transport core shared by both socket clients.
pub(crate) struct ClientCore {
    addr: SocketAddr,
    config: NetConfig,
    /// Jitter stream state for backoff delays (seeded for replay).
    jitter: u64,
    conn: Option<Conn>,
}

impl ClientCore {
    /// Connects eagerly (retrying within the budget) so a dead server is
    /// reported at construction, like the pre-retry clients did.
    pub fn connect(addr: SocketAddr, config: NetConfig) -> DbResult<ClientCore> {
        let mut core = ClientCore { addr, config, jitter: config.retry_seed, conn: None };
        let mut last = None;
        for attempt in 0..=config.retries {
            if attempt > 0 {
                core.sleep_backoff(attempt - 1);
            }
            match core.dial() {
                Ok(conn) => {
                    core.conn = Some(conn);
                    return Ok(core);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| DbError::Io("connect failed".into())))
    }

    fn dial(&self) -> DbResult<Conn> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| io_to_db("net.connect", e))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        let reader = BufReader::with_capacity(1 << 16, FaultyStream::new(stream.try_clone()?));
        Ok(Conn { reader, writer: FaultyStream::new(stream) })
    }

    fn sleep_backoff(&mut self, attempt: u32) {
        let delay = self.config.backoff_delay(attempt, &mut self.jitter);
        std::thread::sleep(delay);
    }

    /// Sends `sql` and collects the schema and raw row frames, retrying
    /// failed attempts within the budget (see the module docs for when an
    /// attempt is retryable).
    pub fn query_raw(
        &mut self,
        encoding: Encoding,
        rows_kind: FrameKind,
        sql: &str,
    ) -> DbResult<RawResult> {
        let payload = encode_query(encoding, sql);
        let mut last;
        let mut attempt = 0;
        loop {
            match self.attempt(&payload, rows_kind) {
                Ok(raw) => return Ok(raw),
                Err(Attempt::Fatal(e)) => return Err(e),
                Err(Attempt::Retryable(e)) => {
                    // The connection is in an unknown state: drop it and
                    // dial fresh on the next attempt.
                    self.conn = None;
                    last = e;
                }
            }
            if attempt >= self.config.retries {
                return Err(last);
            }
            mlcs_columnar::metrics::counter("netproto.retries").incr();
            self.sleep_backoff(attempt);
            attempt += 1;
        }
    }

    /// One query attempt over the current (or a fresh) connection.
    fn attempt(&mut self, payload: &[u8], rows_kind: FrameKind) -> Result<RawResult, Attempt> {
        if self.conn.is_none() {
            self.conn = Some(self.dial().map_err(Attempt::Retryable)?);
        }
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => return Err(Attempt::Fatal(DbError::internal("no connection after dial"))),
        };
        write_frame(&mut conn.writer, FrameKind::Query, payload).map_err(Attempt::Retryable)?;
        // Everything up to a valid Schema frame is retryable: no result
        // bytes have been consumed yet.
        let (kind, head) = read_frame(&mut conn.reader).map_err(Attempt::Retryable)?;
        match kind {
            FrameKind::Error => return Err(Attempt::Fatal(server_error(&head))),
            FrameKind::Schema => {}
            other => {
                return Err(Attempt::Retryable(DbError::Corrupt(format!(
                    "expected schema frame, got {other:?}"
                ))))
            }
        }
        let fields = decode_schema(&head).map_err(Attempt::Retryable)?;
        // From here on the result is partially consumed: failures are
        // final.
        let mut row_frames = Vec::new();
        loop {
            let (kind, payload) = read_frame(&mut conn.reader).map_err(Attempt::Fatal)?;
            match kind {
                k if k == rows_kind => row_frames.push(payload),
                FrameKind::Done => return Ok(RawResult { fields, row_frames }),
                FrameKind::Error => return Err(Attempt::Fatal(server_error(&payload))),
                other => {
                    return Err(Attempt::Fatal(DbError::Corrupt(format!(
                        "unexpected frame {other:?}"
                    ))))
                }
            }
        }
    }
}

/// How one query attempt failed.
enum Attempt {
    /// Worth reconnecting and retrying (no result bytes consumed).
    Retryable(DbError),
    /// Final: surfaced to the caller as-is.
    Fatal(DbError),
}

/// A server `Error` frame, surfaced as a typed error. Deadline expiries
/// and load-shedding rejections keep their types so callers can match on
/// `DbError::Timeout` / `DbError::Rejected` (shed load is retryable
/// later; a torn connection is not a server statement at all).
fn server_error(payload: &[u8]) -> DbError {
    let msg = String::from_utf8_lossy(payload).into_owned();
    if let Some(path) = msg.strip_prefix("query deadline exceeded at ") {
        return DbError::Timeout { path: path.to_owned() };
    }
    if let Some(reason) = msg.strip_prefix("rejected: ") {
        return DbError::Rejected(reason.to_owned());
    }
    DbError::Io(format!("server error: {msg}"))
}
