//! # mlcs-netproto — database client-protocol baselines
//!
//! The "database socket connection" alternatives of the paper's Figure 1:
//! a TCP server exposing an `mlcs-columnar` database, plus clients that
//! pull query results over the wire in two encodings, and an in-process
//! row-cursor API.
//!
//! * [`textproto::TextClient`] — row-oriented **text** serialization
//!   (every value rendered to text and parsed back), the cost profile of
//!   PostgreSQL's classic protocol.
//! * [`binproto::BinaryClient`] — row-oriented **binary** serialization
//!   (fixed-width little-endian values with null markers), the cost
//!   profile of MySQL's binary protocol.
//! * [`embedded::RowCursor`] — no socket at all, but a row-at-a-time
//!   `step()/get()` API over a materialized result, the cost profile of
//!   using SQLite from a script.
//!
//! All three end by rebuilding *columns* on the client side — exactly the
//! redundant rows→columns round trip the paper's in-database UDFs avoid.
//!
//! The server side has two modes (see [`config::ServeMode`]): the default
//! epoll **reactor** multiplexes thousands of connections onto a few
//! event-loop threads and runs queries on the shared morsel pool, with
//! admission-control load shedding; the **thread-per-connection**
//! baseline is retained for comparison.

#![deny(missing_docs)]

pub mod binproto;
pub(crate) mod client;
pub mod config;
pub mod embedded;
mod epoll;
pub mod framing;
mod reactor;
pub mod server;
pub mod textproto;

pub use binproto::BinaryClient;
pub use config::{NetConfig, ServeMode};
pub use embedded::RowCursor;
pub use server::Server;
pub use textproto::TextClient;
