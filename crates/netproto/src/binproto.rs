//! Binary-protocol client (MySQL-binary cost profile).

use crate::client::ClientCore;
use crate::config::NetConfig;
use crate::framing::{Encoding, FrameKind};
use bytes::Buf;
use mlcs_columnar::{Batch, ColumnBuilder, DataType, DbError, DbResult, Field, Schema, Value};
use std::net::SocketAddr;
use std::sync::Arc;

/// A client that fetches results in the binary row encoding: no text
/// conversion, but still row-at-a-time decoding and a rows→columns
/// transpose on the client.
pub struct BinaryClient {
    core: ClientCore,
}

impl BinaryClient {
    /// Connects to a [`crate::Server`] with default [`NetConfig`].
    pub fn connect(addr: SocketAddr) -> DbResult<BinaryClient> {
        BinaryClient::connect_with(addr, NetConfig::default())
    }

    /// Connects with explicit timeouts and retry budget.
    pub fn connect_with(addr: SocketAddr, config: NetConfig) -> DbResult<BinaryClient> {
        Ok(BinaryClient { core: ClientCore::connect(addr, config)? })
    }

    /// Runs a query and materializes the result as a client-side batch.
    /// Transport failures before the first `Schema` frame are retried per
    /// the configured budget; a server `Error` frame is never retried.
    pub fn query(&mut self, sql: &str) -> DbResult<Batch> {
        let raw = self.core.query_raw(Encoding::Binary, FrameKind::RowsBinary, sql)?;
        let schema = Arc::new(Schema::new_unchecked(
            raw.fields.iter().map(|(n, t)| Field::new(n.clone(), *t)).collect(),
        ));
        let types: Vec<DataType> = raw.fields.iter().map(|(_, t)| *t).collect();
        let mut builders: Vec<ColumnBuilder> =
            types.iter().map(|t| ColumnBuilder::new(*t)).collect();
        for payload in &raw.row_frames {
            mlcs_columnar::metrics::counter("netproto.binary.bytes_received")
                .add(payload.len() as u64);
            parse_binary_rows(payload, &types, &mut builders)?;
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        let batch = Batch::new(schema, columns)?;
        mlcs_columnar::metrics::counter("netproto.binary.queries").incr();
        mlcs_columnar::metrics::counter("netproto.binary.rows").add(batch.rows() as u64);
        Ok(batch)
    }
}

fn parse_binary_rows(
    payload: &[u8],
    types: &[DataType],
    builders: &mut [ColumnBuilder],
) -> DbResult<()> {
    let mut buf = payload;
    let corrupt = || DbError::Corrupt("truncated binary row".into());
    while buf.has_remaining() {
        for (t, b) in types.iter().zip(builders.iter_mut()) {
            if !buf.has_remaining() {
                return Err(corrupt());
            }
            let marker = buf.get_u8();
            if marker == 0 {
                b.push_null();
                continue;
            }
            match t {
                DataType::Boolean => {
                    if buf.remaining() < 1 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Boolean(buf.get_u8() != 0))?;
                }
                DataType::Int8 => {
                    if buf.remaining() < 1 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Int8(buf.get_i8()))?;
                }
                DataType::Int16 => {
                    if buf.remaining() < 2 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Int16(buf.get_i16_le()))?;
                }
                DataType::Int32 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Int32(buf.get_i32_le()))?;
                }
                DataType::Int64 => {
                    if buf.remaining() < 8 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Int64(buf.get_i64_le()))?;
                }
                DataType::Float32 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Float32(buf.get_f32_le()))?;
                }
                DataType::Float64 => {
                    if buf.remaining() < 8 {
                        return Err(corrupt());
                    }
                    b.push_value(&Value::Float64(buf.get_f64_le()))?;
                }
                DataType::Varchar => {
                    if buf.remaining() < 4 {
                        return Err(corrupt());
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len {
                        return Err(corrupt());
                    }
                    let s = std::str::from_utf8(&buf[..len])
                        .map_err(|_| DbError::Corrupt("non-UTF-8 string on wire".into()))?
                        .to_owned();
                    buf.advance(len);
                    b.push_value(&Value::Varchar(s))?;
                }
                DataType::Blob => {
                    if buf.remaining() < 4 {
                        return Err(corrupt());
                    }
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len {
                        return Err(corrupt());
                    }
                    let bytes = buf[..len].to_vec();
                    buf.advance(len);
                    b.push_value(&Value::Blob(bytes))?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use mlcs_columnar::Database;

    fn serve() -> Server {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, s VARCHAR, f DOUBLE, b BLOB)").unwrap();
        db.execute(
            "INSERT INTO t VALUES
               (1, 'x', 0.5, x'0102'),
               (2, NULL, NULL, NULL),
               (-3, 'ünïcode', -2.5, x'')",
        )
        .unwrap();
        Server::start(db).unwrap()
    }

    #[test]
    fn binary_round_trip_preserves_values_exactly() {
        let server = serve();
        let mut client = BinaryClient::connect(server.addr()).unwrap();
        let batch = client.query("SELECT a, s, f, b FROM t ORDER BY a").unwrap();
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.row(0)[0], Value::Int32(-3));
        assert_eq!(batch.row(0)[1], Value::Varchar("ünïcode".into()));
        assert_eq!(batch.row(0)[3], Value::Blob(vec![]));
        assert_eq!(batch.row(1)[0], Value::Int32(1));
        assert_eq!(batch.row(1)[3], Value::Blob(vec![1, 2]));
        assert!(batch.row(2)[1].is_null());
        server.shutdown();
    }

    #[test]
    fn binary_and_text_agree() {
        let server = serve();
        let mut bin = BinaryClient::connect(server.addr()).unwrap();
        let mut txt = crate::textproto::TextClient::connect(server.addr()).unwrap();
        let sql = "SELECT a, s, f FROM t ORDER BY a";
        let b = bin.query(sql).unwrap();
        let t = txt.query(sql).unwrap();
        assert_eq!(b.rows(), t.rows());
        for r in 0..b.rows() {
            assert_eq!(b.row(r), t.row(r), "row {r}");
        }
        server.shutdown();
    }

    #[test]
    fn errors_propagate_and_connection_survives() {
        let server = serve();
        let mut client = BinaryClient::connect(server.addr()).unwrap();
        assert!(client.query("SELECT broken syntax here").is_err());
        assert_eq!(client.query("SELECT COUNT(*) FROM t").unwrap().rows(), 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = serve();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = BinaryClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let b = c.query("SELECT a FROM t").unwrap();
                        assert_eq!(b.rows(), 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
