//! Resilience knobs for the socket server and clients.

use std::time::Duration;

/// How the server multiplexes client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// A few event-loop threads own every socket via an epoll readiness
    /// reactor and hand complete queries to the shared morsel worker
    /// pool. Scales to thousands of concurrent connections; the default.
    Reactor,
    /// One OS thread per connection — the original Figure-1 baseline,
    /// kept for comparison benchmarks and as a fallback.
    ThreadPerConn,
}

/// Timeouts, retry budget, and connection limits shared by the server and
/// both socket clients. The defaults are deliberately generous — they are
/// a safety net against hangs, not a latency target; tests and the chaos
/// harness tighten them.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// How long a client waits for `connect` to succeed.
    pub connect_timeout: Duration,
    /// Socket read deadline (`set_read_timeout`) on both ends. On the
    /// server this doubles as the idle-connection bound: a worker blocked
    /// waiting for the next query frame gives up after this long and
    /// closes the connection, so an idle client cannot keep a worker
    /// thread alive past the deadline.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline (`set_write_timeout`) on both ends.
    pub write_timeout: Option<Duration>,
    /// Server-side wall-clock deadline per query; `None` = unbounded.
    /// Expiry surfaces to the client as an `Error` frame carrying the
    /// rendered `DbError::Timeout`.
    pub query_deadline: Option<Duration>,
    /// Maximum concurrently served connections. Excess clients receive a
    /// typed `Error` frame (`DbError::Rejected`) and are disconnected
    /// instead of waiting in the OS accept backlog.
    pub max_connections: usize,
    /// How the server multiplexes connections (reactor event loops or
    /// one thread per connection).
    pub mode: ServeMode,
    /// Number of reactor event-loop threads ([`ServeMode::Reactor`]
    /// only). Each loop owns a disjoint set of sockets; accepted
    /// connections are distributed round-robin.
    pub event_loops: usize,
    /// Admission-control quota ([`ServeMode::Reactor`] only): when this
    /// many queries are already queued or executing on the worker pool,
    /// further queries are shed with a typed `DbError::Rejected` error
    /// frame instead of growing the queue without bound.
    pub max_inflight_queries: usize,
    /// Whether clients may issue `SAVE '<dir>'` over the wire. `SAVE`
    /// writes a full snapshot to a server-side path named by the client,
    /// so it is an arbitrary-filesystem-write primitive; off by default,
    /// for deployments where every client is trusted (e.g. a local test
    /// harness). `CHECKPOINT` is unaffected — it only ever writes inside
    /// the directory the database was opened on.
    pub allow_remote_save: bool,
    /// Client-side retry budget for connect-and-query; retries apply only
    /// before the first `Schema` frame arrives (a half-consumed result is
    /// never silently replayed).
    pub retries: u32,
    /// Base delay for exponential backoff between retries.
    pub retry_base_delay: Duration,
    /// Seed for the deterministic backoff jitter, so retry schedules
    /// replay exactly in tests.
    pub retry_seed: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            query_deadline: None,
            max_connections: 4096,
            mode: ServeMode::Reactor,
            event_loops: 2,
            max_inflight_queries: 256,
            allow_remote_save: false,
            retries: 3,
            retry_base_delay: Duration::from_millis(20),
            retry_seed: 0,
        }
    }
}

/// Backoff cap: no single retry sleep exceeds this.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

impl NetConfig {
    /// The sleep before retry `attempt` (0-based): exponential backoff
    /// from `retry_base_delay` with deterministic jitter in `[0, 50%)` of
    /// the step, capped at 2s. `state` carries the jitter stream between
    /// calls; seed it with `retry_seed`.
    pub fn backoff_delay(&self, attempt: u32, state: &mut u64) -> Duration {
        let step = self
            .retry_base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(MAX_BACKOFF);
        // SplitMix64 step for the jitter bits.
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let half_step_ns = step.as_nanos() as u64 / 2;
        let jitter = if half_step_ns == 0 { 0 } else { z % half_step_ns };
        (step + Duration::from_nanos(jitter)).min(MAX_BACKOFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NetConfig::default();
        assert!(c.read_timeout.is_some());
        // The reactor must clear the issue's 1000-concurrent-client bar
        // by default (the old thread-per-connection cap was 64).
        assert!(c.max_connections >= 1000);
        assert!(c.retries >= 1);
        assert_eq!(c.mode, ServeMode::Reactor);
        assert!(c.event_loops >= 1);
        assert!(c.max_inflight_queries >= 1);
        // SAVE is an arbitrary-path write on the server; it must be
        // opt-in.
        assert!(!c.allow_remote_save);
    }

    #[test]
    fn backoff_grows_is_capped_and_replays() {
        let c = NetConfig { retry_base_delay: Duration::from_millis(10), ..NetConfig::default() };
        let mut s1 = c.retry_seed;
        let delays: Vec<Duration> = (0..12).map(|a| c.backoff_delay(a, &mut s1)).collect();
        // Exponential floor: each delay at least matches the uncapped step's
        // base, and nothing exceeds the cap.
        assert!(delays[1] >= Duration::from_millis(20));
        assert!(delays.iter().all(|&d| d <= MAX_BACKOFF));
        // Same seed, same schedule.
        let mut s2 = c.retry_seed;
        let replay: Vec<Duration> = (0..12).map(|a| c.backoff_delay(a, &mut s2)).collect();
        assert_eq!(delays, replay);
    }
}
