//! Wire framing shared by the server and both socket clients.
//!
//! Every message is one frame: a 1-byte kind, a 4-byte little-endian
//! payload length, then the payload. Result sets stream as a schema frame,
//! row frames (batched), and a done frame.

use bytes::{Buf, BufMut, BytesMut};
use mlcs_columnar::{DataType, DbError, DbResult};
use std::io::{Read, Write};

/// Frame kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: SQL text; payload starts with the encoding byte.
    Query = 1,
    /// Server → client: result schema.
    Schema = 2,
    /// Server → client: a batch of rows (text encoding).
    RowsText = 3,
    /// Server → client: a batch of rows (binary encoding).
    RowsBinary = 4,
    /// Server → client: end of result; payload = row count (u64).
    Done = 5,
    /// Server → client: error message.
    Error = 6,
}

impl FrameKind {
    pub(crate) fn from_byte(b: u8) -> DbResult<FrameKind> {
        Ok(match b {
            1 => FrameKind::Query,
            2 => FrameKind::Schema,
            3 => FrameKind::RowsText,
            4 => FrameKind::RowsBinary,
            5 => FrameKind::Done,
            6 => FrameKind::Error,
            other => return Err(DbError::Corrupt(format!("unknown frame kind {other:#04x}"))),
        })
    }
}

/// Hard cap on a single frame's payload (64 MiB) so a corrupted length
/// prefix cannot trigger an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> DbResult<()> {
    let mut header = [0u8; 5];
    header[0] = kind as u8;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header).map_err(|e| io_to_db("net.write", e))?;
    w.write_all(payload).map_err(|e| io_to_db("net.write", e))?;
    mlcs_columnar::metrics::counter("netproto.frames_sent").incr();
    mlcs_columnar::metrics::counter("netproto.bytes_sent")
        .add((header.len() + payload.len()) as u64);
    Ok(())
}

/// Maps a transport error observed at `point` (`net.read` / `net.write`)
/// to a typed [`DbError`]: socket deadline expiries become
/// [`DbError::Timeout`], everything else [`DbError::Io`].
pub fn io_to_db(point: &str, e: std::io::Error) -> DbError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            DbError::Timeout { path: point.to_owned() }
        }
        _ => DbError::Io(e.to_string()),
    }
}

/// Reads one frame.
///
/// Error taxonomy: a clean EOF before any header byte is
/// `DbError::Io("connection closed")` (the peer simply hung up between
/// frames); an EOF after at least one byte of the header or payload is
/// `DbError::Corrupt` naming the truncated part; a socket deadline expiry
/// is `DbError::Timeout`.
pub fn read_frame(r: &mut impl Read) -> DbResult<(FrameKind, Vec<u8>)> {
    let mut header = [0u8; 5];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(DbError::Io("connection closed".into())),
            Ok(0) => return Err(DbError::Corrupt("truncated frame header".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_to_db("net.read", e)),
        }
    }
    let kind = FrameKind::from_byte(header[0])?;
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return Err(DbError::Corrupt(format!("frame of {len} bytes exceeds the cap")));
    }
    let mut payload = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => DbError::Corrupt("truncated frame payload".into()),
            _ => io_to_db("net.read", e),
        });
    }
    mlcs_columnar::metrics::counter("netproto.frames_received").incr();
    mlcs_columnar::metrics::counter("netproto.bytes_received").add((header.len() + len) as u64);
    Ok((kind, payload))
}

/// The result-set encoding a client requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Tab-separated text rows.
    Text = 0,
    /// Length/width-prefixed binary rows.
    Binary = 1,
}

/// Encodes a query request payload.
pub fn encode_query(encoding: Encoding, sql: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + sql.len());
    out.push(encoding as u8);
    out.extend_from_slice(sql.as_bytes());
    out
}

/// Decodes a query request payload into `(encoding, sql)`.
pub fn decode_query(payload: &[u8]) -> DbResult<(Encoding, String)> {
    if payload.is_empty() {
        return Err(DbError::Corrupt("empty query frame".into()));
    }
    let encoding = match payload[0] {
        0 => Encoding::Text,
        1 => Encoding::Binary,
        other => return Err(DbError::Corrupt(format!("unknown encoding byte {other}"))),
    };
    let sql = std::str::from_utf8(&payload[1..])
        .map_err(|_| DbError::Corrupt("query is not valid UTF-8".into()))?
        .to_owned();
    Ok((encoding, sql))
}

/// Encodes a result schema: column count, then per column a name and a
/// type tag.
pub fn encode_schema(fields: &[(String, DataType)]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u16_le(fields.len() as u16);
    for (name, dtype) in fields {
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        buf.put_u8(dtype.tag());
    }
    buf.to_vec()
}

/// Decodes a schema frame.
pub fn decode_schema(payload: &[u8]) -> DbResult<Vec<(String, DataType)>> {
    let mut buf = payload;
    let corrupt = || DbError::Corrupt("truncated schema frame".into());
    if buf.remaining() < 2 {
        return Err(corrupt());
    }
    let n = buf.get_u16_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 2 {
            return Err(corrupt());
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len + 1 {
            return Err(corrupt());
        }
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| DbError::Corrupt("schema name is not UTF-8".into()))?
            .to_owned();
        buf.advance(name_len);
        let dtype = DataType::from_tag(buf.get_u8())
            .ok_or_else(|| DbError::Corrupt("unknown type tag in schema".into()))?;
        out.push((name, dtype));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Done, &42u64.to_le_bytes()).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(kind, FrameKind::Done);
        assert_eq!(payload, 42u64.to_le_bytes());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.push(FrameKind::Query as u8);
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let buf = [99u8, 0, 0, 0, 0];
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn query_round_trip() {
        let payload = encode_query(Encoding::Binary, "SELECT 1");
        let (enc, sql) = decode_query(&payload).unwrap();
        assert_eq!(enc, Encoding::Binary);
        assert_eq!(sql, "SELECT 1");
        assert!(decode_query(&[]).is_err());
        assert!(decode_query(&[9, b'x']).is_err());
    }

    #[test]
    fn schema_round_trip() {
        let fields =
            vec![("id".to_owned(), DataType::Int32), ("name".to_owned(), DataType::Varchar)];
        let enc = encode_schema(&fields);
        assert_eq!(decode_schema(&enc).unwrap(), fields);
        assert!(decode_schema(&enc[..3]).is_err());
    }
}
