//! Minimal Linux `epoll` + `pipe2` shim over raw glibc symbols.
//!
//! Std-only, in the same spirit as the vendored crate shims under
//! `shims/`: just enough surface for the serving reactor — create an
//! epoll instance, register/modify/remove interest, wait for readiness,
//! and build a nonblocking self-wake pipe. No `libc` crate dependency;
//! the handful of constants and the `epoll_event` layout are fixed parts
//! of the Linux ABI.

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, RawFd};

/// Readable (or a peer hang-up pending read of the EOF).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd; always reported, never requested.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hang-up on the fd; always reported, never requested.
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// One readiness notification: an event mask plus the caller's token.
///
/// On x86-64 the kernel ABI packs this struct (12 bytes, no padding
/// before `data`); other architectures use natural alignment. Fields are
/// therefore only exposed through by-value accessors — taking a reference
/// into a packed struct is undefined behavior territory.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty slot for the `epoll_wait` output buffer.
    pub(crate) fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness mask (`EPOLLIN | …`).
    pub(crate) fn events(&self) -> u32 {
        self.events
    }

    /// The token supplied at registration time.
    pub(crate) fn data(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// An epoll instance (level-triggered). Closed on drop.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a fresh epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces `fd`'s interest mask (write-interest toggling).
    pub(crate) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Unregisters `fd`.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` for readiness, filling `events` from the
    /// front; returns how many slots were filled. A signal interruption
    /// reports zero events rather than an error.
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let rc =
            unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

/// Builds a nonblocking pipe `(read_end, write_end)` used to wake an
/// event loop from other threads: the read end lives in the loop's epoll
/// set, any thread holding the write end pokes a byte into it.
pub(crate) fn wake_pipe() -> io::Result<(File, File)> {
    let mut fds = [0i32; 2];
    let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((unsafe { File::from_raw_fd(fds[0]) }, unsafe { File::from_raw_fd(fds[1]) }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pipe_round_trip_through_epoll() {
        let (mut rx, mut tx) = wake_pipe().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(rx.as_raw_fd(), EPOLLIN, 7).unwrap();
        // Nothing written yet: a zero-timeout wait sees nothing.
        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        tx.write_all(&[1]).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 7);
        assert_ne!(events[0].events() & EPOLLIN, 0);
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 1);
        // Drained: level-triggered readiness clears.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // Nonblocking read end: empty pipe reports WouldBlock.
        let err = rx.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        epoll.delete(rx.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest() {
        let (rx, mut tx) = wake_pipe().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(rx.as_raw_fd(), EPOLLIN, 1).unwrap();
        tx.write_all(&[1]).unwrap();
        let mut events = vec![EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        // Drop read interest: the pending byte no longer wakes the loop.
        epoll.modify(rx.as_raw_fd(), 0, 1).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(rx.as_raw_fd(), EPOLLIN, 1).unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
    }
}
