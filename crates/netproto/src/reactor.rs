//! The multiplexed serving path: a readiness reactor over [`crate::epoll`].
//!
//! A small, fixed number of event-loop threads own every client socket.
//! Each loop runs `epoll_wait` → dispatch: readable sockets are drained
//! into per-connection read buffers and complete `Query` frames are
//! handed to the shared `mlcs_columnar::parallel` morsel pool as
//! fire-and-forget jobs; completed results come back through a mailbox +
//! wake-pipe and are streamed out through per-connection write buffers.
//! Event loops therefore never block on query execution, and query
//! workers never touch sockets.
//!
//! **Backpressure**: result batches are encoded into the connection's
//! output buffer at most [`WRITE_HIGH_WATERMARK`] bytes ahead of the
//! socket, with `EPOLLOUT` interest toggled on exactly while bytes are
//! pending — a slow reader costs one bounded buffer, not memory
//! proportional to its result set. While output is pending (or a query is
//! executing) the loop does not read further queries from that socket, so
//! a client cannot pipeline itself into unbounded server-side state.
//!
//! **Admission control**: a query is admitted only while fewer than
//! `max_inflight_queries` queries are queued-or-executing on the pool;
//! excess load is shed immediately with a typed `DbError::Rejected` error
//! frame (`netproto.evloop.shed`). An admitted query's `query_deadline`
//! budget starts at admission, so time spent waiting for a pool worker
//! counts against it and a saturated server times out queued work instead
//! of serving arbitrarily stale answers.

use crate::config::NetConfig;
use crate::epoll::{wake_pipe, Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::framing::{decode_query, encode_schema, write_frame, Encoding, FrameKind, MAX_FRAME};
use crate::server::{encode_rows_chunk, panic_message, reject_stream, ROWS_PER_FRAME};
use mlcs_columnar::faults::FaultyStream;
use mlcs_columnar::{metrics, Batch, Database, DbError, DbResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes of encoded-but-unsent output a connection may buffer before the
/// loop stops encoding further row frames for it.
const WRITE_HIGH_WATERMARK: usize = 256 * 1024;
/// Upper bound on one `epoll_wait`; doubles as the stop-flag poll period
/// and the idle-sweep cadence.
const WAIT_MS: i32 = 50;
/// Epoll token of the loop's wake pipe.
const WAKE_TOKEN: u64 = 0;
/// Epoll token of the listener (loop 0 only).
const LISTENER_TOKEN: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Readiness notifications drained per `epoll_wait`.
const MAX_EVENTS: usize = 256;
/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// State shared by every event loop and the handle.
struct Shared {
    config: NetConfig,
    db: Database,
    stop: AtomicBool,
    /// Queries queued-or-executing on the worker pool (admission signal).
    inflight: AtomicUsize,
    /// Connections currently owned by any loop (capacity signal).
    active: AtomicUsize,
}

/// How a query handed to the pool ended.
enum Outcome {
    /// A result set to stream back.
    Batch(Batch),
    /// A typed error to report in an `Error` frame.
    Failed(DbError),
}

/// Cross-thread message into an event loop.
enum Msg {
    /// A freshly accepted socket for this loop to own.
    Adopt(TcpStream),
    /// Query completion for the connection with this token.
    Done(u64, Outcome),
}

/// An event loop's inbox plus the pipe that wakes its `epoll_wait`.
struct Mailbox {
    inbox: Mutex<Vec<Msg>>,
    wake: Mutex<File>,
}

impl Mailbox {
    fn post(&self, msg: Msg) {
        self.inbox.lock().push(msg);
        self.wake();
    }

    fn wake(&self) {
        // Rust ignores SIGPIPE, so a write after the loop has exited (read
        // end closed) fails with EPIPE instead of killing the process —
        // exactly what shutdown wants.
        let mut pipe = self.wake.lock();
        let _ = pipe.write_all(&[1]);
    }
}

/// Takes everything currently in the inbox.
fn take_inbox(mailbox: &Mailbox) -> Vec<Msg> {
    std::mem::take(&mut *mailbox.inbox.lock())
}

/// Where a connection is in its request/response cycle.
enum ConnState {
    /// Waiting for the next `Query` frame.
    Idle,
    /// A query is on the worker pool; remembers the requested encoding.
    Executing { encoding: Encoding },
    /// Streaming a result batch into the output buffer.
    Streaming { batch: Batch, encoding: Encoding, next_row: usize },
}

/// Per-connection output buffer: encoded frames awaiting the socket.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// One client connection owned by an event loop.
struct Conn {
    stream: FaultyStream<TcpStream>,
    fd: RawFd,
    read_buf: Vec<u8>,
    out: OutBuf,
    state: ConnState,
    interest: u32,
    last_activity: Instant,
    /// Close once the output buffer drains (framing sync lost).
    fatal: bool,
}

/// One event-loop thread's state.
struct EventLoop {
    epoll: Epoll,
    wake_rx: File,
    mailbox: Arc<Mailbox>,
    shared: Arc<Shared>,
    /// Present on loop 0 only: the accepting listener.
    listener: Option<TcpListener>,
    /// Every loop's mailbox, for round-robin adoption of accepted sockets.
    peers: Vec<Arc<Mailbox>>,
    next_peer: usize,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

/// Splits one complete frame off the front of `buf`, mirroring
/// `framing::read_frame`'s validation and metrics; `Ok(None)` means more
/// bytes are needed.
fn take_frame(buf: &mut Vec<u8>) -> DbResult<Option<(FrameKind, Vec<u8>)>> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let kind = FrameKind::from_byte(buf[0])?;
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME {
        return Err(DbError::Corrupt(format!("frame of {len} bytes exceeds the cap")));
    }
    if buf.len() < 5 + len {
        return Ok(None);
    }
    let payload = buf[5..5 + len].to_vec();
    buf.drain(..5 + len);
    metrics::counter("netproto.frames_received").incr();
    metrics::counter("netproto.bytes_received").add((5 + len) as u64);
    Ok(Some((kind, payload)))
}

/// Runs one admitted query on a pool worker: deadline budget (started at
/// admission), panic isolation, typed errors.
fn run_query(db: &Database, sql: &str, deadline: Option<Duration>, admitted: Instant) -> Outcome {
    let budget = match deadline {
        Some(d) => {
            let waited = admitted.elapsed();
            if waited >= d {
                // Shed stale queued work instead of executing it.
                return Outcome::Failed(DbError::Timeout { path: "evloop.admission".into() });
            }
            Some(d - waited)
        }
        None => None,
    };
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match budget {
        Some(d) => db.execute_with_timeout(sql, d),
        None => db.execute(sql),
    }));
    match executed {
        Err(panic) => {
            metrics::counter("netproto.panics_caught").incr();
            Outcome::Failed(DbError::Internal(format!(
                "query panicked: {}",
                panic_message(panic.as_ref())
            )))
        }
        Ok(Err(e)) => Outcome::Failed(e),
        Ok(Ok(result)) => Outcome::Batch(result.into_batch()),
    }
}

/// Appends an `Error` frame for `e` to the connection's output buffer,
/// ticking the matching serving metric.
fn queue_error(conn: &mut Conn, e: &DbError) {
    if matches!(e, DbError::Timeout { .. }) {
        metrics::counter("netproto.timeouts").incr();
    }
    if matches!(e, DbError::Rejected(_)) {
        metrics::counter("netproto.evloop.shed").incr();
    }
    let _ = write_frame(&mut conn.out.buf, FrameKind::Error, e.to_string().as_bytes());
}

/// Encodes pending result rows into the output buffer, up to the write
/// high-watermark; emits the `Done` frame and returns the connection to
/// `Idle` when the batch is exhausted.
fn fill_stream(conn: &mut Conn) {
    loop {
        let ConnState::Streaming { batch, encoding, next_row } = &mut conn.state else {
            return;
        };
        if conn.out.pending() >= WRITE_HIGH_WATERMARK {
            return;
        }
        if *next_row >= batch.rows() {
            let rows = batch.rows() as u64;
            let _ = write_frame(&mut conn.out.buf, FrameKind::Done, &rows.to_le_bytes());
            metrics::counter("netproto.server.queries").incr();
            conn.state = ConnState::Idle;
            return;
        }
        let end = (*next_row + ROWS_PER_FRAME).min(batch.rows());
        let (kind, payload) = encode_rows_chunk(batch, *next_row, end, *encoding);
        *next_row = end;
        let _ = write_frame(&mut conn.out.buf, kind, &payload);
    }
}

/// Writes buffered output to the socket until it drains or would block.
/// An `Err` means the connection is beyond saving.
fn flush_out(conn: &mut Conn) -> std::io::Result<()> {
    while conn.out.pos < conn.out.buf.len() {
        match conn.stream.write(&conn.out.buf[conn.out.pos..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out.pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.out.pos >= conn.out.buf.len() {
        conn.out.buf.clear();
        conn.out.pos = 0;
    }
    Ok(())
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); MAX_EVENTS];
        loop {
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            let n = match self.epoll.wait(&mut events, WAIT_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in events.iter().take(n) {
                let (mask, token) = (ev.events(), ev.data());
                match token {
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, mask),
                }
            }
            self.drain_mailbox();
            self.sweep_idle();
        }
        // Gauge and counter hygiene: every owned connection is released.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Discards accumulated wake bytes (the mailbox drain that follows
    /// picks up whatever the bytes announced).
    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Accepts every pending connection: capacity check, then round-robin
    /// hand-off to an event loop.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    let cap = self.shared.config.max_connections.max(1);
                    if self.shared.active.load(Ordering::Relaxed) >= cap {
                        reject_stream(stream, &self.shared.config);
                        continue;
                    }
                    self.shared.active.fetch_add(1, Ordering::Relaxed);
                    metrics::counter("netproto.evloop.accepted").incr();
                    metrics::gauge("netproto.evloop.active_connections").add(1);
                    let idx = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    // Posting to our own mailbox is fine too: the drain
                    // runs right after event dispatch.
                    self.peers[idx].post(Msg::Adopt(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Takes ownership of an accepted socket: nonblocking, registered for
    /// read interest, tracked under a fresh token.
    fn adopt(&mut self, stream: TcpStream) {
        let prepared = stream.set_nonblocking(true).and_then(|()| stream.set_nodelay(true));
        if prepared.is_err() {
            self.release_unregistered();
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        let interest = EPOLLIN;
        if self.epoll.add(fd, interest, token).is_err() {
            self.release_unregistered();
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream: FaultyStream::new(stream),
                fd,
                read_buf: Vec::new(),
                out: OutBuf::default(),
                state: ConnState::Idle,
                interest,
                last_activity: Instant::now(),
                fatal: false,
            },
        );
    }

    /// Undoes the accept-time accounting for a socket that never made it
    /// into the epoll set.
    fn release_unregistered(&self) {
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        metrics::gauge("netproto.evloop.active_connections").add(-1);
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if mask & EPOLLIN != 0 && !self.read_ready(token) {
            return;
        }
        self.pump(token);
    }

    /// Drains the socket into the connection's read buffer. Returns false
    /// when the connection was closed (EOF or hard error).
    fn read_ready(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        let mut closed = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        if closed {
            self.close_conn(token);
            return false;
        }
        true
    }

    /// The per-connection engine: encode pending rows, flush, and start
    /// the next request — until blocked on the socket, the pool, or the
    /// client.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            fill_stream(conn);
            if flush_out(conn).is_err() {
                self.close_conn(token);
                return;
            }
            let out_pending = conn.out.pending() > 0;
            let fatal = conn.fatal;
            let streaming = matches!(conn.state, ConnState::Streaming { .. });
            let idle = matches!(conn.state, ConnState::Idle);
            if out_pending {
                break; // wait for EPOLLOUT
            }
            if fatal {
                self.close_conn(token);
                return;
            }
            if streaming {
                continue; // output drained below the watermark: encode more
            }
            if idle {
                if self.next_request(token) {
                    continue; // flush whatever the request produced
                }
                break; // no complete frame buffered: wait for EPOLLIN
            }
            break; // Executing: wait for the pool's Done message
        }
        self.update_interest(token);
    }

    /// Consumes one buffered frame if complete: admission-checks a query
    /// and hands it to the pool, or queues a typed error frame. Returns
    /// true when any progress was made.
    fn next_request(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        let (kind, payload) = match take_frame(&mut conn.read_buf) {
            Ok(Some(frame)) => frame,
            Ok(None) => return false,
            Err(e) => {
                // Torn or garbled frame: report, then close once the
                // error frame has flushed — framing sync is lost.
                let _ = write_frame(&mut conn.out.buf, FrameKind::Error, e.to_string().as_bytes());
                conn.fatal = true;
                return true;
            }
        };
        conn.last_activity = Instant::now();
        if kind != FrameKind::Query {
            let _ = write_frame(&mut conn.out.buf, FrameKind::Error, b"expected a query frame");
            return true;
        }
        let (encoding, sql) = match decode_query(&payload) {
            Ok(q) => q,
            Err(e) => {
                let _ = write_frame(&mut conn.out.buf, FrameKind::Error, e.to_string().as_bytes());
                return true;
            }
        };
        if let Some(e) = crate::server::remote_save_rejection(&sql, &self.shared.config) {
            queue_error(conn, &e);
            return true;
        }
        let quota = self.shared.config.max_inflight_queries.max(1);
        if self.shared.inflight.load(Ordering::Relaxed) >= quota {
            let e = DbError::Rejected(format!("server overloaded ({quota} queries in flight)"));
            queue_error(conn, &e);
            return true;
        }
        self.shared.inflight.fetch_add(1, Ordering::Relaxed);
        metrics::counter("netproto.evloop.queries").incr();
        conn.state = ConnState::Executing { encoding };
        let db = self.shared.db.clone();
        let deadline = self.shared.config.query_deadline;
        let mailbox = Arc::clone(&self.mailbox);
        let admitted = Instant::now();
        mlcs_columnar::parallel::spawn(move || {
            let outcome = run_query(&db, &sql, deadline, admitted);
            mailbox.post(Msg::Done(token, outcome));
        });
        true
    }

    fn drain_mailbox(&mut self) {
        loop {
            let msgs = take_inbox(&self.mailbox);
            if msgs.is_empty() {
                return;
            }
            for msg in msgs {
                match msg {
                    Msg::Adopt(stream) => self.adopt(stream),
                    Msg::Done(token, outcome) => self.finish(token, outcome),
                }
            }
        }
    }

    /// Applies a pool completion to its connection: error frame or the
    /// start of result streaming.
    fn finish(&mut self, token: u64, outcome: Outcome) {
        // Decrement first: the admission quota must free up even when the
        // connection vanished mid-query.
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let encoding = match &conn.state {
            ConnState::Executing { encoding } => *encoding,
            // A completion for a non-executing connection cannot happen
            // (one outstanding query per connection); keep a sane default
            // rather than poisoning the loop.
            _ => Encoding::Text,
        };
        match outcome {
            Outcome::Failed(e) => {
                queue_error(conn, &e);
                conn.state = ConnState::Idle;
            }
            Outcome::Batch(batch) => {
                let fields: Vec<(String, mlcs_columnar::DataType)> =
                    batch.schema().fields().iter().map(|f| (f.name.clone(), f.dtype)).collect();
                let _ = write_frame(&mut conn.out.buf, FrameKind::Schema, &encode_schema(&fields));
                conn.state = ConnState::Streaming { batch, encoding, next_row: 0 };
            }
        }
        self.pump(token);
    }

    /// Closes connections idle past the read deadline — the same
    /// idle-connection bound the thread-per-connection server enforces
    /// with `set_read_timeout`.
    fn sweep_idle(&mut self) {
        let Some(deadline) = self.shared.config.read_timeout else { return };
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.state, ConnState::Idle)
                    && c.out.pending() == 0
                    && c.last_activity.elapsed() >= deadline
            })
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            metrics::counter("netproto.timeouts").incr();
            self.close_conn(token);
        }
    }

    /// Recomputes the epoll interest mask from the connection's state:
    /// read interest only while idle (no pipelining into a busy
    /// connection), write interest exactly while output is pending.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut want = 0u32;
        if matches!(conn.state, ConnState::Idle) && !conn.fatal {
            want |= EPOLLIN;
        }
        if conn.out.pending() > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest && self.epoll.modify(conn.fd, want, token).is_ok() {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.fd);
            self.shared.active.fetch_sub(1, Ordering::Relaxed);
            metrics::gauge("netproto.evloop.active_connections").add(-1);
        }
    }
}

/// A running reactor: the event-loop threads plus their shared state.
/// Owned by [`crate::Server`] when `NetConfig::mode` is
/// `ServeMode::Reactor`.
pub(crate) struct Reactor {
    addr: SocketAddr,
    shared: Arc<Shared>,
    mailboxes: Vec<Arc<Mailbox>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Binds a fresh localhost port and spawns `config.event_loops`
    /// loops; loop 0 owns the listener.
    pub(crate) fn start(db: Database, config: NetConfig) -> DbResult<Reactor> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            config,
            db,
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        });
        let loops = config.event_loops.max(1);
        let mut parts = Vec::with_capacity(loops);
        let mut mailboxes = Vec::with_capacity(loops);
        for i in 0..loops {
            let epoll = Epoll::new().map_err(|e| DbError::Io(format!("epoll_create: {e}")))?;
            let (wake_rx, wake_tx) =
                wake_pipe().map_err(|e| DbError::Io(format!("wake pipe: {e}")))?;
            epoll
                .add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN)
                .map_err(|e| DbError::Io(format!("register wake pipe: {e}")))?;
            if i == 0 {
                epoll
                    .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
                    .map_err(|e| DbError::Io(format!("register listener: {e}")))?;
            }
            let mailbox =
                Arc::new(Mailbox { inbox: Mutex::new(Vec::new()), wake: Mutex::new(wake_tx) });
            mailboxes.push(Arc::clone(&mailbox));
            parts.push((epoll, wake_rx, mailbox));
        }
        let mut listener = Some(listener);
        let mut threads = Vec::with_capacity(loops);
        for (i, (epoll, wake_rx, mailbox)) in parts.into_iter().enumerate() {
            let event_loop = EventLoop {
                epoll,
                wake_rx,
                mailbox,
                shared: Arc::clone(&shared),
                listener: if i == 0 { listener.take() } else { None },
                peers: mailboxes.clone(),
                next_peer: 0,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
            };
            let handle = std::thread::Builder::new()
                .name(format!("mlcs-evloop-{i}"))
                .spawn(move || event_loop.run())
                .map_err(|e| DbError::Io(format!("spawn event loop: {e}")))?;
            threads.push(handle);
        }
        Ok(Reactor { addr, shared, mailboxes, threads })
    }

    /// The address clients should connect to.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every loop to stop, wakes them, and joins. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for mailbox in &self.mailboxes {
            mailbox.wake();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
