//! Text-protocol client (PostgreSQL-classic cost profile).

use crate::client::ClientCore;
use crate::config::NetConfig;
use crate::framing::{Encoding, FrameKind};
use mlcs_columnar::{Batch, ColumnBuilder, DataType, DbError, DbResult, Field, Schema, Value};
use std::net::SocketAddr;
use std::sync::Arc;

/// A client that fetches results in the text encoding: every value crosses
/// the wire as text and is parsed back into its native type on the client.
pub struct TextClient {
    core: ClientCore,
}

impl TextClient {
    /// Connects to a [`crate::Server`] with default [`NetConfig`].
    pub fn connect(addr: SocketAddr) -> DbResult<TextClient> {
        TextClient::connect_with(addr, NetConfig::default())
    }

    /// Connects with explicit timeouts and retry budget.
    pub fn connect_with(addr: SocketAddr, config: NetConfig) -> DbResult<TextClient> {
        Ok(TextClient { core: ClientCore::connect(addr, config)? })
    }

    /// Runs a query and materializes the full result as a client-side
    /// batch (rebuilding columns from the streamed rows). Transport
    /// failures before the first `Schema` frame are retried per the
    /// configured budget; a server `Error` frame is never retried.
    pub fn query(&mut self, sql: &str) -> DbResult<Batch> {
        let raw = self.core.query_raw(Encoding::Text, FrameKind::RowsText, sql)?;
        let schema = Arc::new(Schema::new_unchecked(
            raw.fields.iter().map(|(n, t)| Field::new(n.clone(), *t)).collect(),
        ));
        let mut builders: Vec<ColumnBuilder> =
            raw.fields.iter().map(|(_, t)| ColumnBuilder::new(*t)).collect();
        for payload in &raw.row_frames {
            mlcs_columnar::metrics::counter("netproto.text.bytes_received")
                .add(payload.len() as u64);
            parse_text_rows(payload, &mut builders)?;
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        let batch = Batch::new(schema, columns)?;
        mlcs_columnar::metrics::counter("netproto.text.queries").incr();
        mlcs_columnar::metrics::counter("netproto.text.rows").add(batch.rows() as u64);
        Ok(batch)
    }
}

/// Parses a text rows frame into the column builders.
///
/// The encoding escapes literal tabs and newlines, so raw `\t` / `\n`
/// bytes are unambiguous field and row separators.
fn parse_text_rows(payload: &[u8], builders: &mut [ColumnBuilder]) -> DbResult<()> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| DbError::Corrupt("rows frame is not UTF-8".into()))?;
    let mut field = String::new();
    for line in text.split_terminator('\n') {
        let mut col = 0usize;
        for raw in line.split('\t') {
            if col >= builders.len() {
                return Err(DbError::Shape(format!(
                    "text row has more than {} fields",
                    builders.len()
                )));
            }
            if raw == "\\N" {
                builders[col].push_null();
                col += 1;
                continue;
            }
            field.clear();
            let mut chars = raw.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('t') => field.push('\t'),
                        Some('n') => field.push('\n'),
                        Some('\\') => field.push('\\'),
                        other => {
                            return Err(DbError::Corrupt(format!(
                                "bad escape '\\{}' in text row",
                                other.map(String::from).unwrap_or_default()
                            )))
                        }
                    }
                } else {
                    field.push(c);
                }
            }
            push_text_value(&mut builders[col], &field, false)?;
            col += 1;
        }
        if col != builders.len() {
            return Err(DbError::Shape(format!(
                "text row has {col} fields, expected {}",
                builders.len()
            )));
        }
    }
    Ok(())
}

/// Parses one text field into the typed builder — the per-value conversion
/// cost that makes text protocols slow.
fn push_text_value(b: &mut ColumnBuilder, text: &str, is_null: bool) -> DbResult<()> {
    if is_null {
        b.push_null();
        return Ok(());
    }
    let bad = |t: &str| DbError::Corrupt(format!("cannot parse '{text}' as {t}"));
    match b.data_type() {
        DataType::Boolean => match text {
            "true" => b.push_value(&Value::Boolean(true)),
            "false" => b.push_value(&Value::Boolean(false)),
            _ => Err(bad("BOOLEAN")),
        },
        DataType::Int8 => b.push_value(&Value::Int8(text.parse().map_err(|_| bad("TINYINT"))?)),
        DataType::Int16 => b.push_value(&Value::Int16(text.parse().map_err(|_| bad("SMALLINT"))?)),
        DataType::Int32 => b.push_value(&Value::Int32(text.parse().map_err(|_| bad("INTEGER"))?)),
        DataType::Int64 => b.push_value(&Value::Int64(text.parse().map_err(|_| bad("BIGINT"))?)),
        DataType::Float32 => b.push_value(&Value::Float32(text.parse().map_err(|_| bad("REAL"))?)),
        DataType::Float64 => {
            b.push_value(&Value::Float64(text.parse().map_err(|_| bad("DOUBLE"))?))
        }
        DataType::Varchar => b.push_value(&Value::Varchar(text.to_owned())),
        DataType::Blob => {
            // Blobs arrive as \xHEX.
            let hex = text.strip_prefix("\\x").ok_or_else(|| bad("BLOB"))?;
            if hex.len() % 2 != 0 {
                return Err(bad("BLOB"));
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for pair in hex.as_bytes().chunks(2) {
                let s = std::str::from_utf8(pair).map_err(|_| bad("BLOB"))?;
                bytes.push(u8::from_str_radix(s, 16).map_err(|_| bad("BLOB"))?);
            }
            b.push_value(&Value::Blob(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use mlcs_columnar::Database;

    fn serve() -> (Server, Database) {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, s VARCHAR, f DOUBLE)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 'plain', 0.5), (2, 'tab\there', NULL), (NULL, 'x', -1.5)",
        )
        .unwrap();
        let server = Server::start(db.clone()).unwrap();
        (server, db)
    }

    #[test]
    fn query_round_trip() {
        let (server, _db) = serve();
        let mut client = TextClient::connect(server.addr()).unwrap();
        let batch = client.query("SELECT a, s, f FROM t ORDER BY a").unwrap();
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.row(0), vec![Value::Int32(1), "plain".into(), Value::Float64(0.5)]);
        // Escaped tab survives.
        assert_eq!(batch.row(1)[1], Value::Varchar("tab\there".into()));
        assert!(batch.row(1)[2].is_null());
        // NULLs last under ASC by default.
        assert!(batch.row(2)[0].is_null());
        server.shutdown();
    }

    #[test]
    fn multiple_queries_on_one_connection() {
        let (server, _db) = serve();
        let mut client = TextClient::connect(server.addr()).unwrap();
        for _ in 0..3 {
            let b = client.query("SELECT COUNT(*) FROM t").unwrap();
            assert_eq!(b.row(0)[0], Value::Int64(3));
        }
        server.shutdown();
    }

    #[test]
    fn server_errors_propagate() {
        let (server, _db) = serve();
        let mut client = TextClient::connect(server.addr()).unwrap();
        let err = client.query("SELECT * FROM nonexistent").unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
        // The connection stays usable afterwards.
        assert_eq!(client.query("SELECT 1").unwrap().rows(), 1);
        server.shutdown();
    }

    #[test]
    fn blobs_cross_as_hex() {
        let db = Database::new();
        db.execute("CREATE TABLE b (v BLOB)").unwrap();
        db.execute("INSERT INTO b VALUES (x'00ff10')").unwrap();
        let server = Server::start(db).unwrap();
        let mut client = TextClient::connect(server.addr()).unwrap();
        let batch = client.query("SELECT v FROM b").unwrap();
        assert_eq!(batch.row(0)[0], Value::Blob(vec![0x00, 0xFF, 0x10]));
        server.shutdown();
    }

    #[test]
    fn large_result_spans_frames() {
        let db = Database::new();
        db.execute("CREATE TABLE big (x INTEGER)").unwrap();
        let values: Vec<String> = (0..5000).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(","))).unwrap();
        let server = Server::start(db).unwrap();
        let mut client = TextClient::connect(server.addr()).unwrap();
        let batch = client.query("SELECT x FROM big").unwrap();
        assert_eq!(batch.rows(), 5000);
        assert_eq!(batch.row(4999)[0], Value::Int32(4999));
        server.shutdown();
    }
}
