//! Embedded row-cursor API (SQLite cost profile).
//!
//! No socket, no serialization — but the consumer still walks the result
//! one row at a time, extracting each value individually, then transposes
//! everything back into columns. This is how scripting languages typically
//! consume embedded databases, and it is the third baseline family of
//! Figure 1.

use mlcs_columnar::{Batch, ColumnBuilder, Database, DbResult, Schema, Value};
use std::sync::Arc;

/// A stepping cursor over a materialized query result.
pub struct RowCursor {
    batch: Batch,
    row: isize,
}

impl RowCursor {
    /// Executes `sql` and returns a cursor positioned before the first row.
    pub fn query(db: &Database, sql: &str) -> DbResult<RowCursor> {
        mlcs_columnar::metrics::counter("netproto.embedded.queries").incr();
        Ok(RowCursor { batch: db.query(sql)?, row: -1 })
    }

    /// Advances to the next row; returns false when exhausted.
    pub fn step(&mut self) -> bool {
        if (self.row + 1) as usize >= self.batch.rows() {
            return false;
        }
        self.row += 1;
        true
    }

    /// Number of result columns.
    pub fn column_count(&self) -> usize {
        self.batch.width()
    }

    /// The result schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.batch.schema()
    }

    /// The value of column `col` in the current row. Panics if `step` has
    /// not been called or returned false (like misusing sqlite3_column).
    pub fn get(&self, col: usize) -> Value {
        assert!(self.row >= 0, "step() must succeed before get()");
        self.batch.column(col).value(self.row as usize)
    }

    /// Current row's value as i64, if integer and non-NULL.
    pub fn get_i64(&self, col: usize) -> Option<i64> {
        assert!(self.row >= 0, "step() must succeed before get()");
        self.batch.column(col).i64_at(self.row as usize)
    }

    /// Current row's value as f64, if numeric and non-NULL.
    pub fn get_f64(&self, col: usize) -> Option<f64> {
        assert!(self.row >= 0, "step() must succeed before get()");
        self.batch.column(col).f64_at(self.row as usize)
    }

    /// Drains the cursor the way a script consumes an embedded database:
    /// step, extract every value, append to growing per-column buffers —
    /// the row-at-a-time tax made explicit.
    pub fn drain_to_batch(mut self) -> DbResult<Batch> {
        let schema = self.batch.schema().clone();
        let mut builders: Vec<ColumnBuilder> =
            schema.fields().iter().map(|f| ColumnBuilder::new(f.dtype)).collect();
        let mut rows: u64 = 0;
        while self.step() {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push_value(&self.get(c))?;
            }
            rows += 1;
        }
        mlcs_columnar::metrics::counter("netproto.embedded.rows").add(rows);
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Batch::new(schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, f DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 0.5), (2, NULL), (3, 2.5)").unwrap();
        db
    }

    #[test]
    fn step_and_get() {
        let db = db();
        let mut cur = RowCursor::query(&db, "SELECT a, f FROM t ORDER BY a").unwrap();
        assert_eq!(cur.column_count(), 2);
        let mut seen = Vec::new();
        while cur.step() {
            seen.push((cur.get_i64(0), cur.get_f64(1)));
        }
        assert_eq!(seen, vec![(Some(1), Some(0.5)), (Some(2), None), (Some(3), Some(2.5))]);
        assert!(!cur.step(), "exhausted cursor stays exhausted");
    }

    #[test]
    fn drain_reconstructs_batch() {
        let db = db();
        let direct = db.query("SELECT a, f FROM t ORDER BY a").unwrap();
        let drained = RowCursor::query(&db, "SELECT a, f FROM t ORDER BY a")
            .unwrap()
            .drain_to_batch()
            .unwrap();
        assert_eq!(direct.rows(), drained.rows());
        for r in 0..direct.rows() {
            assert_eq!(direct.row(r), drained.row(r));
        }
    }

    #[test]
    #[should_panic(expected = "step() must succeed")]
    fn get_before_step_panics() {
        let db = db();
        let cur = RowCursor::query(&db, "SELECT a FROM t").unwrap();
        let _ = cur.get(0);
    }

    #[test]
    fn empty_result() {
        let db = db();
        let mut cur = RowCursor::query(&db, "SELECT a FROM t WHERE a > 100").unwrap();
        assert!(!cur.step());
    }
}
