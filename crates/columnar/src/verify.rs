//! Static plan verification.
//!
//! [`verify_plan`] walks a bound (and usually optimized) [`LogicalPlan`]
//! *before* execution and re-derives every invariant the executor relies
//! on, so a mistyped plan surfaces as a typed [`DbError::PlanInvariant`]
//! with operator-path context instead of a panic or silent wrong answer
//! mid-query:
//!
//! * **Schema propagation** — every operator's declared output schema must
//!   be derivable from its inputs (column counts and types line up for
//!   `Project`, `Join`, `Aggregate`, `UnionAll`, `TableFunction`).
//! * **No unbound references** — every `Expr::Column(i)`, join key, and
//!   sort key must index into its input schema.
//! * **Expression types** — expression trees are re-typed bottom-up with
//!   the same rules the binder uses; a disagreement with the declared
//!   schema is a verification failure. Types that cannot be determined
//!   statically (`NULL` literals, unsubstituted scalar subqueries) are
//!   treated as *unknown* and satisfy any expectation, so verification
//!   never rejects a plan the binder legitimately produced.
//! * **UDF contracts** — every referenced scalar/table UDF must exist in
//!   the registry and accept the bound argument types via its
//!   `return_type`/`schema` hook (this is where arity mismatches are
//!   caught); a `parallel_safe` scalar UDF must not appear in a constant
//!   (non-splittable) table-function argument, where morsel semantics do
//!   not apply.
//! * **Aggregate and join key compatibility** — `SUM`/`AVG` arguments must
//!   be numeric, and each join key pair must hash identically under the
//!   row-key encoding (same type, both integers, or both floats; an
//!   `INTEGER = DOUBLE` key would silently never match).
//!
//! The verifier runs unconditionally on every statement executed through
//! [`crate::Database`] (after scalar-subquery substitution and
//! optimization), and again in debug builds after each optimizer rewrite
//! pass and at the top of `sql::execute::execute_plan`.

use crate::error::{DbError, DbResult};
use crate::exec::{AggFunc, JoinType};
use crate::expr::{BinaryOp, BuiltinScalar, Expr, UnaryOp};
use crate::schema::Schema;
use crate::sql::plan::{BoundStatement, BoundTableArg, LogicalPlan, PlanAgg};
use crate::types::DataType;
use crate::udf::FunctionRegistry;
use std::sync::Arc;

/// Validates the per-column encoding invariants of a batch (dictionary
/// codes in range, run ends strictly increasing and consistent with the
/// logical length, validity bitmap logical-length). The executor runs this
/// on every table scan in debug builds, so a storage-layer encoding bug
/// surfaces at the scan that exposes it rather than as a wrong result.
pub fn verify_batch_encodings(batch: &crate::batch::Batch) -> DbResult<()> {
    for c in batch.columns() {
        c.check_encoding()?;
    }
    Ok(())
}

/// Verifies a plan against the function registry. `Expr::Subquery`
/// placeholders are tolerated and typed as unknown, so both substituted
/// and pre-substitution plans are accepted.
pub fn verify_plan(plan: &LogicalPlan, functions: &FunctionRegistry) -> DbResult<()> {
    Verifier::new(Some(functions), Subqueries::Opaque).run(plan)
}

/// Verifies every plan inside a bound statement: the main plan (if any)
/// plus each scalar-subquery plan, with subquery placeholders typed from
/// the subquery plans' schemas — exactly what the binder recorded.
///
/// `DELETE`/`UPDATE` filter expressions are bound against catalog state
/// not captured in the statement, so only their subquery plans are
/// checked here; their expressions are re-verified at execution time.
pub fn verify_statement(stmt: &BoundStatement, functions: &FunctionRegistry) -> DbResult<()> {
    let (plan, subs): (Option<&LogicalPlan>, &[LogicalPlan]) = match stmt {
        BoundStatement::Query { plan, scalar_subs }
        | BoundStatement::Explain { plan, scalar_subs, .. }
        | BoundStatement::CreateTableAs { plan, scalar_subs, .. }
        | BoundStatement::InsertQuery { plan, scalar_subs, .. } => (Some(plan), scalar_subs),
        BoundStatement::Delete { scalar_subs, .. } | BoundStatement::Update { scalar_subs, .. } => {
            (None, scalar_subs)
        }
        BoundStatement::CreateTable { .. }
        | BoundStatement::DropTable { .. }
        | BoundStatement::InsertValues { .. }
        | BoundStatement::ShowTables
        | BoundStatement::ShowFunctions
        | BoundStatement::DropFunction { .. }
        | BoundStatement::Checkpoint
        | BoundStatement::Save { .. } => return Ok(()),
    };
    let mut types = Vec::with_capacity(subs.len());
    for (i, sub) in subs.iter().enumerate() {
        Verifier::new(Some(functions), Subqueries::Opaque).run(sub)?;
        let schema = sub.schema();
        if schema.len() != 1 {
            return Err(DbError::plan_invariant(
                format!("scalar subquery ${i}"),
                format!("scalar subquery must return one column, has {}", schema.len()),
            ));
        }
        types.push(schema.field(0).dtype);
    }
    match plan {
        Some(p) => Verifier::new(Some(functions), Subqueries::Known(types)).run(p),
        None => Ok(()),
    }
}

/// Structural re-verification after an optimizer rewrite: no registry is
/// available inside the optimizer, so UDF contracts are skipped (their
/// types become unknown) but schema propagation, column bounds, and key
/// compatibility are still enforced. Only called from debug builds (the
/// optimizer gates it on `debug_assertions`).
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(crate) fn verify_rewrite(plan: &LogicalPlan) -> DbResult<()> {
    Verifier::new(None, Subqueries::Opaque).run(plan)
}

/// Whether evaluating `e` concurrently over disjoint morsels is safe: every
/// referenced scalar UDF must declare itself `parallel_safe`; builtins,
/// plain expressions, and already-substituted subquery values always are.
/// An unregistered UDF name is conservatively unsafe (execution will fail
/// on it anyway).
pub fn expr_parallel_safe(e: &Expr, functions: &FunctionRegistry) -> bool {
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Subquery(_) => true,
        Expr::Binary { left, right, .. } => {
            expr_parallel_safe(left, functions) && expr_parallel_safe(right, functions)
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            expr_parallel_safe(expr, functions)
        }
        Expr::Case { operand, branches, else_expr } => {
            operand.iter().all(|e| expr_parallel_safe(e, functions))
                && branches.iter().all(|(w, t)| {
                    expr_parallel_safe(w, functions) && expr_parallel_safe(t, functions)
                })
                && else_expr.iter().all(|e| expr_parallel_safe(e, functions))
        }
        Expr::InList { expr, list, .. } => {
            expr_parallel_safe(expr, functions)
                && list.iter().all(|e| expr_parallel_safe(e, functions))
        }
        Expr::Like { expr, pattern, .. } => {
            expr_parallel_safe(expr, functions) && expr_parallel_safe(pattern, functions)
        }
        Expr::Between { expr, low, high, .. } => {
            expr_parallel_safe(expr, functions)
                && expr_parallel_safe(low, functions)
                && expr_parallel_safe(high, functions)
        }
        Expr::ScalarFn { args, .. } => args.iter().all(|e| expr_parallel_safe(e, functions)),
        Expr::Udf { name, args } => {
            functions.scalar(name).map(|u| u.parallel_safe()).unwrap_or(false)
                && args.iter().all(|e| expr_parallel_safe(e, functions))
        }
    }
}

/// [`expr_parallel_safe`] over a slice of expressions.
pub fn exprs_parallel_safe(exprs: &[Expr], functions: &FunctionRegistry) -> bool {
    exprs.iter().all(|e| expr_parallel_safe(e, functions))
}

/// How `Expr::Subquery` placeholders are typed during verification.
enum Subqueries {
    /// Types computed from the statement's scalar-subquery plans; an index
    /// past the end is a dangling reference.
    Known(Vec<DataType>),
    /// Placeholders allowed with unknown type (pre-substitution plans).
    Opaque,
}

struct Verifier<'a> {
    functions: Option<&'a FunctionRegistry>,
    subqueries: Subqueries,
    /// Operator names from the root to the node being verified.
    path: Vec<String>,
    /// True while verifying a constant table-function argument, where
    /// row-parallel UDF semantics do not apply.
    in_constant_arg: bool,
}

impl<'a> Verifier<'a> {
    fn new(functions: Option<&'a FunctionRegistry>, subqueries: Subqueries) -> Self {
        Verifier { functions, subqueries, path: Vec::new(), in_constant_arg: false }
    }

    fn run(mut self, plan: &LogicalPlan) -> DbResult<()> {
        self.plan(plan).map(drop)
    }

    fn fail(&self, message: impl Into<String>) -> DbError {
        let path = if self.path.is_empty() { "<root>".to_owned() } else { self.path.join(" > ") };
        DbError::PlanInvariant { path, message: message.into() }
    }

    /// Verifies one operator subtree and returns its (validated) schema.
    fn plan(&mut self, plan: &LogicalPlan) -> DbResult<Arc<Schema>> {
        self.path.push(plan.node_name());
        let schema = self.node(plan)?;
        self.path.pop();
        Ok(schema)
    }

    fn node(&mut self, plan: &LogicalPlan) -> DbResult<Arc<Schema>> {
        match plan {
            // The scan schema is a bind-time snapshot; the executor's
            // `conform` handles any drift against the live catalog.
            LogicalPlan::Scan { schema, .. } => Ok(schema.clone()),
            LogicalPlan::UnitRow => Ok(Schema::empty()),
            LogicalPlan::TableFunction { name, args, schema } => {
                self.table_function(name, args, schema)?;
                Ok(schema.clone())
            }
            LogicalPlan::Filter { input, predicate } => {
                let schema = self.plan(input)?;
                self.boolean_expr(predicate, &schema, "filter predicate")?;
                Ok(schema)
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let input_schema = self.plan(input)?;
                if exprs.len() != schema.len() {
                    return Err(self.fail(format!(
                        "{} expressions but {} output columns",
                        exprs.len(),
                        schema.len()
                    )));
                }
                for (i, (e, field)) in exprs.iter().zip(schema.fields()).enumerate() {
                    if let Some(t) = self.expr(e, &input_schema)? {
                        if t != field.dtype {
                            return Err(self.fail(format!(
                                "output column {i} ('{}') declared {} but expression \
                                 computes {t}",
                                field.name, field.dtype
                            )));
                        }
                    }
                }
                Ok(schema.clone())
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                residual,
                build_left,
                schema,
            } => {
                let ls = self.plan(left)?;
                let rs = self.plan(right)?;
                self.join_keys(&ls, &rs, left_keys, right_keys, *join_type)?;
                if *build_left && *join_type == JoinType::Cross {
                    return Err(self.fail("build_left set on a Cross join".to_owned()));
                }
                if let Some(pred) = residual {
                    if *join_type != JoinType::Inner {
                        return Err(
                            self.fail(format!("residual condition on a {join_type:?} join"))
                        );
                    }
                    // Residual coordinates span left then right columns —
                    // the declared schema, whose types we check next.
                    self.boolean_expr(pred, schema, "join residual")?;
                }
                if schema.len() != ls.len() + rs.len() {
                    return Err(self.fail(format!(
                        "declared {} output columns but inputs provide {} + {}",
                        schema.len(),
                        ls.len(),
                        rs.len()
                    )));
                }
                let input_types = ls.fields().iter().chain(rs.fields()).map(|f| f.dtype);
                for (i, (expected, field)) in input_types.zip(schema.fields()).enumerate() {
                    if field.dtype != expected {
                        return Err(self.fail(format!(
                            "output column {i} declared {} but input provides {expected}",
                            field.dtype
                        )));
                    }
                }
                Ok(schema.clone())
            }
            LogicalPlan::Aggregate { input, group, aggs, schema } => {
                let input_schema = self.plan(input)?;
                self.aggregate(&input_schema, group, aggs, schema)?;
                Ok(schema.clone())
            }
            LogicalPlan::Sort { input, keys } => {
                let schema = self.plan(input)?;
                for k in keys {
                    if k.column >= schema.len() {
                        return Err(self.fail(format!(
                            "sort key column #{} out of range (input has {} columns)",
                            k.column,
                            schema.len()
                        )));
                    }
                }
                Ok(schema)
            }
            LogicalPlan::Limit { input, .. } | LogicalPlan::Distinct { input } => self.plan(input),
            LogicalPlan::UnionAll { inputs, schema } => {
                if inputs.is_empty() {
                    return Err(self.fail("UNION ALL with no branches"));
                }
                for (b, branch) in inputs.iter().enumerate() {
                    let bs = self.plan(branch)?;
                    if bs.len() != schema.len() {
                        return Err(self.fail(format!(
                            "branch {b} has {} columns, union declares {}",
                            bs.len(),
                            schema.len()
                        )));
                    }
                    for (i, (bf, uf)) in bs.fields().iter().zip(schema.fields()).enumerate() {
                        if DataType::common_numeric(bf.dtype, uf.dtype).is_none() {
                            return Err(self.fail(format!(
                                "branch {b} column {i} type {} is incompatible with \
                                 union type {}",
                                bf.dtype, uf.dtype
                            )));
                        }
                    }
                }
                Ok(schema.clone())
            }
        }
    }

    fn table_function(
        &mut self,
        name: &str,
        args: &[BoundTableArg],
        declared: &Arc<Schema>,
    ) -> DbResult<()> {
        let udf = match self.functions {
            Some(registry) => Some(
                registry
                    .table(name)
                    .map_err(|_| self.fail(format!("unknown table function '{name}'")))?,
            ),
            None => None,
        };
        let mut arg_types: Vec<Option<DataType>> = Vec::new();
        for a in args {
            match a {
                BoundTableArg::Scalar(e) => {
                    // Constant arguments are evaluated over a unit batch:
                    // no input columns exist, so any reference is unbound.
                    self.in_constant_arg = true;
                    let t = self.expr(e, &Schema::empty());
                    self.in_constant_arg = false;
                    arg_types.push(t?);
                }
                BoundTableArg::Plan(p) => {
                    let s = self.plan(p)?;
                    arg_types.extend(s.fields().iter().map(|f| Some(f.dtype)));
                }
            }
        }
        let (Some(udf), Some(known)) =
            (udf, arg_types.iter().copied().collect::<Option<Vec<DataType>>>())
        else {
            return Ok(());
        };
        let computed = udf.schema(&known).map_err(|e| {
            self.fail(format!("table function '{name}' rejects its bound arguments: {e}"))
        })?;
        if computed.len() != declared.len() {
            return Err(self.fail(format!(
                "table function '{name}' produces {} columns but the plan declares {}",
                computed.len(),
                declared.len()
            )));
        }
        for (i, (cf, df)) in computed.fields().iter().zip(declared.fields()).enumerate() {
            if cf.dtype != df.dtype {
                return Err(self.fail(format!(
                    "table function '{name}' column {i} has type {} but the plan \
                     declares {}",
                    cf.dtype, df.dtype
                )));
            }
        }
        Ok(())
    }

    fn join_keys(
        &mut self,
        ls: &Schema,
        rs: &Schema,
        left_keys: &[usize],
        right_keys: &[usize],
        join_type: JoinType,
    ) -> DbResult<()> {
        if left_keys.len() != right_keys.len() {
            return Err(self.fail(format!(
                "{} left keys vs {} right keys",
                left_keys.len(),
                right_keys.len()
            )));
        }
        if join_type == JoinType::Cross && !left_keys.is_empty() {
            return Err(self.fail("cross join with equi-keys"));
        }
        for (&lk, &rk) in left_keys.iter().zip(right_keys) {
            let lf = ls.fields().get(lk).ok_or_else(|| {
                self.fail(format!(
                    "left join key #{lk} out of range (left input has {} columns)",
                    ls.len()
                ))
            })?;
            let rf = rs.fields().get(rk).ok_or_else(|| {
                self.fail(format!(
                    "right join key #{rk} out of range (right input has {} columns)",
                    rs.len()
                ))
            })?;
            if !join_key_compatible(lf.dtype, rf.dtype, left_keys.len() == 1) {
                return Err(self.fail(format!(
                    "type-incompatible join key: {} ({}) vs {} ({}) never hash equal",
                    lf.name, lf.dtype, rf.name, rf.dtype
                )));
            }
        }
        Ok(())
    }

    fn aggregate(
        &mut self,
        input: &Schema,
        group: &[Expr],
        aggs: &[PlanAgg],
        schema: &Arc<Schema>,
    ) -> DbResult<()> {
        if schema.len() != group.len() + aggs.len() {
            return Err(self.fail(format!(
                "{} group keys + {} aggregates but {} output columns",
                group.len(),
                aggs.len(),
                schema.len()
            )));
        }
        for (i, g) in group.iter().enumerate() {
            if let Some(t) = self.expr(g, input)? {
                let declared = schema.field(i).dtype;
                if t != declared {
                    return Err(self.fail(format!(
                        "group key {i} declared {declared} but expression computes {t}"
                    )));
                }
            }
        }
        for (j, agg) in aggs.iter().enumerate() {
            let arg_type = match (&agg.arg, agg.func) {
                (None, AggFunc::CountStar) => None,
                (None, f) => {
                    return Err(self.fail(format!("{f:?} requires an argument")));
                }
                (Some(_), AggFunc::CountStar) => {
                    return Err(self.fail("COUNT(*) takes no argument"));
                }
                (Some(e), _) => self.expr(e, input)?,
            };
            // Sum mirrors the binder's bind-time check; Avg accepts
            // anything the accumulator can fold to f64.
            let expected = match (agg.func, arg_type) {
                (AggFunc::CountStar | AggFunc::Count, _) => Some(DataType::Int64),
                (AggFunc::Avg, Some(t)) if !t.is_numeric() && t != DataType::Boolean => {
                    return Err(self.fail(format!("AVG over non-numeric type {t}")));
                }
                (AggFunc::Avg, _) => Some(DataType::Float64),
                (AggFunc::Sum, Some(t)) if t.is_integer() => Some(DataType::Int64),
                (AggFunc::Sum, Some(t)) if t.is_float() => Some(DataType::Float64),
                (AggFunc::Sum, Some(t)) => {
                    return Err(self.fail(format!("SUM over non-numeric type {t}")));
                }
                (AggFunc::Sum, None) => None,
                (AggFunc::Min | AggFunc::Max, t) => t,
            };
            if let Some(expected) = expected {
                let declared = schema.field(group.len() + j).dtype;
                if declared != expected {
                    return Err(self.fail(format!(
                        "aggregate {j} ({:?}) declared {declared} but computes {expected}",
                        agg.func
                    )));
                }
            }
        }
        Ok(())
    }

    /// Checks a predicate-position expression: unbound references are
    /// errors and a statically-known non-boolean type is rejected.
    fn boolean_expr(&mut self, e: &Expr, input: &Schema, what: &str) -> DbResult<()> {
        if let Some(t) = self.expr(e, input)? {
            if t != DataType::Boolean {
                return Err(self.fail(format!("{what} has type {t}, expected BOOLEAN")));
            }
        }
        Ok(())
    }

    /// Re-types an expression bottom-up with the binder's rules. `None`
    /// means the type cannot be determined statically (NULL literal or
    /// unsubstituted subquery somewhere relevant) and matches anything.
    fn expr(&mut self, e: &Expr, input: &Schema) -> DbResult<Option<DataType>> {
        Ok(match e {
            Expr::Column(i) => match input.fields().get(*i) {
                Some(f) => Some(f.dtype),
                None => {
                    return Err(self.fail(format!(
                        "unbound column reference #{i} (input has {} columns)",
                        input.len()
                    )));
                }
            },
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { op, left, right } => {
                let lt = self.expr(left, input)?;
                let rt = self.expr(right, input)?;
                match op {
                    op if op.is_comparison() => Some(DataType::Boolean),
                    BinaryOp::And | BinaryOp::Or => Some(DataType::Boolean),
                    BinaryOp::Concat => Some(DataType::Varchar),
                    _ => match (lt, rt) {
                        (Some(l), Some(r)) => Some(if l.is_integer() && r.is_integer() {
                            DataType::Int64
                        } else {
                            DataType::Float64
                        }),
                        // One side unknown: only a non-integer known side
                        // pins the result (the "both integers" rule can no
                        // longer apply).
                        (Some(t), None) | (None, Some(t)) if !t.is_integer() => {
                            Some(DataType::Float64)
                        }
                        _ => None,
                    },
                }
            }
            Expr::Unary { op, expr } => {
                let t = self.expr(expr, input)?;
                match op {
                    UnaryOp::Not => Some(DataType::Boolean),
                    UnaryOp::Neg => {
                        t.map(|t| if t.is_float() { DataType::Float64 } else { DataType::Int64 })
                    }
                }
            }
            Expr::Cast { expr, to } => {
                self.expr(expr, input)?;
                Some(*to)
            }
            Expr::IsNull { expr, .. } => {
                self.expr(expr, input)?;
                Some(DataType::Boolean)
            }
            Expr::InList { expr, list, .. } => {
                self.expr(expr, input)?;
                for x in list {
                    self.expr(x, input)?;
                }
                Some(DataType::Boolean)
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr, input)?;
                self.expr(pattern, input)?;
                Some(DataType::Boolean)
            }
            Expr::Between { expr, low, high, .. } => {
                self.expr(expr, input)?;
                self.expr(low, input)?;
                self.expr(high, input)?;
                Some(DataType::Boolean)
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    self.expr(o, input)?;
                }
                let mut result: Option<DataType> = None;
                let mut unknown = false;
                let mut outputs = Vec::with_capacity(branches.len() + 1);
                for (when, then) in branches {
                    self.expr(when, input)?;
                    outputs.push(self.expr(then, input)?);
                }
                if let Some(e) = else_expr {
                    outputs.push(self.expr(e, input)?);
                }
                for t in outputs {
                    let Some(t) = t else {
                        unknown = true;
                        continue;
                    };
                    result = Some(match result {
                        None => t,
                        Some(prev) => DataType::common_numeric(prev, t).ok_or_else(|| {
                            self.fail(format!("CASE branches mix {prev} and {t}"))
                        })?,
                    });
                }
                if unknown {
                    None
                } else {
                    // No typed branch at all: the binder defaults to Int32.
                    Some(result.unwrap_or(DataType::Int32))
                }
            }
            Expr::ScalarFn { func, args } => {
                let (lo, hi) = func.arity();
                if args.len() < lo || args.len() > hi {
                    return Err(self.fail(format!(
                        "{func:?} expects {lo}{} argument(s), got {}",
                        if hi == usize::MAX {
                            "+".to_owned()
                        } else if hi > lo {
                            format!("..={hi}")
                        } else {
                            String::new()
                        },
                        args.len()
                    )));
                }
                let mut types = Vec::with_capacity(args.len());
                for a in args {
                    types.push(self.expr(a, input)?);
                }
                self.scalar_fn_type(*func, &types)?
            }
            Expr::Udf { name, args } => {
                let mut types = Vec::with_capacity(args.len());
                for a in args {
                    types.push(self.expr(a, input)?);
                }
                let Some(registry) = self.functions else {
                    return Ok(None);
                };
                let udf = registry
                    .scalar(name)
                    .map_err(|_| self.fail(format!("unknown scalar UDF '{name}'")))?;
                if self.in_constant_arg && udf.parallel_safe() {
                    return Err(self.fail(format!(
                        "parallel-safe UDF '{name}' used in a constant (non-splittable) \
                         table-function argument"
                    )));
                }
                match types.iter().copied().collect::<Option<Vec<DataType>>>() {
                    Some(known) => Some(udf.return_type(&known).map_err(|e| {
                        self.fail(format!("scalar UDF '{name}' rejects its bound arguments: {e}"))
                    })?),
                    None => None,
                }
            }
            Expr::Subquery(i) => match &self.subqueries {
                Subqueries::Known(types) => Some(*types.get(*i).ok_or_else(|| {
                    self.fail(format!("dangling scalar subquery ${i} ({} recorded)", types.len()))
                })?),
                Subqueries::Opaque => None,
            },
        })
    }

    /// Builtin return types, mirroring the binder's `infer_type` with
    /// unknown-propagation.
    fn scalar_fn_type(
        &self,
        func: BuiltinScalar,
        args: &[Option<DataType>],
    ) -> DbResult<Option<DataType>> {
        Ok(match func {
            BuiltinScalar::Abs | BuiltinScalar::Sign => {
                args[0].map(|t| if t.is_integer() { DataType::Int64 } else { DataType::Float64 })
            }
            BuiltinScalar::Floor
            | BuiltinScalar::Ceil
            | BuiltinScalar::Round
            | BuiltinScalar::Sqrt
            | BuiltinScalar::Exp
            | BuiltinScalar::Ln
            | BuiltinScalar::Log10
            | BuiltinScalar::Power => Some(DataType::Float64),
            BuiltinScalar::Length | BuiltinScalar::OctetLength => Some(DataType::Int64),
            BuiltinScalar::Lower
            | BuiltinScalar::Upper
            | BuiltinScalar::Trim
            | BuiltinScalar::Substr
            | BuiltinScalar::Concat => Some(DataType::Varchar),
            BuiltinScalar::Nullif => args[0],
            BuiltinScalar::Coalesce | BuiltinScalar::Least | BuiltinScalar::Greatest => {
                let mut result: Option<DataType> = None;
                for t in args {
                    let Some(t) = *t else { return Ok(None) };
                    result = Some(match result {
                        None => t,
                        Some(prev) => DataType::common_numeric(prev, t).ok_or_else(|| {
                            self.fail(format!("{func:?} arguments mix {prev} and {t}"))
                        })?,
                    });
                }
                result
            }
        })
    }
}

/// True when a `left = right` hash key pair compares correctly under the
/// row-key encoding (see `exec::rowkey`): identical types always do; any
/// two integer types and any two float types normalize to the same
/// encoding; and the single-key integer fast path additionally treats
/// BOOLEAN as an integer.
fn join_key_compatible(left: DataType, right: DataType, single_key: bool) -> bool {
    let int_like = |t: DataType| t.is_integer() || (single_key && t == DataType::Boolean);
    left == right || (int_like(left) && int_like(right)) || (left.is_float() && right.is_float())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::database::Database;
    use crate::schema::Field;
    use crate::sql::plan::PlanSortKey;
    use crate::udf::{ClosureScalarUdf, TableUdf};
    use crate::Batch;

    fn scan(types: &[DataType]) -> LogicalPlan {
        let fields =
            types.iter().enumerate().map(|(i, t)| Field::new(format!("c{i}"), *t)).collect();
        LogicalPlan::Scan { table: "t".into(), schema: Arc::new(Schema::new_unchecked(fields)) }
    }

    fn schema_of(types: &[DataType]) -> Arc<Schema> {
        Arc::new(Schema::new_unchecked(
            types.iter().enumerate().map(|(i, t)| Field::new(format!("o{i}"), *t)).collect(),
        ))
    }

    fn assert_invariant(result: DbResult<()>, needle: &str) {
        match result {
            Err(DbError::PlanInvariant { path, message }) => {
                assert!(
                    message.contains(needle),
                    "message {message:?} (at {path}) should contain {needle:?}"
                );
            }
            other => panic!("expected PlanInvariant containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn unbound_column_reference_rejected() {
        let registry = FunctionRegistry::new();
        let plan = LogicalPlan::Project {
            input: Box::new(scan(&[DataType::Int32, DataType::Int32])),
            exprs: vec![Expr::col(5)],
            schema: schema_of(&[DataType::Int32]),
        };
        assert_invariant(verify_plan(&plan, &registry), "unbound column reference #5");
    }

    #[test]
    fn udf_arity_mismatch_rejected() {
        let registry = FunctionRegistry::new();
        registry.register_scalar(Arc::new(
            ClosureScalarUdf::new("plus_one", DataType::Int64, |args| Ok(args[0].as_ref().clone()))
                .with_arity(1),
        ));
        let plan = LogicalPlan::Project {
            input: Box::new(scan(&[DataType::Int32, DataType::Int32])),
            exprs: vec![Expr::Udf {
                name: "plus_one".into(),
                args: vec![Expr::col(0), Expr::col(1)],
            }],
            schema: schema_of(&[DataType::Int64]),
        };
        assert_invariant(verify_plan(&plan, &registry), "plus_one");
    }

    #[test]
    fn type_incompatible_join_key_rejected() {
        let registry = FunctionRegistry::new();
        let join = |l: DataType, r: DataType| LogicalPlan::Join {
            left: Box::new(scan(&[l])),
            right: Box::new(scan(&[r])),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: schema_of(&[l, r]),
        };
        assert_invariant(
            verify_plan(&join(DataType::Int32, DataType::Varchar), &registry),
            "type-incompatible join key",
        );
        assert_invariant(
            verify_plan(&join(DataType::Int64, DataType::Float64), &registry),
            "type-incompatible join key",
        );
        // Width-only differences normalize in the row-key encoding.
        verify_plan(&join(DataType::Int32, DataType::Int64), &registry).unwrap();
        verify_plan(&join(DataType::Float32, DataType::Float64), &registry).unwrap();
    }

    #[test]
    fn incompatible_join_key_rejected_via_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y VARCHAR)").unwrap();
        let err = db.execute("SELECT * FROM a JOIN b ON a.x = b.y").unwrap_err();
        assert!(
            matches!(err, DbError::PlanInvariant { .. }),
            "expected PlanInvariant, got {err:?}"
        );
        // DOUBLE vs INTEGER keys never hash equal either.
        db.execute("CREATE TABLE c (z DOUBLE)").unwrap();
        let err = db.execute("SELECT * FROM a JOIN c ON a.x = c.z").unwrap_err();
        assert!(matches!(err, DbError::PlanInvariant { .. }), "{err:?}");
    }

    #[test]
    fn project_type_mismatch_rejected() {
        let registry = FunctionRegistry::new();
        let plan = LogicalPlan::Project {
            input: Box::new(scan(&[DataType::Int32])),
            // a + 1 computes Int64, but the schema claims Varchar.
            exprs: vec![Expr::binary(BinaryOp::Add, Expr::col(0), Expr::lit(1i64))],
            schema: schema_of(&[DataType::Varchar]),
        };
        assert_invariant(verify_plan(&plan, &registry), "declared VARCHAR");
    }

    #[test]
    fn aggregate_contract_checks() {
        let registry = FunctionRegistry::new();
        let sum_over_varchar = LogicalPlan::Aggregate {
            input: Box::new(scan(&[DataType::Varchar])),
            group: vec![],
            aggs: vec![PlanAgg { func: AggFunc::Sum, arg: Some(Expr::col(0)), distinct: false }],
            schema: schema_of(&[DataType::Int64]),
        };
        assert_invariant(verify_plan(&sum_over_varchar, &registry), "SUM over non-numeric");

        let wrong_width = LogicalPlan::Aggregate {
            input: Box::new(scan(&[DataType::Int32])),
            group: vec![Expr::col(0)],
            aggs: vec![],
            schema: schema_of(&[DataType::Int32, DataType::Int64]),
        };
        assert_invariant(verify_plan(&wrong_width, &registry), "output columns");
    }

    #[test]
    fn sort_key_out_of_range_rejected() {
        let registry = FunctionRegistry::new();
        let plan = LogicalPlan::Sort {
            input: Box::new(scan(&[DataType::Int32])),
            keys: vec![PlanSortKey { column: 3, ascending: true, nulls_first: false }],
        };
        assert_invariant(verify_plan(&plan, &registry), "sort key column #3");
    }

    #[test]
    fn union_shape_checks() {
        let registry = FunctionRegistry::new();
        let width_mismatch = LogicalPlan::UnionAll {
            inputs: vec![scan(&[DataType::Int32, DataType::Int32]), scan(&[DataType::Int32])],
            schema: schema_of(&[DataType::Int32, DataType::Int32]),
        };
        assert_invariant(verify_plan(&width_mismatch, &registry), "branch 1");

        let type_mismatch = LogicalPlan::UnionAll {
            inputs: vec![scan(&[DataType::Varchar]), scan(&[DataType::Int32])],
            schema: schema_of(&[DataType::Varchar]),
        };
        assert_invariant(verify_plan(&type_mismatch, &registry), "incompatible");
    }

    #[test]
    fn error_reports_operator_path() {
        let registry = FunctionRegistry::new();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(&[DataType::Int32])),
                predicate: Expr::binary(BinaryOp::Eq, Expr::col(9), Expr::lit(1i32)),
            }),
            limit: Some(1),
            offset: 0,
        };
        match verify_plan(&plan, &registry) {
            Err(DbError::PlanInvariant { path, .. }) => {
                assert_eq!(path, "Limit > Filter");
            }
            other => panic!("{other:?}"),
        }
    }

    struct UnitTableUdf;
    impl TableUdf for UnitTableUdf {
        fn name(&self) -> &str {
            "unit_rows"
        }
        fn schema(&self, _args: &[DataType]) -> DbResult<Arc<Schema>> {
            Ok(Arc::new(Schema::new_unchecked(vec![Field::new("n", DataType::Int64)])))
        }
        fn invoke(&self, _args: &[Arc<Column>]) -> DbResult<Batch> {
            Batch::from_columns(vec![("n", Column::from_i64s(vec![1]))])
        }
    }

    #[test]
    fn parallel_safe_udf_rejected_in_constant_argument() {
        let registry = FunctionRegistry::new();
        registry.register_table(Arc::new(UnitTableUdf));
        registry.register_scalar(Arc::new(
            ClosureScalarUdf::new("rowwise", DataType::Int64, |args| Ok(args[0].as_ref().clone()))
                .parallel(),
        ));
        let plan = LogicalPlan::TableFunction {
            name: "unit_rows".into(),
            args: vec![BoundTableArg::Scalar(Expr::Udf {
                name: "rowwise".into(),
                args: vec![Expr::lit(1i64)],
            })],
            schema: schema_of(&[DataType::Int64]),
        };
        assert_invariant(verify_plan(&plan, &registry), "parallel-safe UDF 'rowwise'");
    }

    #[test]
    fn table_function_schema_mismatch_rejected() {
        let registry = FunctionRegistry::new();
        registry.register_table(Arc::new(UnitTableUdf));
        let plan = LogicalPlan::TableFunction {
            name: "unit_rows".into(),
            args: vec![],
            schema: schema_of(&[DataType::Varchar]),
        };
        assert_invariant(verify_plan(&plan, &registry), "declares VARCHAR");
        let missing = LogicalPlan::TableFunction {
            name: "nope".into(),
            args: vec![],
            schema: schema_of(&[DataType::Int64]),
        };
        assert_invariant(verify_plan(&missing, &registry), "unknown table function");
    }

    #[test]
    fn statement_verification_types_subqueries() {
        let registry = FunctionRegistry::new();
        // SELECT c0 FROM t WHERE c0 > $0 with $0 : AVG(c0) :: Float64.
        let sub = LogicalPlan::Aggregate {
            input: Box::new(scan(&[DataType::Int32])),
            group: vec![],
            aggs: vec![PlanAgg { func: AggFunc::Avg, arg: Some(Expr::col(0)), distinct: false }],
            schema: schema_of(&[DataType::Float64]),
        };
        let stmt = BoundStatement::Query {
            plan: LogicalPlan::Filter {
                input: Box::new(scan(&[DataType::Int32])),
                predicate: Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::Subquery(0)),
            },
            scalar_subs: vec![sub],
        };
        verify_statement(&stmt, &registry).unwrap();

        let dangling = BoundStatement::Query {
            plan: LogicalPlan::Filter {
                input: Box::new(scan(&[DataType::Int32])),
                predicate: Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::Subquery(7)),
            },
            scalar_subs: vec![],
        };
        assert_invariant(verify_statement(&dangling, &registry), "dangling scalar subquery");
    }

    #[test]
    fn legitimate_sql_passes_verification() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x', 0.5), (2, 'y', 1.5)").unwrap();
        for sql in [
            "SELECT a, UPPER(b), c * 2 FROM t WHERE a > 0 ORDER BY a DESC LIMIT 1",
            "SELECT b, COUNT(*), SUM(a), AVG(c) FROM t GROUP BY b HAVING COUNT(*) > 0",
            "SELECT t1.a, t2.b FROM t t1 JOIN t t2 ON t1.a = t2.a",
            "SELECT DISTINCT b FROM t UNION ALL SELECT 'z'",
            "SELECT a FROM t WHERE c > (SELECT AVG(c) FROM t)",
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
        ] {
            db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn display_formats_plan_invariant() {
        let e = DbError::plan_invariant("Project > Scan(t)", "boom");
        assert_eq!(e.to_string(), "plan invariant violated at Project > Scan(t): boom");
        let v = Verifier::new(None, Subqueries::Opaque);
        assert!(matches!(v.fail("x"), DbError::PlanInvariant { path, .. } if path == "<root>"));
    }
}
