//! [`Batch`]: the execution currency — a schema plus equal-length columns.
//!
//! Every operator consumes and produces batches. Columns are `Arc`-shared,
//! so projections and pass-through operators are zero-copy: they clone the
//! `Arc`, not the data.

use crate::column::{Column, ColumnBuilder};
use crate::error::{DbError, DbResult};
use crate::schema::{Field, Schema};
use crate::types::Value;
use std::sync::Arc;

/// A set of equal-length columns with a schema. Immutable once built.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl Batch {
    /// Builds a batch, validating column count, types, and lengths.
    pub fn new(schema: Arc<Schema>, columns: Vec<Arc<Column>>) -> DbResult<Batch> {
        if schema.len() != columns.len() {
            return Err(DbError::Shape(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.data_type() != f.dtype {
                return Err(DbError::Type(format!(
                    "column '{}' declared {} but holds {}",
                    f.name,
                    f.dtype,
                    c.data_type()
                )));
            }
            if c.len() != rows {
                return Err(DbError::Shape(format!(
                    "column '{}' has {} rows, expected {}",
                    f.name,
                    c.len(),
                    rows
                )));
            }
        }
        Ok(Batch { schema, columns, rows })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema.fields().iter().map(|f| Arc::new(Column::empty(f.dtype))).collect();
        let rows = 0;
        Batch { schema, columns, rows }
    }

    /// Builds a batch from `(name, column)` pairs, inferring the schema
    /// from the columns (all nullable). Convenient in tests and UDFs.
    pub fn from_columns(pairs: Vec<(&str, Column)>) -> DbResult<Batch> {
        let fields = pairs.iter().map(|(n, c)| Field::new(*n, c.data_type())).collect::<Vec<_>>();
        let schema = Arc::new(Schema::new(fields)?);
        let columns = pairs.into_iter().map(|(_, c)| Arc::new(c)).collect();
        Batch::new(schema, columns)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// True when the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Column by name (case-insensitive).
    pub fn column_by_name(&self, name: &str) -> DbResult<&Arc<Column>> {
        let (i, _) = self.schema.field_by_name(name)?;
        Ok(&self.columns[i])
    }

    /// Extracts row `i` as scalar values (slow path).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Gathers rows by index into a new batch.
    pub fn take(&self, indices: &[u32]) -> Batch {
        let columns = self.columns.iter().map(|c| Arc::new(c.take(indices))).collect();
        Batch { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// Copies rows `offset..offset+len` into a new batch.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        let columns = self.columns.iter().map(|c| Arc::new(c.slice(offset, len))).collect();
        Batch { schema: self.schema.clone(), columns, rows: len }
    }

    /// Zero-copy projection: keeps columns at `indices`, renaming per the
    /// projected schema.
    pub fn project(&self, indices: &[usize]) -> DbResult<Batch> {
        let fields = indices.iter().map(|&i| self.schema.field(i).clone()).collect();
        let schema = Arc::new(Schema::new_unchecked(fields));
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Batch::new(schema, columns)
    }

    /// Concatenates batches with identical schemas (column names/types).
    pub fn concat(batches: &[Batch]) -> DbResult<Batch> {
        let first = batches.first().ok_or_else(|| DbError::internal("concat of zero batches"))?;
        let schema = first.schema.clone();
        let mut builders: Vec<Column> = first.columns.iter().map(|c| c.as_ref().clone()).collect();
        for b in &batches[1..] {
            if b.schema.len() != schema.len() {
                return Err(DbError::Shape("concat: schema width mismatch".into()));
            }
            for (dst, src) in builders.iter_mut().zip(&b.columns) {
                dst.extend(src)?;
            }
        }
        let rows = builders.first().map_or(0, |c| c.len());
        Ok(Batch { schema, columns: builders.into_iter().map(Arc::new).collect(), rows })
    }

    /// Builds a batch row-by-row from scalar values, casting to the schema.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> DbResult<Batch> {
        let mut builders: Vec<ColumnBuilder> =
            schema.fields().iter().map(|f| ColumnBuilder::new(f.dtype)).collect();
        for (ri, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(DbError::Shape(format!(
                    "row {ri} has {} values, expected {}",
                    row.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push_value(v)?;
            }
        }
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Batch::new(schema, columns)
    }

    /// Renders the batch as an aligned text table (for shells and tests).
    pub fn pretty(&self) -> String {
        let names: Vec<String> = self.schema.fields().iter().map(|f| f.name.clone()).collect();
        let mut widths: Vec<usize> = names.iter().map(String::len).collect();
        let limit = self.rows.min(40);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(limit);
        for r in 0..limit {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| {
                    let v = c.value(r);
                    if v.is_null() {
                        "NULL".to_owned()
                    } else {
                        let s = v.render();
                        if s.len() > 32 {
                            format!("{}…", &s[..31])
                        } else {
                            s
                        }
                    }
                })
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        if self.rows > limit {
            out.push_str(&format!("({} rows, {} shown)\n", self.rows, limit));
        } else {
            out.push_str(&format!("({} rows)\n", self.rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample() -> Batch {
        Batch::from_columns(vec![
            ("id", Column::from_i32s(vec![1, 2, 3])),
            ("name", Column::from_strings(["a", "b", "c"])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int32)]).unwrap());
        // Wrong type.
        let err = Batch::new(schema.clone(), vec![Arc::new(Column::from_f64s(vec![1.0]))]);
        assert!(err.is_err());
        // Wrong width.
        let err = Batch::new(schema.clone(), vec![]);
        assert!(err.is_err());
        // Length mismatch across columns.
        let schema2 = Arc::new(
            Schema::new(vec![Field::new("x", DataType::Int32), Field::new("y", DataType::Int32)])
                .unwrap(),
        );
        let err = Batch::new(
            schema2,
            vec![Arc::new(Column::from_i32s(vec![1])), Arc::new(Column::from_i32s(vec![1, 2]))],
        );
        assert!(err.is_err());
    }

    #[test]
    fn row_extraction() {
        let b = sample();
        assert_eq!(b.row(1), vec![Value::Int32(2), Value::Varchar("b".into())]);
    }

    #[test]
    fn take_slice_project() {
        let b = sample();
        let t = b.take(&[2, 0]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(0), vec![Value::Int32(3), Value::Varchar("c".into())]);
        let s = b.slice(1, 1);
        assert_eq!(s.row(0)[0], Value::Int32(2));
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.width(), 1);
        assert_eq!(p.schema().field(0).name, "name");
    }

    #[test]
    fn projection_is_zero_copy() {
        let b = sample();
        let p = b.project(&[0]).unwrap();
        assert!(Arc::ptr_eq(b.column(0), p.column(0)));
    }

    #[test]
    fn concat_batches() {
        let b = sample();
        let all = Batch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(all.rows(), 6);
        assert_eq!(all.row(5)[1], Value::Varchar("c".into()));
        assert!(Batch::concat(&[]).is_err());
    }

    #[test]
    fn from_rows_casts() {
        let schema = Arc::new(
            Schema::new(vec![Field::new("a", DataType::Int64), Field::new("b", DataType::Varchar)])
                .unwrap(),
        );
        let b = Batch::from_rows(
            schema.clone(),
            &[
                vec![Value::Int32(1), Value::Varchar("x".into())],
                vec![Value::Null, Value::Int32(9)],
            ],
        )
        .unwrap();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0)[0], Value::Int64(1));
        assert_eq!(b.row(1)[1], Value::Varchar("9".into()));
        // Arity mismatch rejected.
        let err = Batch::from_rows(schema, &[vec![Value::Int32(1)]]);
        assert!(err.is_err());
    }

    #[test]
    fn pretty_prints() {
        let b = sample();
        let s = b.pretty();
        assert!(s.contains("id"));
        assert!(s.contains("(3 rows)"));
    }

    #[test]
    fn column_by_name_case_insensitive() {
        let b = sample();
        assert_eq!(b.column_by_name("NAME").unwrap().len(), 3);
        assert!(b.column_by_name("zzz").is_err());
    }
}
