//! Mutable, named tables: append-oriented columnar storage.
//!
//! A [`Table`] owns one contiguous [`Column`] per field — the MonetDB model,
//! where each column is a single BAT. Scans hand the executor an immutable
//! [`Batch`] snapshot; appends use copy-on-write (`Arc::make_mut`), so open
//! snapshots are never invalidated by concurrent loads.

use crate::batch::Batch;
use crate::column::{Column, ColumnBuilder, Encoding};
use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::types::Value;
use std::sync::Arc;

/// A named table with appendable columnar storage.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    rows: usize,
    /// Row count at the last auto-encoding sweep. Appends re-run the sweep
    /// only once the table has doubled since, so the O(n) encode/decode
    /// work is amortized over growth instead of paid per insert.
    encoded_at_rows: usize,
    /// Live per-column statistics, maintained on every mutation path:
    /// appends merge exact per-batch stats, the encoding sweep (and any
    /// delete/update) recomputes from scratch. See [`crate::stats`].
    stats: TableStats,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Table {
        let columns: Vec<Arc<Column>> =
            schema.fields().iter().map(|f| Arc::new(Column::empty(f.dtype))).collect();
        let stats = TableStats::compute(&columns, 0);
        Table { name: name.into(), schema, columns, rows: 0, encoded_at_rows: 0, stats }
    }

    /// Wraps an existing batch as a table (used by `CREATE TABLE AS` and
    /// the persistence loader). Columns are auto-encoded immediately: bulk
    /// arrival is the cheapest moment to scan for low NDV / long runs.
    pub fn from_batch(name: impl Into<String>, batch: Batch) -> Table {
        let rows = batch.rows();
        let mut t = Table {
            name: name.into(),
            schema: batch.schema().clone(),
            columns: batch.columns().to_vec(),
            rows,
            encoded_at_rows: 0,
            stats: TableStats::default(),
        };
        t.auto_encode();
        t
    }

    /// Re-runs the per-column encoding heuristic and records the row count
    /// so the next sweep waits for the table to double.
    fn auto_encode(&mut self) {
        for col in &mut self.columns {
            if col.is_plain() {
                let e = col.encode_auto();
                if !e.is_plain() {
                    *col = Arc::new(e);
                }
            }
        }
        self.encoded_at_rows = self.rows;
        self.recompute_stats();
    }

    /// Recomputes [`TableStats`] with one sweep per column and ticks
    /// `sql.stats.built`. Appends between sweeps keep stats exact by
    /// merging per-batch stats instead (see [`Self::append_batch`]).
    fn recompute_stats(&mut self) {
        self.stats = TableStats::compute(&self.columns, self.rows);
        crate::metrics::counter("sql.stats.built").incr();
    }

    /// Live statistics for the current contents (see [`crate::stats`]
    /// for the exactness contract).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Forces a specific encoding on column `col_idx`, bypassing the
    /// heuristic (e.g. dictionary-encode a key column the planner knows is
    /// low-cardinality). Later appends may re-encode as the table grows.
    pub fn set_column_encoding(&mut self, col_idx: usize, enc: Encoding) -> DbResult<()> {
        if col_idx >= self.columns.len() {
            return Err(DbError::internal(format!(
                "set_column_encoding: column {col_idx} out of range"
            )));
        }
        let encoded = self.columns[col_idx].encode(enc);
        encoded.check_encoding()?;
        self.columns[col_idx] = Arc::new(encoded);
        self.recompute_stats();
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// An immutable snapshot of the current contents. Zero-copy: the batch
    /// shares the table's column `Arc`s.
    pub fn scan(&self) -> Batch {
        Batch::new(self.schema.clone(), self.columns.clone())
            .expect("table invariants guarantee a valid batch")
    }

    /// Appends all rows of `batch`, whose columns must match the table's
    /// types positionally. NOT NULL constraints are enforced.
    pub fn append_batch(&mut self, batch: &Batch) -> DbResult<()> {
        if batch.width() != self.schema.len() {
            return Err(DbError::Shape(format!(
                "table '{}' has {} columns, insert provides {}",
                self.name,
                self.schema.len(),
                batch.width()
            )));
        }
        // First pass: cast to declared types and validate NOT NULL, so a
        // failing insert never partially applies.
        let mut prepared: Vec<Arc<Column>> = Vec::with_capacity(batch.width());
        for (f, c) in self.schema.fields().iter().zip(batch.columns()) {
            let col = if c.data_type() == f.dtype { c.clone() } else { Arc::new(c.cast(f.dtype)?) };
            if !f.nullable && col.null_count() > 0 {
                return Err(DbError::Bind(format!(
                    "NULL value in NOT NULL column '{}' of table '{}'",
                    f.name, self.name
                )));
            }
            prepared.push(col);
        }
        for (dst, src) in self.columns.iter_mut().zip(&prepared) {
            Arc::make_mut(dst).extend(src)?;
        }
        self.rows += batch.rows();
        // `extend` decodes encoded destinations; re-encode once the table
        // has doubled since the last sweep (always on the first append).
        if self.rows >= self.encoded_at_rows.saturating_mul(2) {
            self.auto_encode();
        } else {
            // Between sweeps, fold exact per-batch stats in O(batch).
            self.stats.merge_append(&TableStats::compute(&prepared, batch.rows()));
        }
        Ok(())
    }

    /// Appends scalar rows (the `INSERT INTO ... VALUES` path).
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> DbResult<()> {
        let batch = Batch::from_rows(self.schema.clone(), rows)?;
        self.append_batch(&batch)
    }

    /// Keeps only the rows at `indices` (used by `DELETE`: the executor
    /// computes the surviving rows and rebuilds).
    pub fn retain_indices(&mut self, indices: &[u32]) {
        for col in &mut self.columns {
            let taken = col.take(indices);
            *col = Arc::new(taken);
        }
        self.rows = indices.len();
        self.recompute_stats();
    }

    /// Replaces the full contents of column `col_idx` (used by `UPDATE`).
    /// The new column must match the declared type and row count.
    pub fn replace_column(&mut self, col_idx: usize, column: Column) -> DbResult<()> {
        let f = self.schema.field(col_idx);
        if column.data_type() != f.dtype {
            return Err(DbError::Type(format!(
                "UPDATE would change column '{}' from {} to {}",
                f.name,
                f.dtype,
                column.data_type()
            )));
        }
        if column.len() != self.rows {
            return Err(DbError::Shape(format!(
                "replacement column has {} rows, table has {}",
                column.len(),
                self.rows
            )));
        }
        if !f.nullable && column.null_count() > 0 {
            return Err(DbError::Bind(format!(
                "NULL value in NOT NULL column '{}' of table '{}'",
                f.name, self.name
            )));
        }
        self.columns[col_idx] = Arc::new(column);
        self.recompute_stats();
        Ok(())
    }

    /// Builder for bulk-loading a table column-by-column with a known
    /// row count; used by the CSV / binary-file loaders.
    pub fn loader(&mut self) -> TableLoader<'_> {
        TableLoader {
            builders: self.schema.fields().iter().map(|f| ColumnBuilder::new(f.dtype)).collect(),
            table: self,
        }
    }
}

/// Row-streaming bulk loader for a table.
pub struct TableLoader<'a> {
    table: &'a mut Table,
    builders: Vec<ColumnBuilder>,
}

impl TableLoader<'_> {
    /// Appends one row of values (must match the schema arity).
    pub fn push_row(&mut self, row: &[Value]) -> DbResult<()> {
        if row.len() != self.builders.len() {
            return Err(DbError::Shape(format!(
                "row has {} values, expected {}",
                row.len(),
                self.builders.len()
            )));
        }
        for (b, v) in self.builders.iter_mut().zip(row) {
            b.push_value(v)?;
        }
        Ok(())
    }

    /// Finalizes the load, appending everything to the table at once.
    pub fn finish(self) -> DbResult<usize> {
        let columns: Vec<Arc<Column>> =
            self.builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        let schema = self.table.schema.clone();
        let batch = Batch::new(schema, columns)?;
        let n = batch.rows();
        self.table.append_batch(&batch)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::not_null("id", DataType::Int32),
                Field::new("score", DataType::Float64),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn append_and_scan() {
        let mut t = Table::new("t", schema());
        t.append_rows(&[
            vec![Value::Int32(1), Value::Float64(0.5)],
            vec![Value::Int32(2), Value::Null],
        ])
        .unwrap();
        assert_eq!(t.rows(), 2);
        let b = t.scan();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0), vec![Value::Int32(1), Value::Float64(0.5)]);
        assert!(b.row(1)[1].is_null());
    }

    #[test]
    fn not_null_enforced() {
        let mut t = Table::new("t", schema());
        let err = t.append_rows(&[vec![Value::Null, Value::Float64(1.0)]]);
        assert!(matches!(err, Err(DbError::Bind(_))));
        assert_eq!(t.rows(), 0, "failed insert must not partially apply");
    }

    #[test]
    fn snapshot_isolated_from_appends() {
        let mut t = Table::new("t", schema());
        t.append_rows(&[vec![Value::Int32(1), Value::Null]]).unwrap();
        let snap = t.scan();
        t.append_rows(&[vec![Value::Int32(2), Value::Null]]).unwrap();
        assert_eq!(snap.rows(), 1, "old snapshot must not see the new row");
        assert_eq!(t.scan().rows(), 2);
    }

    #[test]
    fn insert_casts_to_declared_types() {
        let mut t = Table::new("t", schema());
        t.append_rows(&[vec![Value::Int64(7), Value::Int32(3)]]).unwrap();
        let b = t.scan();
        assert_eq!(b.row(0), vec![Value::Int32(7), Value::Float64(3.0)]);
    }

    #[test]
    fn retain_indices_deletes() {
        let mut t = Table::new("t", schema());
        for i in 0..5 {
            t.append_rows(&[vec![Value::Int32(i), Value::Null]]).unwrap();
        }
        t.retain_indices(&[0, 2, 4]);
        assert_eq!(t.rows(), 3);
        let b = t.scan();
        assert_eq!(b.row(1)[0], Value::Int32(2));
    }

    #[test]
    fn replace_column_updates() {
        let mut t = Table::new("t", schema());
        t.append_rows(&[vec![Value::Int32(1), Value::Float64(0.0)]]).unwrap();
        t.replace_column(1, Column::from_f64s(vec![9.0])).unwrap();
        assert_eq!(t.scan().row(0)[1], Value::Float64(9.0));
        // Wrong length rejected.
        assert!(t.replace_column(1, Column::from_f64s(vec![1.0, 2.0])).is_err());
        // Wrong type rejected.
        assert!(t.replace_column(1, Column::from_i32s(vec![1])).is_err());
        // NOT NULL violation rejected.
        assert!(t.replace_column(0, Column::from_opt_i32s(vec![None])).is_err());
    }

    #[test]
    fn loader_bulk_loads() {
        let mut t = Table::new("t", schema());
        let mut l = t.loader();
        for i in 0..100 {
            l.push_row(&[Value::Int32(i), Value::Float64(i as f64)]).unwrap();
        }
        assert_eq!(l.finish().unwrap(), 100);
        assert_eq!(t.rows(), 100);
    }
}
