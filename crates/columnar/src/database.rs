//! The [`Database`] facade: catalog + function registry + SQL entry point.

use crate::batch::Batch;
use crate::catalog::Catalog;
use crate::column::{Column, ColumnBuilder};
use crate::error::{DbError, DbResult};
use crate::expr::{eval, eval_predicate, EvalContext};
use crate::schema::{Field, Schema};
use crate::sql::binder::bind;
use crate::sql::estimate;
use crate::sql::execute::{
    evaluate_scalar_subqueries, execute_plan_traced, execute_plan_with, substitute_in_plan,
    ExecOptions, PlanTrace, DEFAULT_PARALLEL_THRESHOLD,
};
use crate::sql::optimizer::{explain_annotation, optimize_with_stats};
use crate::sql::parser::{parse, parse_many};
use crate::sql::plan::{BoundStatement, LogicalPlan};
use crate::sql::plan_cache::{CacheStamp, CachedQuery, PlanCache};
use crate::table::Table;
use crate::types::{DataType, Value};
use crate::udf::{FunctionRegistry, ScalarUdf, TableUdf};
use crate::wal::{self, Wal, WalOp};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What kind of statement produced a [`QueryResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementKind {
    /// A query with a result set.
    Query,
    /// Data definition (CREATE/DROP).
    Ddl,
    /// Data manipulation (INSERT/DELETE/UPDATE).
    Dml,
}

/// The outcome of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    batch: Batch,
    rows_affected: usize,
    elapsed: Duration,
    kind: StatementKind,
}

impl QueryResult {
    /// The result rows (empty batch for DDL/DML).
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Consumes the result, returning the batch.
    pub fn into_batch(self) -> Batch {
        self.batch
    }

    /// Rows inserted/deleted/updated by a DML statement.
    pub fn rows_affected(&self) -> usize {
        self.rows_affected
    }

    /// Wall-clock execution time (parse + bind + execute).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The statement kind.
    pub fn kind(&self) -> StatementKind {
        self.kind
    }
}

/// The durable half of an opened-on-disk database: the write-ahead log,
/// the directory it lives in, and the commit fence.
///
/// The fence is what makes checkpoints consistent: every durable mutation
/// holds it shared across "apply in memory + append to log" (DDL takes it
/// exclusive, serializing catalog changes against each other), and
/// [`Database::checkpoint`] takes it exclusive, so the snapshot it cuts is
/// at a statement boundary and the checkpoint LSN cleanly partitions
/// folded-in from to-be-replayed records.
struct Durability {
    wal: Wal,
    dir: PathBuf,
    fence: parking_lot::RwLock<()>,
    /// Set when a commit's WAL append failed *after* the statement was
    /// applied in memory: the in-memory tables and the log now disagree,
    /// so physical redo records computed against memory (DELETE's
    /// keep-indices, UPDATE's replacement columns) would replay against
    /// the wrong row positions. Until the database is reopened (which
    /// rebuilds memory from the log), every further durable mutation and
    /// checkpoint is refused; reads still work.
    poisoned: AtomicBool,
}

impl Durability {
    /// Refuses poisoned handles with a typed error.
    fn ensure_usable(&self) -> DbResult<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(DbError::Io(
                "a durable commit failed after applying in memory; the write-ahead \
                 log no longer matches the in-memory tables — reopen the database \
                 (Database::open_durable) to recover to the last acknowledged state"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Appends one statement's record, poisoning the handle on failure:
    /// the caller has already applied the statement in memory, so a
    /// failed append means memory and log have diverged and further
    /// physical redo records can no longer be trusted.
    fn log(&self, ops: &[WalOp]) -> DbResult<u64> {
        self.wal.append(ops).inspect_err(|_| {
            self.poisoned.store(true, Ordering::Relaxed);
        })
    }
}

/// An embedded analytical database: in-memory column store, SQL, and
/// vectorized UDFs.
///
/// `Database` is cheap to clone (`Arc` internals) and safe to share across
/// threads; the catalog and registry use interior locking.
#[derive(Clone)]
pub struct Database {
    catalog: Arc<Catalog>,
    functions: Arc<FunctionRegistry>,
    /// Worker count for parallel operators; `0` = hardware threads (or the
    /// `MLCS_THREADS` env override). Shared across clones.
    threads: Arc<AtomicUsize>,
    /// Minimum operator input rows before the parallel path engages;
    /// `0` = [`DEFAULT_PARALLEL_THRESHOLD`]. Shared across clones.
    parallel_threshold: Arc<AtomicUsize>,
    /// Optimized plans keyed on SQL text; repeat statements skip
    /// parse→bind→optimize. Invalidated by catalog / registry generation
    /// stamps. Shared across clones.
    plan_cache: Arc<PlanCache>,
    /// Whether cost-based optimization on live column statistics is
    /// active. Defaults to on unless `MLCS_DISABLE_STATS` is set; the
    /// env kill-switch always wins over [`Self::set_stats_enabled`].
    /// Shared across clones.
    stats_enabled: Arc<AtomicBool>,
    /// `Some` once [`Self::open_durable`] attached a write-ahead log:
    /// every mutation is then logged and fsynced before acknowledging.
    /// Shared across clones.
    durability: Arc<parking_lot::RwLock<Option<Arc<Durability>>>>,
}

impl Default for Database {
    fn default() -> Database {
        Database {
            catalog: Arc::default(),
            functions: Arc::default(),
            threads: Arc::default(),
            parallel_threshold: Arc::default(),
            plan_cache: Arc::default(),
            stats_enabled: Arc::new(AtomicBool::new(crate::stats::env_enabled())),
            durability: Arc::default(),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Opens a durable database rooted at `dir` (created if missing).
    ///
    /// Existing state is recovered first — the checkpointed page base is
    /// loaded, then the write-ahead log is replayed past the checkpoint
    /// watermark, with any torn tail truncated — and the returned
    /// [`crate::persist::RecoveryReport`] says exactly what happened. From then on every
    /// mutation (INSERT/DELETE/UPDATE/CREATE/DROP) is appended to the log
    /// and fsynced *before* the statement is acknowledged, so anything
    /// this database confirmed survives a crash; `CHECKPOINT` (or
    /// [`Self::checkpoint`]) folds the log into checksummed pages.
    pub fn open_durable(dir: &Path) -> DbResult<(Database, crate::persist::RecoveryReport)> {
        let db = Database::new();
        std::fs::create_dir_all(dir)?;
        let has_state = dir.join("catalog.mlcsdb").exists() || dir.join(wal::WAL_FILE).exists();
        let report = if has_state {
            crate::persist::load_database_with(&db, dir, crate::persist::RecoveryMode::Recover)?
        } else {
            crate::persist::RecoveryReport::default()
        };
        // Recovery above truncated any damaged tail, so the log opens
        // clean and the writer resumes after the last intact record.
        let wal = Wal::open(dir)?;
        *db.durability.write() = Some(Arc::new(Durability {
            wal,
            dir: dir.to_path_buf(),
            fence: parking_lot::RwLock::new(()),
            poisoned: AtomicBool::new(false),
        }));
        Ok((db, report))
    }

    /// Whether this database was opened with [`Self::open_durable`].
    pub fn is_durable(&self) -> bool {
        self.durability.read().is_some()
    }

    /// The current durability handle, if any.
    fn durable(&self) -> Option<Arc<Durability>> {
        self.durability.read().clone()
    }

    /// Folds the write-ahead log into the checksummed page base and
    /// truncates it (SQL: `CHECKPOINT`). Commits are fenced for the
    /// duration, so the snapshot is cut at a statement boundary. Errors
    /// with [`DbError::Unsupported`] on a non-durable database.
    pub fn checkpoint(&self) -> DbResult<()> {
        let d = self.durable().ok_or_else(|| {
            DbError::Unsupported(
                "CHECKPOINT requires a durable database (Database::open_durable)".into(),
            )
        })?;
        let _fence = d.fence.write();
        // A poisoned handle must not checkpoint: folding the divergent
        // in-memory tables into the page base would durably commit a
        // statement the client was told failed.
        d.ensure_usable()?;
        wal::checkpoint(self, &d.dir, &d.wal)
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The UDF registry.
    pub fn functions(&self) -> &Arc<FunctionRegistry> {
        &self.functions
    }

    /// The prepared-statement / plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The current invalidation stamp: catalog + registry generations.
    fn cache_stamp(&self) -> CacheStamp {
        (self.catalog.generation(), self.functions.generation())
    }

    /// Sets the worker count for parallel query execution. `0` restores
    /// the default (hardware threads, or the `MLCS_THREADS` override);
    /// `1` forces serial execution.
    pub fn set_threads(&self, n: usize) {
        self.threads.store(n, Ordering::Relaxed);
    }

    /// The configured worker count (`0` = hardware default).
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Sets the minimum operator input rows before the parallel path
    /// engages. `0` restores [`DEFAULT_PARALLEL_THRESHOLD`].
    pub fn set_parallel_threshold(&self, rows: usize) {
        self.parallel_threshold.store(rows, Ordering::Relaxed);
    }

    /// Enables or disables cost-based optimization on live column
    /// statistics (build-side selection, join reordering, conjunct
    /// ordering, stats-answered aggregates). The `MLCS_DISABLE_STATS`
    /// environment kill-switch overrides this toggle.
    pub fn set_stats_enabled(&self, on: bool) {
        self.stats_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether cost-based optimization is active (toggle AND env switch).
    pub fn stats_enabled(&self) -> bool {
        self.stats_enabled.load(Ordering::Relaxed) && crate::stats::env_enabled()
    }

    /// Whether any recorded table row count has drifted far enough —
    /// 2× growth, 2× shrink, or first rows into a table optimized empty —
    /// that a cost-based plan choice (join order, build side) made at
    /// those counts should be revisited. Missing tables do not count as
    /// drift: the generation stamp already invalidates on DDL.
    fn stats_drifted(&self, recorded: &[(String, u64)]) -> bool {
        recorded.iter().any(|(name, rows0)| {
            let Ok(handle) = self.catalog.table(name) else {
                return false;
            };
            let cur = handle.read().rows() as u64;
            if *rows0 == 0 {
                cur > 0
            } else {
                cur >= rows0.saturating_mul(2) || cur <= *rows0 / 2
            }
        })
    }

    /// Current row counts of the tables a plan scans, recorded into the
    /// plan cache so later lookups can detect drift.
    fn recorded_rows(&self, plan: &LogicalPlan) -> Vec<(String, u64)> {
        let mut names = Vec::new();
        estimate::scan_tables(plan, &mut names);
        names.sort();
        names.dedup();
        names
            .into_iter()
            .filter_map(|n| {
                let rows = self.catalog.table(&n).ok().map(|t| t.read().rows() as u64)?;
                Some((n, rows))
            })
            .collect()
    }

    /// The execution options derived from this database's settings.
    fn exec_options(&self) -> ExecOptions {
        let threshold = match self.parallel_threshold.load(Ordering::Relaxed) {
            0 => DEFAULT_PARALLEL_THRESHOLD,
            n => n,
        };
        ExecOptions {
            threads: self.threads.load(Ordering::Relaxed),
            parallel_threshold: threshold,
            ..ExecOptions::default()
        }
    }

    /// Registers a vectorized scalar UDF (usable in any expression).
    pub fn register_scalar_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.functions.register_scalar(udf);
    }

    /// Registers a table-valued UDF (usable in `FROM`).
    pub fn register_table_udf(&self, udf: Arc<dyn TableUdf>) {
        self.functions.register_table(udf);
    }

    /// Parses, binds, and executes a single SQL statement.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        self.execute_with(sql, &self.exec_options())
    }

    /// [`Self::execute`] with a wall-clock deadline: the statement aborts
    /// with [`DbError::Timeout`] (naming the operator that observed the
    /// expiry) once `timeout` has elapsed. Checked at operator and morsel
    /// boundaries, so cancellation happens within one morsel of the
    /// deadline.
    pub fn execute_with_timeout(&self, sql: &str, timeout: Duration) -> DbResult<QueryResult> {
        self.execute_with(sql, &self.exec_options().with_timeout(timeout))
    }

    /// [`Self::execute`] with explicit execution options (parallelism and
    /// deadline).
    pub fn execute_with(&self, sql: &str, opts: &ExecOptions) -> DbResult<QueryResult> {
        let start = Instant::now();
        let stamp = self.cache_stamp();
        let valid = |q: &CachedQuery| {
            if self.stats_drifted(&q.table_rows) {
                // The plan's cost-based choices were made at row counts
                // that no longer hold; drop it and re-optimize below.
                crate::metrics::counter("sql.cost.reoptimized").incr();
                false
            } else {
                true
            }
        };
        if let Some(cached) = self.plan_cache.lookup(sql, stamp, valid) {
            // Hit: parse, bind, and optimize are all skipped.
            let mut result = self.run_cached(&cached, opts)?;
            result.elapsed = start.elapsed();
            return Ok(result);
        }
        let stmt = parse(sql)?;
        let bound = bind(stmt, &self.catalog, &self.functions)?;
        let probe = self.analyze_probe(sql, &bound, stamp);
        let mut result = match bound {
            BoundStatement::Query { plan, scalar_subs } => {
                self.run_query_fresh(sql, plan, scalar_subs, stamp, opts)?
            }
            other => self.run_bound_probe(other, opts, probe)?,
        };
        result.elapsed = start.elapsed();
        Ok(result)
    }

    /// Executes a cache hit: evaluates the statement's scalar subqueries
    /// fresh (their values depend on current data), substitutes them into
    /// a clone of the cached optimized plan, re-verifies, and executes.
    fn run_cached(&self, cached: &CachedQuery, opts: &ExecOptions) -> DbResult<QueryResult> {
        let values =
            evaluate_scalar_subqueries(&cached.scalar_subs, &self.catalog, &self.functions)?;
        let mut plan = cached.plan.clone();
        substitute_in_plan(&mut plan, &values);
        crate::verify::verify_plan(&plan, &self.functions)?;
        let batch = execute_plan_with(&plan, &self.catalog, &self.functions, opts)?;
        Ok(QueryResult {
            rows_affected: batch.rows(),
            batch,
            elapsed: Duration::ZERO,
            kind: StatementKind::Query,
        })
    }

    /// Executes a plain `SELECT` after a cache miss: optimizes the
    /// pre-substitution plan exactly once, caches it (scalar subqueries
    /// stay symbolic and are substituted per execution), then runs it.
    /// Only `Query` statements are cachable (DDL/DML must re-run their
    /// side effects; EXPLAIN is a diagnostic), and only they tick
    /// `sql.plan_cache.misses`, so hits+misses counts SELECT traffic.
    /// Plans answered entirely from statistics are **not** cached: their
    /// literals bake in the table contents at optimize time, which the
    /// next INSERT would silently stale.
    fn run_query_fresh(
        &self,
        sql: &str,
        plan: LogicalPlan,
        scalar_subs: Vec<LogicalPlan>,
        stamp: CacheStamp,
        opts: &ExecOptions,
    ) -> DbResult<QueryResult> {
        crate::metrics::counter("sql.plan_cache.misses").incr();
        let use_stats = self.stats_enabled();
        let outcome = optimize_with_stats(plan, &self.catalog, use_stats)?;
        if !outcome.from_stats {
            let table_rows = if use_stats { self.recorded_rows(&outcome.plan) } else { Vec::new() };
            self.plan_cache.insert(
                sql,
                CachedQuery {
                    plan: outcome.plan.clone(),
                    scalar_subs: scalar_subs.clone(),
                    table_rows,
                },
                stamp,
            );
        }
        let values = evaluate_scalar_subqueries(&scalar_subs, &self.catalog, &self.functions)?;
        let mut plan = outcome.plan;
        substitute_in_plan(&mut plan, &values);
        crate::verify::verify_plan(&plan, &self.functions)?;
        let batch = execute_plan_with(&plan, &self.catalog, &self.functions, opts)?;
        Ok(QueryResult {
            rows_affected: batch.rows(),
            batch,
            elapsed: Duration::ZERO,
            kind: StatementKind::Query,
        })
    }

    /// For `EXPLAIN ANALYZE <stmt>`, probes (without counter ticks or LRU
    /// promotion) whether `<stmt>` would currently hit the plan cache, so
    /// the report can show cache behavior without perturbing it.
    fn analyze_probe(
        &self,
        sql: &str,
        bound: &BoundStatement,
        stamp: CacheStamp,
    ) -> Option<Arc<CachedQuery>> {
        match bound {
            BoundStatement::Explain { analyze: true, .. } => {
                let inner = strip_keyword(sql.trim_start(), "EXPLAIN")?;
                let inner = strip_keyword(inner.trim_start(), "ANALYZE")?;
                // Same drift check as a real lookup, but tick-free and
                // non-destructive: EXPLAIN must not perturb the cache.
                self.plan_cache.probe(inner, stamp, |q| !self.stats_drifted(&q.table_rows))
            }
            _ => None,
        }
    }

    /// Executes a `;`-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> DbResult<QueryResult> {
        let start = Instant::now();
        let stmts = parse_many(sql)?;
        if stmts.is_empty() {
            return Err(DbError::Parse { message: "empty script".into(), position: 0 });
        }
        let mut last = None;
        for stmt in stmts {
            let bound = bind(stmt, &self.catalog, &self.functions)?;
            last = Some(self.run_bound(bound, &self.exec_options())?);
        }
        let mut result = last.expect("nonempty");
        result.elapsed = start.elapsed();
        Ok(result)
    }

    /// Convenience: executes a query and returns its batch.
    pub fn query(&self, sql: &str) -> DbResult<Batch> {
        Ok(self.execute(sql)?.into_batch())
    }

    /// Convenience: executes a query expected to return exactly one value.
    pub fn query_value(&self, sql: &str) -> DbResult<Value> {
        let batch = self.query(sql)?;
        if batch.rows() != 1 || batch.width() != 1 {
            return Err(DbError::Shape(format!(
                "expected a 1x1 result, got {}x{}",
                batch.rows(),
                batch.width()
            )));
        }
        Ok(batch.column(0).value(0))
    }

    fn run_bound(&self, bound: BoundStatement, opts: &ExecOptions) -> DbResult<QueryResult> {
        self.run_bound_probe(bound, opts, None)
    }

    fn run_bound_probe(
        &self,
        bound: BoundStatement,
        opts: &ExecOptions,
        probe: Option<Arc<CachedQuery>>,
    ) -> DbResult<QueryResult> {
        let catalog = &self.catalog;
        let functions = &self.functions;
        let empty = |kind: StatementKind, rows: usize| QueryResult {
            batch: Batch::empty(Schema::empty()),
            rows_affected: rows,
            elapsed: Duration::ZERO,
            kind,
        };
        // Durable mutations hold the commit fence across "apply in memory
        // + append to log" so a concurrent CHECKPOINT snapshots at a
        // statement boundary: DML shared (statements on different tables
        // proceed concurrently; the table guard orders same-table logging),
        // DDL exclusive (catalog changes and their log records serialize).
        let durable = self.durable();
        match bound {
            BoundStatement::CreateTable { name, schema, if_not_exists } => {
                let _fence = durable.as_ref().map(|d| d.fence.write());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let created = match catalog.create_table(&name, schema.clone()) {
                    Ok(()) => true,
                    Err(DbError::AlreadyExists { .. }) if if_not_exists => false,
                    Err(e) => return Err(e),
                };
                if created {
                    if let Some(d) = &durable {
                        d.log(&[WalOp::CreateTable {
                            name: name.to_ascii_lowercase(),
                            schema,
                        }])?;
                    }
                }
                Ok(empty(StatementKind::Ddl, 0))
            }
            BoundStatement::CreateTableAs { name, mut plan, scalar_subs, if_not_exists } => {
                let values = evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                substitute_in_plan(&mut plan, &values);
                let plan = optimize_with_stats(plan, catalog, self.stats_enabled())?.plan;
                crate::verify::verify_plan(&plan, functions)?;
                let batch = execute_plan_with(&plan, catalog, functions, opts)?;
                let rows = batch.rows();
                let lname = name.to_ascii_lowercase();
                let _fence = durable.as_ref().map(|d| d.fence.write());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let existed = catalog.has_table(&lname);
                let schema = batch.schema().clone();
                // Batch columns are Arc-shared: the clone for logging is cheap.
                let table = Table::from_batch(lname.clone(), batch.clone());
                catalog.put_table(table, if_not_exists)?;
                if !existed {
                    if let Some(d) = &durable {
                        // One record = one statement: create + populate
                        // replay atomically.
                        d.log(&[
                            WalOp::CreateTable { name: lname.clone(), schema },
                            WalOp::append(lname, batch),
                        ])?;
                    }
                }
                Ok(empty(StatementKind::Ddl, rows))
            }
            BoundStatement::DropTable { name, if_exists } => {
                let _fence = durable.as_ref().map(|d| d.fence.write());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let existed = catalog.has_table(&name);
                catalog.drop_table(&name, if_exists)?;
                if existed {
                    if let Some(d) = &durable {
                        d.log(&[WalOp::DropTable { name: name.to_ascii_lowercase() }])?;
                    }
                }
                Ok(empty(StatementKind::Ddl, 0))
            }
            BoundStatement::DropFunction { name, if_exists } => {
                functions.drop_function(&name, if_exists)?;
                Ok(empty(StatementKind::Ddl, 0))
            }
            BoundStatement::InsertValues { table, column_map, rows } => {
                let _fence = durable.as_ref().map(|d| d.fence.read());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let handle = catalog.table(&table)?;
                let mut guard = handle.write();
                let batch = self.insert_rows(&mut guard, &column_map, &rows)?;
                if let Some(d) = &durable {
                    // Logged under the table guard so same-table log order
                    // matches apply order.
                    d.log(&[WalOp::append(table, batch)])?;
                }
                Ok(empty(StatementKind::Dml, rows.len()))
            }
            BoundStatement::InsertQuery { table, column_map, mut plan, scalar_subs } => {
                let values = evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                substitute_in_plan(&mut plan, &values);
                let plan = optimize_with_stats(plan, catalog, self.stats_enabled())?.plan;
                crate::verify::verify_plan(&plan, functions)?;
                let batch = execute_plan_with(&plan, catalog, functions, opts)?;
                let _fence = durable.as_ref().map(|d| d.fence.read());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let handle = catalog.table(&table)?;
                let mut guard = handle.write();
                let reordered = self.reorder_for_insert(&guard, &column_map, batch)?;
                let n = reordered.rows();
                guard.append_batch(&reordered)?;
                if let Some(d) = &durable {
                    d.log(&[WalOp::append(table, reordered)])?;
                }
                Ok(empty(StatementKind::Dml, n))
            }
            BoundStatement::Delete { table, filter, scalar_subs } => {
                let values = evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                let _fence = durable.as_ref().map(|d| d.fence.read());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let handle = catalog.table(&table)?;
                let mut guard = handle.write();
                let snapshot = guard.scan();
                let keep: Vec<u32> = match filter {
                    None => Vec::new(),
                    Some(mut pred) => {
                        pred.substitute_subqueries(&values);
                        let ctx = EvalContext::new(&snapshot, Some(functions));
                        let deleted = eval_predicate(&ctx, &pred)?;
                        let dset: std::collections::HashSet<u32> = deleted.into_iter().collect();
                        (0..snapshot.rows() as u32).filter(|i| !dset.contains(i)).collect()
                    }
                };
                let removed = snapshot.rows() - keep.len();
                guard.retain_indices(&keep);
                if let Some(d) = &durable {
                    d.log(&[WalOp::Retain { table, keep }])?;
                }
                Ok(empty(StatementKind::Dml, removed))
            }
            BoundStatement::Update { table, assignments, filter, scalar_subs } => {
                let values = evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                let _fence = durable.as_ref().map(|d| d.fence.read());
                if let Some(d) = &durable {
                    d.ensure_usable()?;
                }
                let handle = catalog.table(&table)?;
                let mut guard = handle.write();
                let snapshot = guard.scan();
                let ctx = EvalContext::new(&snapshot, Some(functions));
                let selected: Vec<bool> = match filter {
                    None => vec![true; snapshot.rows()],
                    Some(mut pred) => {
                        pred.substitute_subqueries(&values);
                        let sel = eval_predicate(&ctx, &pred)?;
                        let mut mask = vec![false; snapshot.rows()];
                        for i in sel {
                            mask[i as usize] = true;
                        }
                        mask
                    }
                };
                let mut updated = 0;
                let mut logged: Vec<WalOp> = Vec::new();
                for (col_idx, mut expr) in assignments {
                    expr.substitute_subqueries(&values);
                    let new_col = eval(&ctx, &expr)?.broadcast_to(snapshot.rows())?;
                    let field = guard.schema().field(col_idx).clone();
                    let new_col = if new_col.data_type() == field.dtype {
                        new_col
                    } else {
                        new_col.cast(field.dtype)?
                    };
                    let old = snapshot.column(col_idx);
                    let mut b = ColumnBuilder::new(field.dtype);
                    for (i, &sel) in selected.iter().enumerate() {
                        let v = if sel { new_col.value(i) } else { old.value(i) };
                        b.push_value(&v)?;
                    }
                    let finished = b.finish();
                    if durable.is_some() {
                        // Column clones are deep; only pay when logging.
                        logged.push(WalOp::ReplaceColumn {
                            table: table.clone(),
                            col_idx,
                            column: finished.clone(),
                        });
                    }
                    guard.replace_column(col_idx, finished)?;
                }
                if let Some(d) = &durable {
                    // One record for the whole statement: multi-column
                    // updates replay atomically.
                    d.log(&logged)?;
                }
                for s in &selected {
                    if *s {
                        updated += 1;
                    }
                }
                Ok(empty(StatementKind::Dml, updated))
            }
            BoundStatement::Query { mut plan, scalar_subs } => {
                let values = evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                substitute_in_plan(&mut plan, &values);
                let plan = optimize_with_stats(plan, catalog, self.stats_enabled())?.plan;
                crate::verify::verify_plan(&plan, functions)?;
                let batch = execute_plan_with(&plan, catalog, functions, opts)?;
                Ok(QueryResult {
                    rows_affected: batch.rows(),
                    batch,
                    elapsed: Duration::ZERO,
                    kind: StatementKind::Query,
                })
            }
            BoundStatement::Explain { mut plan, scalar_subs, analyze } => {
                let text = if analyze {
                    // EXPLAIN ANALYZE runs the statement exactly as a plain
                    // query would (subqueries evaluated and substituted),
                    // collecting per-operator rows, wall time, and whether
                    // the parallel path engaged. When the inner statement
                    // would hit the plan cache, the cached plan is what
                    // runs — and the report says so.
                    let (plan, cache_note) = match probe {
                        Some(entry) => {
                            let values =
                                evaluate_scalar_subqueries(&entry.scalar_subs, catalog, functions)?;
                            let mut plan = entry.plan.clone();
                            substitute_in_plan(&mut plan, &values);
                            (plan, "plan cache: hit (parse, bind, and optimize skipped)\n")
                        }
                        None => {
                            let values =
                                evaluate_scalar_subqueries(&scalar_subs, catalog, functions)?;
                            substitute_in_plan(&mut plan, &values);
                            (
                                optimize_with_stats(plan, catalog, self.stats_enabled())?.plan,
                                "plan cache: miss\n",
                            )
                        }
                    };
                    crate::verify::verify_plan(&plan, functions)?;
                    let trace = PlanTrace::new();
                    if self.stats_enabled() {
                        // Per-operator cardinality estimates, printed as
                        // `est=N` next to the actual row counts.
                        trace.set_estimates(estimate::estimate_map(&plan, catalog));
                    }
                    let start = Instant::now();
                    let result = execute_plan_traced(&plan, catalog, functions, opts, &trace)?;
                    let total = start.elapsed();
                    let mut text = plan.display_with(&|n| trace.annotation(n));
                    text.push_str(cache_note);
                    text.push_str(&format!(
                        "execution: {} rows in {:.3}ms\n",
                        result.rows(),
                        total.as_secs_f64() * 1e3
                    ));
                    text
                } else {
                    // Plain EXPLAIN does not execute subqueries;
                    // placeholders are shown as `$subqueryN` and each
                    // subplan is listed. The verifier types the
                    // placeholders from the subplans.
                    let plan = optimize_with_stats(plan, catalog, self.stats_enabled())?.plan;
                    crate::verify::verify_statement(
                        &BoundStatement::Explain {
                            plan: plan.clone(),
                            scalar_subs: scalar_subs.clone(),
                            analyze,
                        },
                        functions,
                    )?;
                    // Annotate operators the executor may run in parallel
                    // (expression safety; the row threshold decides at run
                    // time), predicates with fusible shapes, and scans over
                    // encoded tables.
                    let mut text =
                        plan.display_with(&|n| explain_annotation(n, functions, catalog));
                    for (i, sub) in scalar_subs.iter().enumerate() {
                        text.push_str(&format!("scalar subquery ${i}:\n{sub}"));
                    }
                    text
                };
                let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
                let batch = Batch::from_columns(vec![(
                    "plan",
                    Column::from_strings(lines.iter().copied()),
                )])?;
                Ok(QueryResult {
                    rows_affected: batch.rows(),
                    batch,
                    elapsed: Duration::ZERO,
                    kind: StatementKind::Query,
                })
            }
            BoundStatement::ShowTables => {
                let names = catalog.table_names();
                let rows: Vec<i64> = names
                    .iter()
                    .map(|n| catalog.table(n).map(|t| t.read().rows() as i64).unwrap_or(0))
                    .collect();
                let batch = Batch::from_columns(vec![
                    ("table_name", Column::from_strings(names.iter().map(String::as_str))),
                    ("row_count", Column::from_i64s(rows)),
                ])?;
                Ok(QueryResult {
                    rows_affected: batch.rows(),
                    batch,
                    elapsed: Duration::ZERO,
                    kind: StatementKind::Query,
                })
            }
            BoundStatement::ShowFunctions => {
                let (scalar, table) = functions.names();
                let mut names: Vec<String> = Vec::new();
                let mut kinds: Vec<&str> = Vec::new();
                for s in scalar {
                    names.push(s);
                    kinds.push("scalar");
                }
                for t in table {
                    names.push(t);
                    kinds.push("table");
                }
                let batch = Batch::from_columns(vec![
                    ("function_name", Column::from_strings(names.iter().map(String::as_str))),
                    ("kind", Column::from_strings(kinds.iter().copied())),
                ])?;
                Ok(QueryResult {
                    rows_affected: batch.rows(),
                    batch,
                    elapsed: Duration::ZERO,
                    kind: StatementKind::Query,
                })
            }
            BoundStatement::Checkpoint => {
                self.checkpoint()?;
                Ok(empty(StatementKind::Ddl, 0))
            }
            BoundStatement::Save { path } => {
                if durable.is_some() {
                    // Fold the log first: the snapshot then carries every
                    // committed statement, and if `path` is the durable
                    // directory itself the truncated log holds no data
                    // records to double-apply over the v1 snapshot.
                    self.checkpoint()?;
                }
                crate::persist::save_database(self, Path::new(&path))?;
                Ok(empty(StatementKind::Ddl, 0))
            }
        }
    }

    /// Inserts constant rows honoring an explicit column list: unmentioned
    /// columns receive NULL. Returns the appended batch (cast to the
    /// table's declared types) so a durable database can log it.
    fn insert_rows(
        &self,
        table: &mut Table,
        column_map: &[usize],
        rows: &[Vec<Value>],
    ) -> DbResult<Batch> {
        let width = table.schema().len();
        let mut full_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let mut full = vec![Value::Null; width];
            for (v, &dst) in row.iter().zip(column_map) {
                full[dst] = v.clone();
            }
            full_rows.push(full);
        }
        let batch = Batch::from_rows(table.schema().clone(), &full_rows)?;
        table.append_batch(&batch)?;
        Ok(batch)
    }

    /// Reorders a source batch to the target table's column positions,
    /// padding unmentioned columns with NULL.
    fn reorder_for_insert(
        &self,
        table: &Table,
        column_map: &[usize],
        batch: Batch,
    ) -> DbResult<Batch> {
        let schema = table.schema();
        let identity =
            column_map.len() == schema.len() && column_map.iter().enumerate().all(|(i, &m)| i == m);
        if identity {
            return Ok(batch);
        }
        let n = batch.rows();
        let mut columns: Vec<Arc<Column>> = Vec::with_capacity(schema.len());
        for (dst, f) in schema.fields().iter().enumerate() {
            match column_map.iter().position(|&m| m == dst) {
                Some(src) => {
                    let c = batch.column(src);
                    let c = if c.data_type() == f.dtype {
                        c.as_ref().clone()
                    } else {
                        c.cast(f.dtype)?
                    };
                    columns.push(Arc::new(c));
                }
                None => columns.push(Arc::new(Column::nulls(f.dtype, n))),
            }
        }
        Batch::new(schema.clone(), columns)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("tables", &self.catalog.table_names()).finish()
    }
}

/// Builds a `Field` list quickly in tests and loaders.
pub fn fields(defs: &[(&str, DataType)]) -> DbResult<Arc<Schema>> {
    Ok(Arc::new(Schema::new(defs.iter().map(|(n, t)| Field::new(*n, *t)).collect())?))
}

/// Strips a leading SQL keyword (case-insensitive, must be followed by
/// whitespace) and returns the remainder, or `None` if absent.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let head = s.get(..kw.len())?;
    if !head.eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &s[kw.len()..];
    if rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 'x', 0.5), (2, 'y', 1.5), (3, 'x', 2.5), (NULL, 'z', NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let db = db();
        let r = db.query("SELECT a, b FROM t WHERE a >= 2").unwrap();
        assert_eq!(r.rows(), 2);
        assert_eq!(r.row(0), vec![Value::Int32(2), Value::Varchar("y".into())]);
    }

    #[test]
    fn select_star_and_aliases() {
        let db = db();
        let r = db.query("SELECT * FROM t").unwrap();
        assert_eq!(r.width(), 3);
        assert_eq!(r.rows(), 4);
        let r = db.query("SELECT a AS x, a + 1 AS y FROM t WHERE a = 1").unwrap();
        assert_eq!(r.schema().names(), vec!["x", "y"]);
        assert_eq!(r.row(0)[1], Value::Int64(2));
    }

    #[test]
    fn aggregation_via_sql() {
        let db = db();
        let r =
            db.query("SELECT b, COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY b ORDER BY b").unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(0), vec!["x".into(), Value::Int64(2), Value::Int64(4)]);
        assert_eq!(r.row(2), vec!["z".into(), Value::Int64(1), Value::Null]);
    }

    #[test]
    fn ungrouped_aggregates() {
        let db = db();
        assert_eq!(db.query_value("SELECT COUNT(*) FROM t").unwrap(), Value::Int64(4));
        assert_eq!(db.query_value("SELECT COUNT(a) FROM t").unwrap(), Value::Int64(3));
        assert_eq!(db.query_value("SELECT AVG(c) FROM t").unwrap(), Value::Float64(1.5));
        assert_eq!(db.query_value("SELECT MIN(b) FROM t").unwrap(), Value::Varchar("x".into()));
    }

    #[test]
    fn having_filters_groups() {
        let db = db();
        let r = db.query("SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 1").unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0)[0], Value::Varchar("x".into()));
    }

    #[test]
    fn join_via_sql() {
        let db = db();
        db.execute("CREATE TABLE u (b VARCHAR, score INTEGER)").unwrap();
        db.execute("INSERT INTO u VALUES ('x', 10), ('y', 20)").unwrap();
        let r = db.query("SELECT t.a, u.score FROM t JOIN u ON t.b = u.b ORDER BY t.a").unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(2), vec![Value::Int32(3), Value::Int32(10)]);
        let r = db
            .query("SELECT t.a, u.score FROM t LEFT JOIN u ON t.b = u.b WHERE t.b = 'z'")
            .unwrap();
        assert_eq!(r.rows(), 1);
        assert!(r.row(0)[1].is_null());
    }

    #[test]
    fn order_limit_offset() {
        let db = db();
        let r = db.query("SELECT a FROM t ORDER BY a DESC LIMIT 2").unwrap();
        // NULLs first under DESC.
        assert!(r.row(0)[0].is_null());
        assert_eq!(r.row(1)[0], Value::Int32(3));
        let r = db.query("SELECT a FROM t ORDER BY 1 ASC LIMIT 2 OFFSET 1").unwrap();
        assert_eq!(r.row(0)[0], Value::Int32(2));
    }

    #[test]
    fn distinct_and_union() {
        let db = db();
        let r = db.query("SELECT DISTINCT b FROM t").unwrap();
        assert_eq!(r.rows(), 3);
        let r = db.query("SELECT 1 AS v UNION ALL SELECT 2 UNION ALL SELECT 1").unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r.schema().names(), vec!["v"]);
    }

    #[test]
    fn union_coerces_types() {
        let db = db();
        let r = db.query("SELECT 1 AS v UNION ALL SELECT 2.5").unwrap();
        assert_eq!(r.column(0).data_type(), DataType::Float64);
        assert!(db.execute("SELECT 1 UNION ALL SELECT 'x'").is_err());
    }

    #[test]
    fn delete_and_update() {
        let db = db();
        let r = db.execute("DELETE FROM t WHERE a = 2").unwrap();
        assert_eq!(r.rows_affected(), 1);
        assert_eq!(db.query_value("SELECT COUNT(*) FROM t").unwrap(), Value::Int64(3));
        let r = db.execute("UPDATE t SET c = c * 2 WHERE a = 1").unwrap();
        assert_eq!(r.rows_affected(), 1);
        assert_eq!(db.query_value("SELECT c FROM t WHERE a = 1").unwrap(), Value::Float64(1.0));
        // Unfiltered update touches all rows.
        let r = db.execute("UPDATE t SET b = 'w'").unwrap();
        assert_eq!(r.rows_affected(), 3);
        assert_eq!(db.query("SELECT DISTINCT b FROM t").unwrap().rows(), 1);
    }

    #[test]
    fn create_table_as_and_insert_select() {
        let db = db();
        db.execute("CREATE TABLE t2 AS SELECT a, c FROM t WHERE a IS NOT NULL").unwrap();
        assert_eq!(db.query_value("SELECT COUNT(*) FROM t2").unwrap(), Value::Int64(3));
        db.execute("INSERT INTO t2 SELECT a, c FROM t WHERE a = 1").unwrap();
        assert_eq!(db.query_value("SELECT COUNT(*) FROM t2").unwrap(), Value::Int64(4));
    }

    #[test]
    fn insert_with_column_list_pads_nulls() {
        let db = db();
        db.execute("INSERT INTO t (b) VALUES ('only-b')").unwrap();
        let r = db.query("SELECT a, b, c FROM t WHERE b = 'only-b'").unwrap();
        assert!(r.row(0)[0].is_null());
        assert!(r.row(0)[2].is_null());
    }

    #[test]
    fn scalar_subquery_in_predicate() {
        let db = db();
        let r = db.query("SELECT a FROM t WHERE c > (SELECT AVG(c) FROM t) ORDER BY a").unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0)[0], Value::Int32(3));
    }

    #[test]
    fn derived_table() {
        let db = db();
        let r = db
            .query(
                "SELECT s.b, s.n FROM (SELECT b, COUNT(*) AS n FROM t GROUP BY b) s WHERE s.n > 1",
            )
            .unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0)[1], Value::Int64(2));
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let r = db.query("SELECT 1 + 1 AS two, 'hi' AS s").unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0), vec![Value::Int64(2), Value::Varchar("hi".into())]);
    }

    #[test]
    fn case_and_functions_in_sql() {
        let db = db();
        let r = db
            .query(
                "SELECT a, CASE WHEN a >= 2 THEN 'big' ELSE 'small' END AS size \
                 FROM t WHERE a IS NOT NULL ORDER BY a",
            )
            .unwrap();
        assert_eq!(r.row(0)[1], Value::Varchar("small".into()));
        assert_eq!(r.row(2)[1], Value::Varchar("big".into()));
        assert_eq!(db.query_value("SELECT ABS(-5)").unwrap(), Value::Int64(5));
        assert_eq!(
            db.query_value("SELECT UPPER('abc') || '!'").unwrap(),
            Value::Varchar("ABC!".into())
        );
    }

    #[test]
    fn show_tables_lists() {
        let db = db();
        let r = db.query("SHOW TABLES").unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0)[0], Value::Varchar("t".into()));
        assert_eq!(r.row(0)[1], Value::Int64(4));
    }

    #[test]
    fn error_paths() {
        let db = db();
        assert!(matches!(
            db.execute("SELECT zzz FROM t"),
            Err(DbError::NotFound { kind: "column", .. })
        ));
        assert!(matches!(
            db.execute("SELECT * FROM missing"),
            Err(DbError::NotFound { kind: "table", .. })
        ));
        assert!(db.execute("SELECT a FROM t GROUP BY b").is_err());
        assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
        assert!(db.execute("CREATE TABLE t (x INT)").is_err());
        db.execute("CREATE TABLE IF NOT EXISTS t (x INT)").unwrap();
    }

    #[test]
    fn group_by_ordinal_and_alias() {
        let db = db();
        let r = db.query("SELECT b AS grp, COUNT(*) FROM t GROUP BY 1 ORDER BY 1").unwrap();
        assert_eq!(r.rows(), 3);
        let r = db.query("SELECT b AS grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp").unwrap();
        assert_eq!(r.rows(), 3);
    }

    #[test]
    fn group_expr_in_projection() {
        let db = db();
        let r = db
            .query("SELECT a % 2 AS parity, COUNT(*) AS n FROM t WHERE a IS NOT NULL GROUP BY a % 2 ORDER BY parity")
            .unwrap();
        assert_eq!(r.rows(), 2);
        assert_eq!(r.row(0)[1], Value::Int64(1)); // parity 0: {2}
        assert_eq!(r.row(1)[1], Value::Int64(2)); // parity 1: {1, 3}
    }

    #[test]
    fn execute_script_runs_all() {
        let db = Database::new();
        let r = db
            .execute_script(
                "CREATE TABLE s (x INT); INSERT INTO s VALUES (1), (2); SELECT SUM(x) FROM s",
            )
            .unwrap();
        assert_eq!(r.batch().column(0).value(0), Value::Int64(3));
    }

    #[test]
    fn explain_shows_optimized_plan() {
        let db = db();
        let r = db.query("EXPLAIN SELECT a FROM t WHERE a > 1 + 1 ORDER BY a LIMIT 3").unwrap();
        let text: Vec<String> =
            (0..r.rows()).map(|i| r.row(i)[0].as_str().unwrap().to_owned()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("Limit"), "{joined}");
        assert!(joined.contains("Scan t"), "{joined}");
        // Constant folding happened: the predicate compares against 2.
        assert!(joined.contains("> 2"), "{joined}");
        assert!(!joined.contains("1 + 1"), "{joined}");
    }

    #[test]
    fn optimizer_preserves_results() {
        let db = db();
        db.execute("CREATE TABLE u (b VARCHAR, w INTEGER)").unwrap();
        db.execute("INSERT INTO u VALUES ('x', 1), ('y', 2)").unwrap();
        // Filter over join with per-side and cross-side conjuncts.
        let r = db
            .query(
                "SELECT t.a, u.w FROM t JOIN u ON t.b = u.b                  WHERE t.a > 0 AND u.w < 2 AND t.a <> u.w ORDER BY t.a",
            )
            .unwrap();
        assert_eq!(r.rows(), 1);
        assert_eq!(r.row(0), vec![Value::Int32(3), Value::Int32(1)]);
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mlcs_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_reopen_replays_every_statement_kind() {
        let dir = durable_dir("replay");
        {
            let (db, report) = Database::open_durable(&dir).unwrap();
            assert!(report.is_clean());
            assert!(db.is_durable());
            db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
            db.execute("DELETE FROM t WHERE a = 2").unwrap();
            db.execute("UPDATE t SET b = 'w' WHERE a = 3").unwrap();
            db.execute("CREATE TABLE gone (x INT)").unwrap();
            db.execute("DROP TABLE gone").unwrap();
            db.execute("CREATE TABLE t2 AS SELECT a FROM t").unwrap();
            db.execute("INSERT INTO t2 SELECT a + 10 FROM t").unwrap();
        } // no checkpoint: everything must come back from the log alone
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.replayed_records >= 8);
        assert_eq!(db.query_value("SELECT COUNT(*) FROM t").unwrap(), Value::Int64(2));
        assert_eq!(
            db.query_value("SELECT b FROM t WHERE a = 3").unwrap(),
            Value::Varchar("w".into())
        );
        assert_eq!(db.query_value("SELECT SUM(a) FROM t2").unwrap(), Value::Int64(28));
        assert!(!db.catalog().has_table("gone"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_reopen_needs_no_data_replay() {
        let dir = durable_dir("ckpt_sql");
        {
            let (db, _) = Database::open_durable(&dir).unwrap();
            db.execute("CREATE TABLE t (v BIGINT)").unwrap();
            db.execute("INSERT INTO t VALUES (41), (1)").unwrap();
            db.execute("CHECKPOINT").unwrap();
            // Post-checkpoint traffic lands in the fresh log.
            db.execute("INSERT INTO t VALUES (100)").unwrap();
        }
        let (db, report) = Database::open_durable(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        // Marker + one post-checkpoint insert; the first two statements
        // came back from pages.
        assert_eq!(report.replayed_records, 2, "{report:?}");
        assert_eq!(db.query_value("SELECT SUM(v) FROM t").unwrap(), Value::Int64(142));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_requires_durable_database() {
        let db = db();
        assert!(matches!(db.execute("CHECKPOINT"), Err(DbError::Unsupported(_))));
        assert!(!db.is_durable());
    }

    #[test]
    fn save_statement_snapshots_to_directory() {
        let dir = durable_dir("save_stmt");
        let snap = durable_dir("save_stmt_snap");
        let db = db();
        db.execute(&format!("SAVE '{}'", snap.display())).unwrap();
        let restored = Database::new();
        crate::persist::load_database(&restored, &snap).unwrap();
        assert_eq!(restored.query_value("SELECT COUNT(*) FROM t").unwrap(), Value::Int64(4));
        // On a durable database SAVE checkpoints first, so saving into the
        // durable directory itself stays reopenable.
        let (ddb, _) = Database::open_durable(&dir).unwrap();
        ddb.execute("CREATE TABLE u (x INT)").unwrap();
        ddb.execute("INSERT INTO u VALUES (5)").unwrap();
        ddb.execute(&format!("SAVE '{}'", dir.display())).unwrap();
        drop(ddb);
        let (back, report) = Database::open_durable(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(back.query_value("SELECT x FROM u").unwrap(), Value::Int32(5));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&snap).unwrap();
    }

    #[test]
    fn blob_round_trip_via_sql() {
        let db = Database::new();
        db.execute("CREATE TABLE m (id INT, body BLOB)").unwrap();
        db.execute("INSERT INTO m VALUES (1, x'DEADBEEF')").unwrap();
        let v = db.query_value("SELECT body FROM m WHERE id = 1").unwrap();
        assert_eq!(v, Value::Blob(vec![0xDE, 0xAD, 0xBE, 0xEF]));
        assert_eq!(db.query_value("SELECT OCTET_LENGTH(body) FROM m").unwrap(), Value::Int64(4));
    }
}
