//! The parse-level abstract syntax tree.
//!
//! Names are unresolved strings (already lower-cased by the lexer); the
//! binder turns this AST into a [`crate::sql::plan::LogicalPlan`] with
//! positional column references.

use crate::types::{DataType, Value};

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE [IF NOT EXISTS] name (col TYPE [NOT NULL], ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Suppress the already-exists error.
        if_not_exists: bool,
    },
    /// `CREATE TABLE [IF NOT EXISTS] name AS query`.
    CreateTableAs {
        /// Table name.
        name: String,
        /// Source query.
        query: Query,
        /// Suppress the already-exists error.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the missing-table error.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES ... | query`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `DELETE FROM name [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter; `None` deletes everything.
        filter: Option<AstExpr>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        assignments: Vec<(String, AstExpr)>,
        /// Row filter; `None` updates everything.
        filter: Option<AstExpr>,
    },
    /// A `SELECT` query.
    Query(Query),
    /// `EXPLAIN SELECT ...` — shows the optimized logical plan.
    /// With `analyze` set (`EXPLAIN ANALYZE`), also executes the query and
    /// annotates each operator with its observed rows and wall time.
    Explain {
        /// The query being explained.
        query: Query,
        /// Whether to execute the query and report per-operator runtime.
        analyze: bool,
    },
    /// `SHOW TABLES`.
    ShowTables,
    /// `SHOW FUNCTIONS` — lists registered UDFs.
    ShowFunctions,
    /// `DROP FUNCTION [IF EXISTS] name` — unregisters a UDF.
    DropFunction {
        /// Function name.
        name: String,
        /// Suppress the missing-function error.
        if_exists: bool,
    },
    /// `CHECKPOINT` — folds the write-ahead log into the page base and
    /// truncates it. Only meaningful on a durable database.
    Checkpoint,
    /// `SAVE 'dir'` — whole-file snapshot of every table into a directory
    /// (checkpointing first when the database is durable).
    Save {
        /// Target directory.
        path: String,
    },
}

/// One column in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// False when `NOT NULL` was given.
    pub nullable: bool,
}

/// Source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)` — constant expression rows.
    Values(Vec<Vec<AstExpr>>),
    /// `INSERT INTO t SELECT …`.
    Query(Query),
}

/// A query: set expression plus ordering and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body (`SELECT` or `UNION ALL` tree).
    pub body: SetExpr,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` expression (constant).
    pub limit: Option<AstExpr>,
    /// `OFFSET` expression (constant).
    pub offset: Option<AstExpr>,
}

/// The set-expression level of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain `SELECT`.
    Select(Box<Select>),
    /// `left UNION ALL right`.
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

/// One `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projected items.
    pub projection: Vec<SelectItem>,
    /// `FROM` clause; `None` for table-less selects (`SELECT 1`).
    pub from: Option<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<AstExpr>,
    /// `HAVING` predicate.
    pub having: Option<AstExpr>,
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// An expression with optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table with optional alias.
    Named {
        /// Table name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// A derived table: `(SELECT ...) alias`.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
    /// A table-valued function call: `train(args...)`.
    TableFunction {
        /// Function name.
        name: String,
        /// Arguments (expressions or whole-column subqueries).
        args: Vec<TableFuncArg>,
        /// Alias.
        alias: Option<String>,
    },
    /// A join of two table references.
    Join {
        /// Left side.
        left: Box<TableRef>,
        /// Right side.
        right: Box<TableRef>,
        /// INNER / LEFT / CROSS.
        join_type: AstJoinType,
        /// Join condition.
        constraint: JoinConstraint,
    },
}

/// Join kinds supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinType {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN` (or comma).
    Cross,
}

/// The condition attached to a join.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    /// `ON expr`.
    On(AstExpr),
    /// `USING (col, ...)`.
    Using(Vec<String>),
    /// No condition (cross join).
    None,
}

/// An argument to a table-valued function.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFuncArg {
    /// A scalar expression (no column references).
    Expr(AstExpr),
    /// `(SELECT ...)` — every column of the result is passed as a whole
    /// column argument, the paper's way of feeding data to `train`.
    Subquery(Query),
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression (may be an output alias or a 1-based ordinal).
    pub expr: AstExpr,
    /// `ASC` (default) or `DESC`.
    pub ascending: bool,
    /// Explicit `NULLS FIRST`/`LAST`, if given.
    pub nulls_first: Option<bool>,
}

/// An unresolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Bare identifier `col`.
    Ident(String),
    /// Qualified identifier `t.col`.
    CompoundIdent(String, String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: crate::expr::BinaryOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: crate::expr::UnaryOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// Function call: aggregate, builtin scalar, or UDF — resolved by the
    /// binder in that order.
    Function {
        /// Function name (lower-cased).
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// `f(DISTINCT x)`.
        distinct: bool,
        /// `COUNT(*)`.
        star: bool,
    },
    /// `CAST(expr AS TYPE)`.
    Cast {
        /// Operand.
        expr: Box<AstExpr>,
        /// Target type.
        to: DataType,
    },
    /// `CASE ...`.
    Case {
        /// Optional operand form.
        operand: Option<Box<AstExpr>>,
        /// `(when, then)` pairs.
        branches: Vec<(AstExpr, AstExpr)>,
        /// `ELSE`.
        else_expr: Option<Box<AstExpr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Candidates.
        list: Vec<AstExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Pattern.
        pattern: Box<AstExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Low bound.
        low: Box<AstExpr>,
        /// High bound.
        high: Box<AstExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `(SELECT ...)` used as a scalar — must evaluate to one row, one
    /// column. This is how a stored model BLOB is fed to `predict`.
    ScalarSubquery(Box<Query>),
}
