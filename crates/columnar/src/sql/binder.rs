//! The binder: resolves the parse AST against the catalog and function
//! registry, producing a positional [`LogicalPlan`].

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::exec::{AggFunc, JoinType};
use crate::expr::{BinaryOp, BuiltinScalar, Expr, UnaryOp};
use crate::schema::{Field, Schema};
use crate::sql::ast::*;
use crate::sql::plan::*;
use crate::types::{DataType, Value};
use crate::udf::FunctionRegistry;
use std::sync::Arc;

/// Binds one parsed statement.
pub fn bind(
    stmt: Statement,
    catalog: &Catalog,
    functions: &FunctionRegistry,
) -> DbResult<BoundStatement> {
    let mut b = Binder { catalog, functions, scalar_subs: Vec::new() };
    b.bind_statement(stmt)
}

/// One visible column during binding: optional qualifier, name, type.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    dtype: DataType,
}

/// The set of columns visible to expressions, in input-batch order.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(qualifier: Option<&str>, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.map(str::to_owned),
                    name: f.name.to_ascii_lowercase(),
                    dtype: f.dtype,
                })
                .collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self
    }

    fn len(&self) -> usize {
        self.cols.len()
    }

    /// Resolves a bare identifier; ambiguity is an error.
    fn resolve(&self, name: &str) -> DbResult<usize> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if c.name == name {
                if found.is_some() {
                    return Err(DbError::bind(format!("column '{name}' is ambiguous")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| DbError::NotFound { kind: "column", name: name.to_owned() })
    }

    /// Resolves `qualifier.name`.
    fn resolve_qualified(&self, qualifier: &str, name: &str) -> DbResult<usize> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if c.name == name && c.qualifier.as_deref() == Some(qualifier) {
                if found.is_some() {
                    return Err(DbError::bind(format!("column '{qualifier}.{name}' is ambiguous")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| DbError::NotFound {
            kind: "column",
            name: format!("{qualifier}.{name}"),
        })
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
    functions: &'a FunctionRegistry,
    /// Uncorrelated scalar subqueries gathered while binding; referenced by
    /// `Expr::Subquery(index)` placeholders.
    scalar_subs: Vec<LogicalPlan>,
}

impl<'a> Binder<'a> {
    fn bind_statement(&mut self, stmt: Statement) -> DbResult<BoundStatement> {
        match stmt {
            Statement::CreateTable { name, columns, if_not_exists } => {
                let fields = columns
                    .into_iter()
                    .map(|c| Field { name: c.name, dtype: c.dtype, nullable: c.nullable })
                    .collect();
                Ok(BoundStatement::CreateTable {
                    name,
                    schema: Arc::new(Schema::new(fields)?),
                    if_not_exists,
                })
            }
            Statement::CreateTableAs { name, query, if_not_exists } => {
                let plan = self.bind_query(query)?;
                Ok(BoundStatement::CreateTableAs {
                    name,
                    plan,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                    if_not_exists,
                })
            }
            Statement::DropTable { name, if_exists } => {
                Ok(BoundStatement::DropTable { name, if_exists })
            }
            Statement::DropFunction { name, if_exists } => {
                Ok(BoundStatement::DropFunction { name, if_exists })
            }
            Statement::ShowTables => Ok(BoundStatement::ShowTables),
            Statement::ShowFunctions => Ok(BoundStatement::ShowFunctions),
            Statement::Checkpoint => Ok(BoundStatement::Checkpoint),
            Statement::Save { path } => Ok(BoundStatement::Save { path }),
            Statement::Query(q) => {
                let plan = self.bind_query(q)?;
                Ok(BoundStatement::Query {
                    plan,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                })
            }
            Statement::Explain { query, analyze } => {
                let plan = self.bind_query(query)?;
                Ok(BoundStatement::Explain {
                    plan,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                    analyze,
                })
            }
            Statement::Insert { table, columns, source } => {
                self.bind_insert(table, columns, source)
            }
            Statement::Delete { table, filter } => {
                let handle = self.catalog.table(&table)?;
                let schema = handle.read().schema().clone();
                let scope = Scope::from_schema(Some(&table), &schema);
                let filter = match filter {
                    Some(f) => Some(self.bind_expr(&f, &scope)?),
                    None => None,
                };
                Ok(BoundStatement::Delete {
                    table,
                    filter,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                })
            }
            Statement::Update { table, assignments, filter } => {
                let handle = self.catalog.table(&table)?;
                let schema = handle.read().schema().clone();
                let scope = Scope::from_schema(Some(&table), &schema);
                let mut bound = Vec::with_capacity(assignments.len());
                for (col, e) in assignments {
                    let (idx, _) = schema.field_by_name(&col)?;
                    bound.push((idx, self.bind_expr(&e, &scope)?));
                }
                let filter = match filter {
                    Some(f) => Some(self.bind_expr(&f, &scope)?),
                    None => None,
                };
                Ok(BoundStatement::Update {
                    table,
                    assignments: bound,
                    filter,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                })
            }
        }
    }

    fn bind_insert(
        &mut self,
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    ) -> DbResult<BoundStatement> {
        let handle = self.catalog.table(&table)?;
        let schema = handle.read().schema().clone();
        let column_map: Vec<usize> = match &columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.field_by_name(c).map(|(i, _)| i))
                .collect::<DbResult<_>>()?,
        };
        match source {
            InsertSource::Values(rows) => {
                let empty = Scope::default();
                let mut const_rows = Vec::with_capacity(rows.len());
                for row in &rows {
                    if row.len() != column_map.len() {
                        return Err(DbError::Shape(format!(
                            "INSERT row has {} values, expected {}",
                            row.len(),
                            column_map.len()
                        )));
                    }
                    let mut values = Vec::with_capacity(row.len());
                    for e in row {
                        let bound = self.bind_expr(e, &empty)?;
                        values.push(eval_constant(&bound)?);
                    }
                    const_rows.push(values);
                }
                if !self.scalar_subs.is_empty() {
                    return Err(DbError::Unsupported(
                        "scalar subqueries in INSERT VALUES; use INSERT INTO … SELECT".into(),
                    ));
                }
                Ok(BoundStatement::InsertValues { table, column_map, rows: const_rows })
            }
            InsertSource::Query(q) => {
                let plan = self.bind_query(q)?;
                if plan.schema().len() != column_map.len() {
                    return Err(DbError::Shape(format!(
                        "INSERT source has {} columns, expected {}",
                        plan.schema().len(),
                        column_map.len()
                    )));
                }
                Ok(BoundStatement::InsertQuery {
                    table,
                    column_map,
                    plan,
                    scalar_subs: std::mem::take(&mut self.scalar_subs),
                })
            }
        }
    }

    // ---- queries ---------------------------------------------------------

    fn bind_query(&mut self, q: Query) -> DbResult<LogicalPlan> {
        let mut plan = match q.body {
            // Plain SELECT: ORDER BY binds inside bind_select, where the
            // pre-projection scope is available for hidden sort columns.
            SetExpr::Select(s) => self.bind_select(*s, &q.order_by)?,
            body => {
                let (plan, projection_asts) = self.bind_set_expr(body)?;
                if q.order_by.is_empty() {
                    plan
                } else {
                    self.bind_order_by(plan, &q.order_by, projection_asts.as_deref())?
                }
            }
        };
        if q.limit.is_some() || q.offset.is_some() {
            let limit = match q.limit {
                Some(e) => Some(self.constant_usize(&e, "LIMIT")?),
                None => None,
            };
            let offset = match q.offset {
                Some(e) => self.constant_usize(&e, "OFFSET")?,
                None => 0,
            };
            plan = LogicalPlan::Limit { input: Box::new(plan), limit, offset };
        }
        Ok(plan)
    }

    /// Binds a set expression; also returns the projection ASTs of the
    /// top-level SELECT (used to resolve ORDER BY aliases), when available.
    fn bind_set_expr(&mut self, body: SetExpr) -> DbResult<(LogicalPlan, Option<Vec<SelectItem>>)> {
        match body {
            SetExpr::Select(s) => {
                let projection = s.projection.clone();
                let plan = self.bind_select(*s, &[])?;
                Ok((plan, Some(projection)))
            }
            SetExpr::UnionAll(l, r) => {
                let (lp, _) = self.bind_set_expr(*l)?;
                let (rp, _) = self.bind_set_expr(*r)?;
                let plan = self.bind_union(lp, rp)?;
                Ok((plan, None))
            }
        }
    }

    fn bind_union(&mut self, left: LogicalPlan, right: LogicalPlan) -> DbResult<LogicalPlan> {
        let ls = left.schema();
        let rs = right.schema();
        if ls.len() != rs.len() {
            return Err(DbError::bind(format!(
                "UNION ALL branches have {} and {} columns",
                ls.len(),
                rs.len()
            )));
        }
        // Coerce each branch to the common type per column.
        let mut fields = Vec::with_capacity(ls.len());
        for (lf, rf) in ls.fields().iter().zip(rs.fields()) {
            let t = DataType::common_numeric(lf.dtype, rf.dtype).ok_or_else(|| {
                DbError::bind(format!(
                    "UNION ALL column '{}' mixes {} and {}",
                    lf.name, lf.dtype, rf.dtype
                ))
            })?;
            fields.push(Field::new(lf.name.clone(), t));
        }
        let schema = Arc::new(Schema::new_unchecked(fields));
        let coerce = |plan: LogicalPlan, schema: &Arc<Schema>| -> LogicalPlan {
            let needs =
                plan.schema().fields().iter().zip(schema.fields()).any(|(a, b)| a.dtype != b.dtype);
            if !needs {
                return plan;
            }
            let exprs = plan
                .schema()
                .fields()
                .iter()
                .zip(schema.fields())
                .enumerate()
                .map(|(i, (a, b))| {
                    if a.dtype == b.dtype {
                        Expr::Column(i)
                    } else {
                        Expr::Cast { expr: Box::new(Expr::Column(i)), to: b.dtype }
                    }
                })
                .collect();
            LogicalPlan::Project { input: Box::new(plan), exprs, schema: schema.clone() }
        };
        let inputs = vec![coerce(left, &schema), coerce(right, &schema)];
        Ok(LogicalPlan::UnionAll { inputs, schema })
    }

    fn bind_select(&mut self, s: Select, order_by: &[OrderItem]) -> DbResult<LogicalPlan> {
        // FROM
        let (mut plan, scope) = match s.from {
            Some(tr) => self.bind_table_ref(tr)?,
            None => (LogicalPlan::UnitRow, Scope::default()),
        };

        // WHERE
        if let Some(w) = &s.where_clause {
            let predicate = self.bind_expr(w, &scope)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        // Does this select aggregate?
        let mut has_agg = !s.group_by.is_empty()
            || s.having.is_some()
            || s.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => self.contains_aggregate(expr),
                _ => false,
            });

        if has_agg {
            // Resolve GROUP BY items: ordinals and projection aliases expand
            // to the projected expression.
            let mut group_asts: Vec<AstExpr> = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                group_asts.push(self.resolve_group_item(g, &s.projection)?);
            }
            // Collect aggregate calls across projection + HAVING.
            let mut agg_asts: Vec<AstExpr> = Vec::new();
            for item in &s.projection {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_aggregates(expr, &mut agg_asts);
                }
            }
            if let Some(h) = &s.having {
                collect_aggregates(h, &mut agg_asts);
            }
            if agg_asts.is_empty() && s.group_by.is_empty() {
                // HAVING without aggregates or grouping: treat as filter.
                has_agg = false;
                let _ = has_agg;
                return Err(DbError::Unsupported("HAVING without GROUP BY or aggregates".into()));
            }

            // Bind group exprs and agg args over the FROM scope.
            let group_exprs: Vec<Expr> =
                group_asts.iter().map(|g| self.bind_expr(g, &scope)).collect::<DbResult<_>>()?;
            let mut plan_aggs = Vec::with_capacity(agg_asts.len());
            for a in &agg_asts {
                plan_aggs.push(self.bind_aggregate_call(a, &scope)?);
            }

            // Aggregate output schema: named group keys, then aggregates.
            let input_schema = plan.schema();
            let mut fields = Vec::new();
            for (ast, e) in group_asts.iter().zip(&group_exprs) {
                let name = derived_name(ast);
                let dtype = self.infer_type(e, &input_schema)?;
                fields.push(Field::new(unique_name(&mut fields_names(&fields), &name), dtype));
            }
            for (i, (ast, pa)) in agg_asts.iter().zip(&plan_aggs).enumerate() {
                let arg_t = match &pa.arg {
                    Some(e) => Some(self.infer_type(e, &input_schema)?),
                    None => None,
                };
                let dtype = pa.func.result_type(arg_t)?;
                let name = derived_name(ast);
                let name = if name == "?" { format!("agg{i}") } else { name };
                fields.push(Field::new(unique_name(&mut fields_names(&fields), &name), dtype));
            }
            let agg_schema = Arc::new(Schema::new_unchecked(fields));
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group: group_exprs,
                aggs: plan_aggs,
                schema: agg_schema.clone(),
            };

            // Post-aggregate binding rewrites group-expr and agg-call ASTs
            // to positional refs into the aggregate output.
            let post =
                PostAggScope { group_asts: &group_asts, agg_asts: &agg_asts, schema: &agg_schema };

            if let Some(h) = &s.having {
                let predicate = self.bind_post_agg(h, &post)?;
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
            }

            // Projection over the aggregate output.
            let mut exprs = Vec::new();
            let mut names: Vec<String> = Vec::new();
            for item in &s.projection {
                match item {
                    SelectItem::Wildcard => {
                        // SELECT * with GROUP BY projects the group keys.
                        for i in 0..group_asts.len() {
                            exprs.push(Expr::Column(i));
                            names.push(agg_schema.field(i).name.clone());
                        }
                    }
                    SelectItem::QualifiedWildcard(_) => {
                        return Err(DbError::Unsupported(
                            "qualified * in an aggregated SELECT".into(),
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        exprs.push(self.bind_post_agg(expr, &post)?);
                        names.push(alias.clone().unwrap_or_else(|| derived_name(expr)));
                    }
                }
            }
            return self.finish_select(
                plan,
                exprs,
                names,
                &s.projection,
                s.distinct,
                order_by,
                BindBelow::PostAgg(&post),
            );
        }

        // Non-aggregated projection.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.cols.iter().enumerate() {
                        exprs.push(Expr::Column(i));
                        names.push(c.name.clone());
                    }
                    if scope.cols.is_empty() {
                        return Err(DbError::bind("SELECT * with no FROM clause"));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for (i, c) in scope.cols.iter().enumerate() {
                        if c.qualifier.as_deref() == Some(q.as_str()) {
                            exprs.push(Expr::Column(i));
                            names.push(c.name.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(DbError::NotFound { kind: "table alias", name: q.clone() });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.bind_expr(expr, &scope)?);
                    names.push(alias.clone().unwrap_or_else(|| derived_name(expr)));
                }
            }
        }
        self.finish_select(
            plan,
            exprs,
            names,
            &s.projection,
            s.distinct,
            order_by,
            BindBelow::Scope(&scope),
        )
    }

    /// Applies projection, DISTINCT, and ORDER BY to a bound SELECT.
    ///
    /// ORDER BY keys resolve, in order of preference, to: a 1-based output
    /// ordinal, an output name/alias, a syntactic match of a projection
    /// item, or — when none of those apply — a *hidden* sort column bound
    /// below the projection, which is projected away again after sorting.
    #[allow(clippy::too_many_arguments)]
    fn finish_select(
        &mut self,
        input: LogicalPlan,
        exprs: Vec<Expr>,
        names: Vec<String>,
        projection: &[SelectItem],
        distinct: bool,
        order_by: &[OrderItem],
        below: BindBelow<'_>,
    ) -> DbResult<LogicalPlan> {
        let visible = exprs.len();
        let mut all_exprs = exprs;
        let mut all_names = names;
        let mut keys: Vec<PlanSortKey> = Vec::with_capacity(order_by.len());
        for item in order_by {
            // 1-based output ordinal.
            if let AstExpr::Literal(Value::Int32(n)) = &item.expr {
                let idx = *n as usize;
                if idx == 0 || idx > visible {
                    return Err(DbError::bind(format!("ORDER BY ordinal {n} out of range")));
                }
                keys.push(PlanSortKey {
                    column: idx - 1,
                    ascending: item.ascending,
                    nulls_first: item.nulls_first.unwrap_or(!item.ascending),
                });
                continue;
            }
            // Output name or alias.
            let mut resolved = None;
            if let AstExpr::Ident(name) = &item.expr {
                if let Some(i) =
                    all_names[..visible].iter().position(|n| n.eq_ignore_ascii_case(name))
                {
                    resolved = Some(i);
                }
            }
            // Syntactic match of a projection item (e.g. ORDER BY count(*)).
            if resolved.is_none() {
                for (i, p) in projection.iter().enumerate() {
                    if let SelectItem::Expr { expr, .. } = p {
                        if expr == &item.expr && i < visible {
                            resolved = Some(i);
                            break;
                        }
                    }
                }
            }
            let column = match resolved {
                Some(c) => c,
                None => {
                    // Hidden sort column bound below the projection.
                    if distinct {
                        return Err(DbError::Unsupported(
                            "ORDER BY on a column not in a SELECT DISTINCT output".into(),
                        ));
                    }
                    let bound = match below {
                        BindBelow::Scope(scope) => self.bind_expr(&item.expr, scope)?,
                        BindBelow::PostAgg(post) => self.bind_post_agg(&item.expr, post)?,
                    };
                    all_exprs.push(bound);
                    all_names.push(format!("__sort{}", all_exprs.len()));
                    all_exprs.len() - 1
                }
            };
            keys.push(PlanSortKey {
                column,
                ascending: item.ascending,
                nulls_first: item.nulls_first.unwrap_or(!item.ascending),
            });
        }
        let hidden = all_exprs.len() - visible;
        let mut plan = self.make_project(input, all_exprs, all_names)?;
        if distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        if !keys.is_empty() {
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }
        if hidden > 0 {
            // Drop the hidden sort columns.
            let schema = plan.schema();
            let exprs: Vec<Expr> = (0..visible).map(Expr::Column).collect();
            let fields: Vec<Field> = schema.fields()[..visible].to_vec();
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: Arc::new(Schema::new_unchecked(fields)),
            };
        }
        Ok(plan)
    }

    /// Builds a Project node, inferring output types and deduplicating
    /// output names.
    fn make_project(
        &self,
        input: LogicalPlan,
        exprs: Vec<Expr>,
        names: Vec<String>,
    ) -> DbResult<LogicalPlan> {
        let input_schema = input.schema();
        let mut fields: Vec<Field> = Vec::with_capacity(exprs.len());
        for (e, n) in exprs.iter().zip(&names) {
            let dtype = self.infer_type(e, &input_schema)?;
            let mut taken = fields_names(&fields);
            fields.push(Field::new(unique_name(&mut taken, n), dtype));
        }
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            exprs,
            schema: Arc::new(Schema::new_unchecked(fields)),
        })
    }

    /// Resolves a GROUP BY item: a 1-based ordinal or an alias of a
    /// projection item expands to the projected expression.
    fn resolve_group_item(&self, g: &AstExpr, projection: &[SelectItem]) -> DbResult<AstExpr> {
        match g {
            AstExpr::Literal(Value::Int32(n)) => {
                let idx = *n as usize;
                let item = projection
                    .get(idx.wrapping_sub(1))
                    .ok_or_else(|| DbError::bind(format!("GROUP BY ordinal {n} out of range")))?;
                match item {
                    SelectItem::Expr { expr, .. } => Ok(expr.clone()),
                    _ => Err(DbError::bind("GROUP BY ordinal points at *")),
                }
            }
            AstExpr::Ident(name) => {
                for item in projection {
                    if let SelectItem::Expr { expr, alias: Some(a) } = item {
                        if a == name {
                            return Ok(expr.clone());
                        }
                    }
                }
                Ok(g.clone())
            }
            _ => Ok(g.clone()),
        }
    }

    fn bind_order_by(
        &mut self,
        plan: LogicalPlan,
        items: &[OrderItem],
        projection: Option<&[SelectItem]>,
    ) -> DbResult<LogicalPlan> {
        let schema = plan.schema();
        let visible = schema.len();
        let mut keys = Vec::with_capacity(items.len());
        for item in items {
            // 1-based ordinal?
            if let AstExpr::Literal(Value::Int32(n)) = &item.expr {
                let idx = *n as usize;
                if idx == 0 || idx > visible {
                    return Err(DbError::bind(format!("ORDER BY ordinal {n} out of range")));
                }
                keys.push(PlanSortKey {
                    column: idx - 1,
                    ascending: item.ascending,
                    nulls_first: item.nulls_first.unwrap_or(!item.ascending),
                });
                continue;
            }
            // Output column name or alias?
            let mut resolved = None;
            if let AstExpr::Ident(name) = &item.expr {
                if let Some(i) = schema.index_of(name) {
                    resolved = Some(i);
                }
            }
            // Projection-item syntactic match (e.g. ORDER BY count(*))?
            if resolved.is_none() {
                if let Some(proj) = projection {
                    for (i, p) in proj.iter().enumerate() {
                        if let SelectItem::Expr { expr, .. } = p {
                            if expr == &item.expr && i < visible {
                                resolved = Some(i);
                                break;
                            }
                        }
                    }
                }
            }
            match resolved {
                Some(column) => keys.push(PlanSortKey {
                    column,
                    ascending: item.ascending,
                    nulls_first: item.nulls_first.unwrap_or(!item.ascending),
                }),
                None => {
                    return Err(DbError::bind(format!(
                    "ORDER BY expression '{:?}' must reference an output column, alias, or ordinal",
                    item.expr
                )))
                }
            }
        }
        Ok(LogicalPlan::Sort { input: Box::new(plan), keys })
    }

    // ---- FROM binding ----------------------------------------------------

    fn bind_table_ref(&mut self, tr: TableRef) -> DbResult<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Named { name, alias } => {
                let handle = self.catalog.table(&name)?;
                let schema = handle.read().schema().clone();
                let q = alias.unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(Some(&q), &schema);
                Ok((LogicalPlan::Scan { table: name, schema }, scope))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.bind_query(*query)?;
                let scope = Scope::from_schema(Some(&alias), &plan.schema());
                Ok((plan, scope))
            }
            TableRef::TableFunction { name, args, alias } => {
                let udf = self.functions.table(&name)?;
                let mut bound_args = Vec::with_capacity(args.len());
                let mut arg_types = Vec::new();
                for a in args {
                    match a {
                        TableFuncArg::Expr(e) => {
                            let bound = self.bind_expr(&e, &Scope::default())?;
                            arg_types.push(self.infer_type(&bound, &Schema::empty())?);
                            bound_args.push(BoundTableArg::Scalar(bound));
                        }
                        TableFuncArg::Subquery(q) => {
                            let plan = self.bind_query(q)?;
                            for f in plan.schema().fields() {
                                arg_types.push(f.dtype);
                            }
                            bound_args.push(BoundTableArg::Plan(plan));
                        }
                    }
                }
                let schema = udf.schema(&arg_types)?;
                let q = alias.unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(Some(&q), &schema);
                Ok((LogicalPlan::TableFunction { name, args: bound_args, schema }, scope))
            }
            TableRef::Join { left, right, join_type, constraint } => {
                let (lp, lscope) = self.bind_table_ref(*left)?;
                let (rp, rscope) = self.bind_table_ref(*right)?;
                self.bind_join(lp, lscope, rp, rscope, join_type, constraint)
            }
        }
    }

    fn bind_join(
        &mut self,
        left: LogicalPlan,
        lscope: Scope,
        right: LogicalPlan,
        rscope: Scope,
        join_type: AstJoinType,
        constraint: JoinConstraint,
    ) -> DbResult<(LogicalPlan, Scope)> {
        let lcols = lscope.len();
        let combined = lscope.clone().concat(rscope.clone());
        let jt = match join_type {
            AstJoinType::Inner => JoinType::Inner,
            AstJoinType::Left => JoinType::Left,
            AstJoinType::Cross => JoinType::Cross,
        };
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Option<Expr> = None;
        match constraint {
            JoinConstraint::None => {}
            JoinConstraint::Using(cols) => {
                for c in cols {
                    let li = lscope.resolve(&c)?;
                    let ri = rscope.resolve(&c)?;
                    left_keys.push(li);
                    right_keys.push(ri);
                }
            }
            JoinConstraint::On(on) => {
                // Split conjuncts; equi-conjuncts across sides become hash
                // keys, the rest a residual filter over the joined batch.
                let mut residuals = Vec::new();
                for conj in split_conjuncts(&on) {
                    if let AstExpr::Binary { op: BinaryOp::Eq, left: a, right: b } = &conj {
                        let ab = self.try_bind_side(a, &lscope).ok().flatten();
                        let bb = self.try_bind_side(b, &rscope).ok().flatten();
                        if let (Some(li), Some(ri)) = (ab, bb) {
                            left_keys.push(li);
                            right_keys.push(ri);
                            continue;
                        }
                        // Try swapped orientation.
                        let ab = self.try_bind_side(b, &lscope).ok().flatten();
                        let bb = self.try_bind_side(a, &rscope).ok().flatten();
                        if let (Some(li), Some(ri)) = (ab, bb) {
                            left_keys.push(li);
                            right_keys.push(ri);
                            continue;
                        }
                    }
                    residuals.push(conj);
                }
                if !residuals.is_empty() {
                    if jt == JoinType::Left {
                        return Err(DbError::Unsupported(
                            "non-equi conditions on LEFT JOIN".into(),
                        ));
                    }
                    let mut combined_pred: Option<AstExpr> = None;
                    for r in residuals {
                        combined_pred = Some(match combined_pred {
                            None => r,
                            Some(p) => AstExpr::Binary {
                                op: BinaryOp::And,
                                left: Box::new(p),
                                right: Box::new(r),
                            },
                        });
                    }
                    residual = Some(self.bind_expr(&combined_pred.expect("nonempty"), &combined)?);
                }
                if left_keys.is_empty() && jt != JoinType::Cross {
                    return Err(DbError::Unsupported(
                        "join without at least one equality condition".into(),
                    ));
                }
            }
        }
        // Output schema: left then right fields (names may repeat; the
        // scope carries qualifiers for disambiguation).
        let mut fields = Vec::with_capacity(combined.len());
        for (i, c) in combined.cols.iter().enumerate() {
            let dtype = c.dtype;
            let _ = i;
            fields.push(Field::new(c.name.clone(), dtype));
        }
        let schema = Arc::new(Schema::new_unchecked(fields));
        let _ = lcols;
        let plan = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            join_type: jt,
            left_keys,
            right_keys,
            residual,
            build_left: false,
            schema,
        };
        Ok((plan, combined))
    }

    /// Tries to bind an ON-side expression as a single column of the given
    /// scope. Returns `Ok(None)` when the expression references anything
    /// outside the scope.
    fn try_bind_side(&mut self, e: &AstExpr, scope: &Scope) -> DbResult<Option<usize>> {
        match e {
            AstExpr::Ident(n) => Ok(scope.resolve(n).ok()),
            AstExpr::CompoundIdent(q, n) => Ok(scope.resolve_qualified(q, n).ok()),
            _ => Ok(None),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn bind_expr(&mut self, e: &AstExpr, scope: &Scope) -> DbResult<Expr> {
        match e {
            AstExpr::Ident(n) => Ok(Expr::Column(scope.resolve(n)?)),
            AstExpr::CompoundIdent(q, n) => Ok(Expr::Column(scope.resolve_qualified(q, n)?)),
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, scope)?),
                right: Box::new(self.bind_expr(right, scope)?),
            }),
            AstExpr::Unary { op, expr } => {
                Ok(Expr::Unary { op: *op, expr: Box::new(self.bind_expr(expr, scope)?) })
            }
            AstExpr::Cast { expr, to } => {
                Ok(Expr::Cast { expr: Box::new(self.bind_expr(expr, scope)?), to: *to })
            }
            AstExpr::IsNull { expr, negated } => {
                Ok(Expr::IsNull { expr: Box::new(self.bind_expr(expr, scope)?), negated: *negated })
            }
            AstExpr::Case { operand, branches, else_expr } => Ok(Expr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.bind_expr(o, scope)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.bind_expr(w, scope)?, self.bind_expr(t, scope)?)))
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e, scope)?)),
                    None => None,
                },
            }),
            AstExpr::InList { expr, list, negated } => Ok(Expr::InList {
                expr: Box::new(self.bind_expr(expr, scope)?),
                list: list.iter().map(|e| self.bind_expr(e, scope)).collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            AstExpr::Like { expr, pattern, negated } => Ok(Expr::Like {
                expr: Box::new(self.bind_expr(expr, scope)?),
                pattern: Box::new(self.bind_expr(pattern, scope)?),
                negated: *negated,
            }),
            AstExpr::Between { expr, low, high, negated } => Ok(Expr::Between {
                expr: Box::new(self.bind_expr(expr, scope)?),
                low: Box::new(self.bind_expr(low, scope)?),
                high: Box::new(self.bind_expr(high, scope)?),
                negated: *negated,
            }),
            AstExpr::ScalarSubquery(q) => {
                let plan = self.bind_query((**q).clone())?;
                if plan.schema().len() != 1 {
                    return Err(DbError::bind(format!(
                        "scalar subquery must return one column, returns {}",
                        plan.schema().len()
                    )));
                }
                self.scalar_subs.push(plan);
                Ok(Expr::Subquery(self.scalar_subs.len() - 1))
            }
            AstExpr::Function { name, args, distinct, star } => {
                if *star || *distinct || AggFunc::from_name(name).is_some() {
                    // An aggregate outside an aggregation context.
                    if AggFunc::from_name(name).is_some() {
                        return Err(DbError::bind(format!(
                            "aggregate function {name}() is not allowed here"
                        )));
                    }
                }
                let bound_args: Vec<Expr> =
                    args.iter().map(|a| self.bind_expr(a, scope)).collect::<DbResult<_>>()?;
                if let Some(f) = BuiltinScalar::from_name(name) {
                    let (min, max) = f.arity();
                    if bound_args.len() < min || bound_args.len() > max {
                        return Err(DbError::bind(format!(
                            "{} expects at least {min} argument(s), got {}",
                            name,
                            bound_args.len()
                        )));
                    }
                    return Ok(Expr::ScalarFn { func: f, args: bound_args });
                }
                if self.functions.has_scalar(name) {
                    return Ok(Expr::Udf { name: name.clone(), args: bound_args });
                }
                Err(DbError::NotFound { kind: "function", name: name.clone() })
            }
        }
    }

    /// True if the AST contains an aggregate function call.
    fn contains_aggregate(&self, e: &AstExpr) -> bool {
        let mut found = Vec::new();
        collect_aggregates(e, &mut found);
        !found.is_empty()
    }

    fn bind_aggregate_call(&mut self, a: &AstExpr, scope: &Scope) -> DbResult<PlanAgg> {
        match a {
            AstExpr::Function { name, args, distinct, star } => {
                let func = AggFunc::from_name(name)
                    .ok_or_else(|| DbError::internal(format!("{name} is not an aggregate")))?;
                if *star {
                    return Ok(PlanAgg { func: AggFunc::CountStar, arg: None, distinct: false });
                }
                if args.len() != 1 {
                    return Err(DbError::bind(format!("{name}() expects exactly one argument")));
                }
                let arg = self.bind_expr(&args[0], scope)?;
                Ok(PlanAgg { func, arg: Some(arg), distinct: *distinct })
            }
            _ => Err(DbError::internal("bind_aggregate_call on non-function")),
        }
    }

    /// Binds an expression in the post-aggregation scope: group expressions
    /// and aggregate calls become positional references into the aggregate
    /// output; anything else must decompose into those.
    fn bind_post_agg(&mut self, e: &AstExpr, post: &PostAggScope<'_>) -> DbResult<Expr> {
        // Exact group-expression match?
        for (i, g) in post.group_asts.iter().enumerate() {
            if e == g {
                return Ok(Expr::Column(i));
            }
        }
        // Alias of a group name (bare ident matching the agg schema)?
        if let AstExpr::Ident(n) = e {
            if let Some(i) = post.schema.index_of(n) {
                return Ok(Expr::Column(i));
            }
        }
        // Aggregate call?
        for (i, a) in post.agg_asts.iter().enumerate() {
            if e == a {
                return Ok(Expr::Column(post.group_asts.len() + i));
            }
        }
        match e {
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.bind_post_agg(left, post)?),
                right: Box::new(self.bind_post_agg(right, post)?),
            }),
            AstExpr::Unary { op, expr } => {
                Ok(Expr::Unary { op: *op, expr: Box::new(self.bind_post_agg(expr, post)?) })
            }
            AstExpr::Cast { expr, to } => {
                Ok(Expr::Cast { expr: Box::new(self.bind_post_agg(expr, post)?), to: *to })
            }
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.bind_post_agg(expr, post)?),
                negated: *negated,
            }),
            AstExpr::Case { operand, branches, else_expr } => Ok(Expr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.bind_post_agg(o, post)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.bind_post_agg(w, post)?, self.bind_post_agg(t, post)?)))
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(x) => Some(Box::new(self.bind_post_agg(x, post)?)),
                    None => None,
                },
            }),
            AstExpr::InList { expr, list, negated } => Ok(Expr::InList {
                expr: Box::new(self.bind_post_agg(expr, post)?),
                list: list.iter().map(|x| self.bind_post_agg(x, post)).collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            AstExpr::Like { expr, pattern, negated } => Ok(Expr::Like {
                expr: Box::new(self.bind_post_agg(expr, post)?),
                pattern: Box::new(self.bind_post_agg(pattern, post)?),
                negated: *negated,
            }),
            AstExpr::Between { expr, low, high, negated } => Ok(Expr::Between {
                expr: Box::new(self.bind_post_agg(expr, post)?),
                low: Box::new(self.bind_post_agg(low, post)?),
                high: Box::new(self.bind_post_agg(high, post)?),
                negated: *negated,
            }),
            AstExpr::ScalarSubquery(q) => {
                let plan = self.bind_query((**q).clone())?;
                if plan.schema().len() != 1 {
                    return Err(DbError::bind("scalar subquery must return one column"));
                }
                self.scalar_subs.push(plan);
                Ok(Expr::Subquery(self.scalar_subs.len() - 1))
            }
            AstExpr::Function { name, args, .. } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(DbError::bind("nested aggregate functions"));
                }
                let bound: Vec<Expr> =
                    args.iter().map(|a| self.bind_post_agg(a, post)).collect::<DbResult<_>>()?;
                if let Some(f) = BuiltinScalar::from_name(name) {
                    return Ok(Expr::ScalarFn { func: f, args: bound });
                }
                if self.functions.has_scalar(name) {
                    return Ok(Expr::Udf { name: name.clone(), args: bound });
                }
                Err(DbError::NotFound { kind: "function", name: name.clone() })
            }
            AstExpr::Ident(n) => Err(DbError::bind(format!(
                "column '{n}' must appear in GROUP BY or inside an aggregate"
            ))),
            AstExpr::CompoundIdent(q, n) => Err(DbError::bind(format!(
                "column '{q}.{n}' must appear in GROUP BY or inside an aggregate"
            ))),
        }
    }

    fn constant_usize(&mut self, e: &AstExpr, what: &str) -> DbResult<usize> {
        let bound = self.bind_expr(e, &Scope::default())?;
        let v = eval_constant(&bound)?;
        v.as_i64()
            .and_then(|i| usize::try_from(i).ok())
            .ok_or_else(|| DbError::bind(format!("{what} must be a non-negative integer")))
    }

    /// Infers the output type of a bound expression. Must agree with the
    /// evaluator; the executor casts to the declared type as a safety net.
    fn infer_type(&self, e: &Expr, input: &Schema) -> DbResult<DataType> {
        Ok(match e {
            Expr::Column(i) => {
                input
                    .fields()
                    .get(*i)
                    .ok_or_else(|| DbError::internal(format!("type of column #{i}")))?
                    .dtype
            }
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int32),
            Expr::Binary { op, left, right } => match op {
                op if op.is_comparison() => DataType::Boolean,
                BinaryOp::And | BinaryOp::Or => DataType::Boolean,
                BinaryOp::Concat => DataType::Varchar,
                _ => {
                    let lt = self.infer_type(left, input)?;
                    let rt = self.infer_type(right, input)?;
                    if lt.is_integer() && rt.is_integer() {
                        DataType::Int64
                    } else {
                        DataType::Float64
                    }
                }
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Boolean,
                UnaryOp::Neg => {
                    let t = self.infer_type(expr, input)?;
                    if t.is_float() {
                        DataType::Float64
                    } else {
                        DataType::Int64
                    }
                }
            },
            Expr::Cast { to, .. } => *to,
            Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::Like { .. }
            | Expr::Between { .. } => DataType::Boolean,
            Expr::Case { branches, else_expr, .. } => {
                let mut t: Option<DataType> = None;
                for (_, then) in branches {
                    let bt = self.infer_type(then, input)?;
                    t = Some(match t {
                        None => bt,
                        Some(prev) => DataType::common_numeric(prev, bt).ok_or_else(|| {
                            DbError::Type(format!("CASE branches mix {prev} and {bt}"))
                        })?,
                    });
                }
                if let Some(e) = else_expr {
                    let bt = self.infer_type(e, input)?;
                    t = Some(match t {
                        None => bt,
                        Some(prev) => DataType::common_numeric(prev, bt).ok_or_else(|| {
                            DbError::Type(format!("CASE branches mix {prev} and {bt}"))
                        })?,
                    });
                }
                t.unwrap_or(DataType::Int32)
            }
            Expr::ScalarFn { func, args } => match func {
                BuiltinScalar::Abs | BuiltinScalar::Sign => {
                    let t = self.infer_type(&args[0], input)?;
                    if t.is_integer() {
                        DataType::Int64
                    } else {
                        DataType::Float64
                    }
                }
                BuiltinScalar::Floor
                | BuiltinScalar::Ceil
                | BuiltinScalar::Round
                | BuiltinScalar::Sqrt
                | BuiltinScalar::Exp
                | BuiltinScalar::Ln
                | BuiltinScalar::Log10
                | BuiltinScalar::Power => DataType::Float64,
                BuiltinScalar::Length | BuiltinScalar::OctetLength => DataType::Int64,
                BuiltinScalar::Lower
                | BuiltinScalar::Upper
                | BuiltinScalar::Trim
                | BuiltinScalar::Substr
                | BuiltinScalar::Concat => DataType::Varchar,
                BuiltinScalar::Nullif => self.infer_type(&args[0], input)?,
                BuiltinScalar::Coalesce | BuiltinScalar::Least | BuiltinScalar::Greatest => {
                    let mut t = self.infer_type(&args[0], input)?;
                    for a in &args[1..] {
                        let at = self.infer_type(a, input)?;
                        t = DataType::common_numeric(t, at)
                            .ok_or_else(|| DbError::Type(format!("arguments mix {t} and {at}")))?;
                    }
                    t
                }
            },
            Expr::Udf { name, args } => {
                let udf = self.functions.scalar(name)?;
                let arg_types: Vec<DataType> =
                    args.iter().map(|a| self.infer_type(a, input)).collect::<DbResult<_>>()?;
                udf.return_type(&arg_types)?
            }
            Expr::Subquery(i) => {
                let plan = self
                    .scalar_subs
                    .get(*i)
                    .ok_or_else(|| DbError::internal("dangling subquery index"))?;
                plan.schema().field(0).dtype
            }
        })
    }
}

/// Where hidden ORDER BY columns bind: the FROM scope (plain selects) or
/// the aggregate output (grouped selects).
enum BindBelow<'a> {
    Scope(&'a Scope),
    PostAgg(&'a PostAggScope<'a>),
}

/// Post-aggregation binding context.
struct PostAggScope<'a> {
    group_asts: &'a [AstExpr],
    agg_asts: &'a [AstExpr],
    schema: &'a Arc<Schema>,
}

/// Splits an expression on top-level ANDs.
fn split_conjuncts(e: &AstExpr) -> Vec<AstExpr> {
    match e {
        AstExpr::Binary { op: BinaryOp::And, left, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Collects aggregate function calls (deduplicated by syntactic equality).
fn collect_aggregates(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Function { name, args, star, .. } => {
            if AggFunc::from_name(name).is_some() || *star {
                if !out.contains(e) {
                    out.push(e.clone());
                }
                return; // do not descend into aggregate arguments
            }
            for a in args {
                collect_aggregates(a, out);
            }
        }
        AstExpr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        AstExpr::Unary { expr, .. } | AstExpr::Cast { expr, .. } | AstExpr::IsNull { expr, .. } => {
            collect_aggregates(expr, out)
        }
        AstExpr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                collect_aggregates(o, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(x) = else_expr {
                collect_aggregates(x, out);
            }
        }
        AstExpr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for x in list {
                collect_aggregates(x, out);
            }
        }
        AstExpr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        AstExpr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        AstExpr::Ident(_)
        | AstExpr::CompoundIdent(..)
        | AstExpr::Literal(_)
        | AstExpr::ScalarSubquery(_) => {}
    }
}

/// Derives an output column name from the projected AST.
fn derived_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Ident(n) => n.clone(),
        AstExpr::CompoundIdent(_, n) => n.clone(),
        AstExpr::Function { name, .. } => name.clone(),
        AstExpr::Cast { expr, .. } => derived_name(expr),
        _ => "?".into(),
    }
}

fn fields_names(fields: &[Field]) -> Vec<String> {
    fields.iter().map(|f| f.name.clone()).collect()
}

/// Produces a name not already in `taken` by appending `_1`, `_2`, ….
fn unique_name(taken: &mut Vec<String>, base: &str) -> String {
    let base = if base == "?" { "col".to_owned() } else { base.to_owned() };
    if !taken.iter().any(|t| t.eq_ignore_ascii_case(&base)) {
        taken.push(base.clone());
        return base;
    }
    for i in 1.. {
        let cand = format!("{base}_{i}");
        if !taken.iter().any(|t| t.eq_ignore_ascii_case(&cand)) {
            taken.push(cand.clone());
            return cand;
        }
    }
    unreachable!()
}

/// Evaluates a constant (column-free) expression to a single value.
pub fn eval_constant(e: &Expr) -> DbResult<Value> {
    let mut refs = Vec::new();
    e.referenced_columns(&mut refs);
    if !refs.is_empty() {
        return Err(DbError::bind("expression must be constant (no column references)"));
    }
    if e.has_subquery() {
        return Err(DbError::bind("constant expression cannot contain a subquery here"));
    }
    // Evaluate over a one-row unit batch.
    let unit = crate::batch::Batch::from_columns(vec![(
        "__unit",
        crate::column::Column::from_bools(vec![false]),
    )])?;
    let ctx = crate::expr::EvalContext::new(&unit, None);
    let col = crate::expr::eval(&ctx, e)?;
    Ok(col.value(0))
}
