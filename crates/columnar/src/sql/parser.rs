//! Recursive-descent SQL parser.

use crate::error::{DbError, DbResult};
use crate::expr::{BinaryOp, UnaryOp};
use crate::sql::ast::*;
use crate::sql::lexer::tokenize;
use crate::sql::token::Token;
use crate::types::{DataType, Value};

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> DbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.consume_optional_semicolons();
    if !p.at_end() {
        return Err(p.error(format!("unexpected trailing input starting at '{}'", p.peek_text())));
    }
    Ok(stmt)
}

/// Parses a sequence of `;`-separated statements.
pub fn parse_many(sql: &str) -> DbResult<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    p.consume_optional_semicolons();
    while !p.at_end() {
        out.push(p.statement()?);
        let before = p.pos;
        p.consume_optional_semicolons();
        if p.pos == before && !p.at_end() {
            return Err(p.error(format!("expected ';' before '{}'", p.peek_text())));
        }
    }
    Ok(out)
}

/// Words that cannot be used as implicit (AS-less) aliases.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "having", "order", "limit", "offset", "union", "join",
    "inner", "left", "right", "outer", "cross", "on", "using", "as", "and", "or", "not", "case",
    "when", "then", "else", "end", "values", "set", "insert", "update", "delete", "create", "drop",
    "table", "into", "distinct", "by", "is", "null", "like", "between", "in", "asc", "desc",
    "nulls", "first", "last", "exists",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn peek_text(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
    }

    fn error(&self, message: String) -> DbError {
        DbError::Parse { message, position: self.pos }
    }

    /// True if the current token is the keyword `kw` (already lower-cased).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    /// Consumes the keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires the keyword.
    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found '{}'",
                kw.to_uppercase(),
                self.peek_text()
            )))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> DbResult<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{t}', found '{}'", self.peek_text())))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(format!("expected identifier, found '{}'", self.peek_text()))),
        }
    }

    /// Identifier in positions where reserved words are acceptable (e.g.
    /// column names in CREATE TABLE can shadow soft keywords).
    fn expect_any_ident(&mut self) -> DbResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(format!("expected identifier, found '{}'", self.peek_text()))),
        }
    }

    fn consume_optional_semicolons(&mut self) {
        while self.eat_token(&Token::Semicolon) {}
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> DbResult<Statement> {
        if self.at_keyword("create") {
            return self.create();
        }
        if self.at_keyword("drop") {
            return self.drop();
        }
        if self.at_keyword("insert") {
            return self.insert();
        }
        if self.at_keyword("delete") {
            return self.delete();
        }
        if self.at_keyword("update") {
            return self.update();
        }
        if self.at_keyword("show") {
            return self.show();
        }
        if self.eat_keyword("checkpoint") {
            return Ok(Statement::Checkpoint);
        }
        if self.at_keyword("save") {
            return self.save();
        }
        if self.at_keyword("select") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.eat_keyword("explain") {
            let analyze = self.eat_keyword("analyze");
            let q = self.query()?;
            return Ok(Statement::Explain { query: q, analyze });
        }
        Err(self.error(format!("expected a statement, found '{}'", self.peek_text())))
    }

    fn create(&mut self) -> DbResult<Statement> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let if_not_exists = if self.eat_keyword("if") {
            self.expect_keyword("not")?;
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        if self.eat_keyword("as") {
            let query = self.query()?;
            return Ok(Statement::CreateTableAs { name, query, if_not_exists });
        }
        self.expect_token(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_any_ident()?;
            let ty_name = self.expect_any_ident()?;
            let dtype = DataType::from_sql_name(&ty_name)
                .ok_or_else(|| self.error(format!("unknown type '{ty_name}'")))?;
            let mut nullable = true;
            if self.eat_keyword("not") {
                self.expect_keyword("null")?;
                nullable = false;
            } else if self.eat_keyword("null") {
                // explicit NULL, the default
            }
            columns.push(ColumnDef { name: col_name, dtype, nullable });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns, if_not_exists })
    }

    fn drop(&mut self) -> DbResult<Statement> {
        self.expect_keyword("drop")?;
        if self.eat_keyword("function") {
            let if_exists = if self.eat_keyword("if") {
                self.expect_keyword("exists")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            return Ok(Statement::DropFunction { name, if_exists });
        }
        self.expect_keyword("table")?;
        let if_exists = if self.eat_keyword("if") {
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let columns = if self.peek() == Some(&Token::LParen)
            && matches!(self.peek_at(1), Some(Token::Ident(s)) if s != "select")
        {
            self.expect_token(&Token::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_any_ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        if self.eat_keyword("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_token(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, columns, source: InsertSource::Values(rows) });
        }
        let query = self.query()?;
        Ok(Statement::Insert { table, columns, source: InsertSource::Query(query) })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_keyword("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn update(&mut self) -> DbResult<Statement> {
        self.expect_keyword("update")?;
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_any_ident()?;
            self.expect_token(&Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn show(&mut self) -> DbResult<Statement> {
        self.expect_keyword("show")?;
        if self.eat_keyword("tables") {
            return Ok(Statement::ShowTables);
        }
        if self.eat_keyword("functions") {
            return Ok(Statement::ShowFunctions);
        }
        Err(self.error("expected TABLES or FUNCTIONS after SHOW".into()))
    }

    fn save(&mut self) -> DbResult<Statement> {
        self.expect_keyword("save")?;
        match self.peek() {
            Some(Token::String(s)) => {
                let path = s.clone();
                self.pos += 1;
                Ok(Statement::Save { path })
            }
            _ => Err(self.error(format!(
                "expected a quoted directory path after SAVE, found '{}'",
                self.peek_text()
            ))),
        }
    }

    // ---- queries ---------------------------------------------------------

    fn query(&mut self) -> DbResult<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                let nulls_first = if self.eat_keyword("nulls") {
                    if self.eat_keyword("first") {
                        Some(true)
                    } else {
                        self.expect_keyword("last")?;
                        Some(false)
                    }
                } else {
                    None
                };
                order_by.push(OrderItem { expr, ascending, nulls_first });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_keyword("limit") {
            limit = Some(self.expr()?);
        }
        if self.eat_keyword("offset") {
            offset = Some(self.expr()?);
        }
        Ok(Query { body, order_by, limit, offset })
    }

    fn set_expr(&mut self) -> DbResult<SetExpr> {
        let mut left = SetExpr::Select(Box::new(self.select()?));
        while self.at_keyword("union") {
            self.expect_keyword("union")?;
            self.expect_keyword("all")?;
            let right = SetExpr::Select(Box::new(self.select()?));
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn select(&mut self) -> DbResult<Select> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut projection = Vec::new();
        loop {
            if self.eat_token(&Token::Star) {
                projection.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Some(Token::Ident(_)))
                && self.peek_at(1) == Some(&Token::Dot)
                && self.peek_at(2) == Some(&Token::Star)
            {
                let alias = self.expect_any_ident()?;
                self.expect_token(&Token::Dot)?;
                self.expect_token(&Token::Star)?;
                projection.push(SelectItem::QualifiedWildcard(alias));
            } else {
                let expr = self.expr()?;
                let alias = self.parse_alias()?;
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_keyword("from") { Some(self.table_ref()?) } else { None };
        let where_clause = if self.eat_keyword("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("having") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, projection, from, where_clause, group_by, having })
    }

    fn parse_alias(&mut self) -> DbResult<Option<String>> {
        if self.eat_keyword("as") {
            return Ok(Some(self.expect_any_ident()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    // ---- FROM clause -----------------------------------------------------

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let join_type = if self.eat_token(&Token::Comma) {
                AstJoinType::Cross
            } else if self.at_keyword("cross") {
                self.expect_keyword("cross")?;
                self.expect_keyword("join")?;
                AstJoinType::Cross
            } else if self.at_keyword("inner") || self.at_keyword("join") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                AstJoinType::Inner
            } else if self.at_keyword("left") {
                self.expect_keyword("left")?;
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                AstJoinType::Left
            } else {
                break;
            };
            let right = self.table_primary()?;
            let constraint = if join_type == AstJoinType::Cross {
                JoinConstraint::None
            } else if self.eat_keyword("on") {
                JoinConstraint::On(self.expr()?)
            } else if self.eat_keyword("using") {
                self.expect_token(&Token::LParen)?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.expect_any_ident()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                JoinConstraint::Using(cols)
            } else {
                return Err(self.error("JOIN requires ON or USING".into()));
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                constraint,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> DbResult<TableRef> {
        if self.eat_token(&Token::LParen) {
            let query = self.query()?;
            self.expect_token(&Token::RParen)?;
            self.eat_keyword("as");
            let alias = self.expect_ident().map_err(|_| {
                self.error("derived table requires an alias: (SELECT …) alias".into())
            })?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.expect_ident()?;
        if self.peek() == Some(&Token::LParen) {
            // Table-valued function.
            self.expect_token(&Token::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    if self.peek() == Some(&Token::LParen)
                        && matches!(self.peek_at(1), Some(Token::Ident(s)) if s == "select")
                    {
                        self.expect_token(&Token::LParen)?;
                        let q = self.query()?;
                        self.expect_token(&Token::RParen)?;
                        args.push(TableFuncArg::Subquery(q));
                    } else {
                        args.push(TableFuncArg::Expr(self.expr()?));
                    }
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(&Token::RParen)?;
            let alias = self.parse_alias()?;
            return Ok(TableRef::TableFunction { name, args, alias });
        }
        let alias = self.parse_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> DbResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left =
                AstExpr::Binary { op: BinaryOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left =
                AstExpr::Binary { op: BinaryOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<AstExpr> {
        if self.eat_keyword("not") {
            let inner = self.not_expr()?;
            return Ok(AstExpr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<AstExpr> {
        let left = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, IN, LIKE, BETWEEN.
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.at_keyword("not")
            && matches!(self.peek_at(1), Some(Token::Ident(s)) if s=="in"||s=="like"||s=="between")
        {
            self.expect_keyword("not")?;
            true
        } else {
            false
        };
        if self.eat_keyword("in") {
            self.expect_token(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(AstExpr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("like") {
            let pattern = self.additive()?;
            return Ok(AstExpr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_keyword("between") {
            let low = self.additive()?;
            self.expect_keyword("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected IN, LIKE or BETWEEN after NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::NotEq) => BinaryOp::NotEq,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::LtEq) => BinaryOp::LtEq,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn additive(&mut self) -> DbResult<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<AstExpr> {
        if self.eat_token(&Token::Minus) {
            // Fold a negative numeric literal directly.
            match self.peek().cloned() {
                Some(Token::Integer(v)) => {
                    self.pos += 1;
                    return Ok(AstExpr::Literal(Value::Int64(-v)));
                }
                Some(Token::Float(v)) => {
                    self.pos += 1;
                    return Ok(AstExpr::Literal(Value::Float64(-v)));
                }
                _ => {}
            }
            let inner = self.unary()?;
            return Ok(AstExpr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Integer(v)) => {
                self.pos += 1;
                // Fit into INT32 when possible (the common literal type).
                Ok(AstExpr::Literal(if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
                    Value::Int32(v as i32)
                } else {
                    Value::Int64(v)
                }))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Float64(v)))
            }
            Some(Token::String(s)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Varchar(s)))
            }
            Some(Token::Blob(b)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Blob(b)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.at_keyword("select") {
                    let q = self.query()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(AstExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "null" => {
                    self.pos += 1;
                    Ok(AstExpr::Literal(Value::Null))
                }
                "true" => {
                    self.pos += 1;
                    Ok(AstExpr::Literal(Value::Boolean(true)))
                }
                "false" => {
                    self.pos += 1;
                    Ok(AstExpr::Literal(Value::Boolean(false)))
                }
                "cast" => {
                    self.pos += 1;
                    self.expect_token(&Token::LParen)?;
                    let e = self.expr()?;
                    self.expect_keyword("as")?;
                    let ty = self.expect_any_ident()?;
                    let dtype = DataType::from_sql_name(&ty)
                        .ok_or_else(|| self.error(format!("unknown type '{ty}'")))?;
                    self.expect_token(&Token::RParen)?;
                    Ok(AstExpr::Cast { expr: Box::new(e), to: dtype })
                }
                "case" => {
                    self.pos += 1;
                    let operand =
                        if self.at_keyword("when") { None } else { Some(Box::new(self.expr()?)) };
                    let mut branches = Vec::new();
                    while self.eat_keyword("when") {
                        let w = self.expr()?;
                        self.expect_keyword("then")?;
                        let t = self.expr()?;
                        branches.push((w, t));
                    }
                    if branches.is_empty() {
                        return Err(self.error("CASE requires at least one WHEN".into()));
                    }
                    let else_expr =
                        if self.eat_keyword("else") { Some(Box::new(self.expr()?)) } else { None };
                    self.expect_keyword("end")?;
                    Ok(AstExpr::Case { operand, branches, else_expr })
                }
                _ if RESERVED.contains(&word.as_str()) => {
                    Err(self.error(format!("unexpected keyword '{word}'")))
                }
                _ => {
                    self.pos += 1;
                    if self.eat_token(&Token::Dot) {
                        let col = self.expect_any_ident()?;
                        return Ok(AstExpr::CompoundIdent(word, col));
                    }
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        // COUNT(*) special form.
                        if self.eat_token(&Token::Star) {
                            self.expect_token(&Token::RParen)?;
                            return Ok(AstExpr::Function {
                                name: word,
                                args: Vec::new(),
                                distinct: false,
                                star: true,
                            });
                        }
                        let distinct = self.eat_keyword("distinct");
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_token(&Token::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_token(&Token::RParen)?;
                        return Ok(AstExpr::Function { name: word, args, distinct, star: false });
                    }
                    Ok(AstExpr::Ident(word))
                }
            },
            other => Err(self.error(format!(
                "expected an expression, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse(sql).unwrap() {
            Statement::Query(q) => match q.body {
                SetExpr::Select(s) => *s,
                other => panic!("expected select, got {other:?}"),
            },
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_create_table() {
        let s = parse("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR, w DOUBLE)").unwrap();
        match s {
            Statement::CreateTable { name, columns, if_not_exists } => {
                assert_eq!(name, "t");
                assert!(!if_not_exists);
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert_eq!(columns[1].dtype, DataType::Varchar);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("CREATE TABLE IF NOT EXISTS t (x INT)").unwrap(),
            Statement::CreateTable { if_not_exists: true, .. }
        ));
    }

    #[test]
    fn parses_create_table_as() {
        let s = parse("CREATE TABLE t2 AS SELECT * FROM t1").unwrap();
        assert!(matches!(s, Statement::CreateTableAs { .. }));
    }

    #[test]
    fn parses_insert_values() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match s {
            Statement::Insert { table, columns, source: InsertSource::Values(rows) } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], AstExpr::Literal(Value::Null));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_select() {
        let s = parse("INSERT INTO t SELECT a FROM u").unwrap();
        assert!(matches!(s, Statement::Insert { source: InsertSource::Query(_), .. }));
    }

    #[test]
    fn parses_select_with_everything() {
        let s = sel("SELECT DISTINCT a, t.b AS bb, COUNT(*) c FROM t WHERE a > 1 \
             GROUP BY a, t.b HAVING COUNT(*) > 2");
        assert!(s.distinct);
        assert_eq!(s.projection.len(), 3);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 2);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_joins() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c USING (z)");
        match s.from.unwrap() {
            TableRef::Join { join_type, constraint, left, .. } => {
                assert_eq!(join_type, AstJoinType::Left);
                assert!(matches!(constraint, JoinConstraint::Using(_)));
                assert!(matches!(*left, TableRef::Join { .. }));
            }
            other => panic!("{other:?}"),
        }
        let s = sel("SELECT * FROM a, b");
        assert!(matches!(s.from.unwrap(), TableRef::Join { join_type: AstJoinType::Cross, .. }));
    }

    #[test]
    fn parses_table_function_with_subquery_args() {
        let s =
            sel("SELECT * FROM train((SELECT age FROM voters), (SELECT label FROM voters), 16)");
        match s.from.unwrap() {
            TableRef::TableFunction { name, args, .. } => {
                assert_eq!(name, "train");
                assert_eq!(args.len(), 3);
                assert!(matches!(args[0], TableFuncArg::Subquery(_)));
                assert!(matches!(args[2], TableFuncArg::Expr(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scalar_subquery() {
        let s = sel("SELECT predict(age, (SELECT model FROM models LIMIT 1)) FROM voters");
        match &s.projection[0] {
            SelectItem::Expr { expr: AstExpr::Function { name, args, .. }, .. } => {
                assert_eq!(name, "predict");
                assert!(matches!(args[1], AstExpr::ScalarSubquery(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_order_limit_offset() {
        let q = match parse("SELECT a FROM t ORDER BY a DESC NULLS LAST, 2 LIMIT 10 OFFSET 5")
            .unwrap()
        {
            Statement::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.order_by[0].nulls_first, Some(false));
        assert_eq!(q.limit, Some(AstExpr::Literal(Value::Int32(10))));
        assert_eq!(q.offset, Some(AstExpr::Literal(Value::Int32(5))));
    }

    #[test]
    fn parses_union_all() {
        let q = match parse("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3").unwrap() {
            Statement::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(matches!(q.body, SetExpr::UnionAll(_, _)));
    }

    #[test]
    fn parses_predicates() {
        let s = sel("SELECT * FROM t WHERE a IS NOT NULL AND b NOT IN (1,2) AND c LIKE 'x%' AND d BETWEEN 1 AND 5");
        assert!(s.where_clause.is_some());
        let s = sel("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
        assert!(matches!(s.where_clause.unwrap(), AstExpr::Unary { op: UnaryOp::Not, .. }));
    }

    #[test]
    fn parses_case() {
        let s = sel("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t");
        assert!(matches!(&s.projection[0], SelectItem::Expr { expr: AstExpr::Case { .. }, .. }));
        let s = sel("SELECT CASE a WHEN 1 THEN 'one' END FROM t");
        match &s.projection[0] {
            SelectItem::Expr { expr: AstExpr::Case { operand, .. }, .. } => {
                assert!(operand.is_some())
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        match &s.projection[0] {
            SelectItem::Expr { expr: AstExpr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let s = sel("SELECT -5, -2.5 FROM t");
        assert!(matches!(
            &s.projection[0],
            SelectItem::Expr { expr: AstExpr::Literal(Value::Int64(-5)), .. }
        ));
    }

    #[test]
    fn parse_many_statements() {
        let stmts =
            parse_many("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELEC 1").is_err());
        assert!(parse("SELECT 1 extra garbage ,").is_err());
        assert!(parse("CREATE TABLE t (x NOSUCHTYPE)").is_err());
        assert!(parse("SELECT * FROM (SELECT 1)").is_err()); // missing alias
        assert!(parse("SELECT * FROM a JOIN b").is_err()); // missing ON
    }

    #[test]
    fn show_statements() {
        assert_eq!(parse("SHOW TABLES").unwrap(), Statement::ShowTables);
        assert_eq!(parse("SHOW FUNCTIONS").unwrap(), Statement::ShowFunctions);
        assert!(matches!(
            parse("DROP FUNCTION IF EXISTS train").unwrap(),
            Statement::DropFunction { if_exists: true, .. }
        ));
    }

    #[test]
    fn durability_statements() {
        assert_eq!(parse("CHECKPOINT").unwrap(), Statement::Checkpoint);
        assert_eq!(parse("checkpoint;").unwrap(), Statement::Checkpoint);
        assert_eq!(
            parse("SAVE '/tmp/snap'").unwrap(),
            Statement::Save { path: "/tmp/snap".into() }
        );
        assert!(parse("SAVE").is_err()); // missing path
        assert!(parse("SAVE snapdir").is_err()); // path must be quoted
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("DELETE FROM t WHERE x = 1").unwrap(),
            Statement::Delete { filter: Some(_), .. }
        ));
        match parse("UPDATE t SET a = 1, b = b + 1 WHERE c > 0").unwrap() {
            Statement::Update { assignments, filter, .. } => {
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
