//! SQL lexer.

use crate::error::{DbError, DbResult};
use crate::sql::token::Token;

/// Tokenizes SQL text.
///
/// * Identifiers are lower-cased (the dialect treats them
///   case-insensitively and has no quoted identifiers).
/// * String literals use single quotes with `''` as the escape for a quote.
/// * Blob literals are written `x'68656c6c6f'`.
/// * `--` starts a line comment; `/* ... */` is a block comment.
pub fn tokenize(sql: &str) -> DbResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let err = |msg: String, pos: usize| DbError::Lex { message: msg, position: pos };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment".into(), start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '.' if !bytes.get(i + 1).map(|b| b.is_ascii_digit()).unwrap_or(false) => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Concat);
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal".into(), start));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Consume one full UTF-8 character.
                        let rest = &sql[i..];
                        let ch = rest.chars().next().expect("in range");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token::String(s));
            }
            'x' | 'X' if bytes.get(i + 1) == Some(&b'\'') => {
                let start = i;
                i += 2;
                let hex_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err("unterminated blob literal".into(), start));
                }
                let hex = &sql[hex_start..i];
                i += 1;
                if !hex.len().is_multiple_of(2) {
                    return Err(err(
                        "blob literal must have an even number of hex digits".into(),
                        start,
                    ));
                }
                let mut blob = Vec::with_capacity(hex.len() / 2);
                for pair in hex.as_bytes().chunks(2) {
                    let s = std::str::from_utf8(pair).expect("ascii hex");
                    let byte = u8::from_str_radix(s, 16).map_err(|_| {
                        err(format!("invalid hex digits '{s}' in blob literal"), start)
                    })?;
                    blob.push(byte);
                }
                out.push(Token::Blob(blob));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E')
                        && !saw_exp
                        && i > start
                        && bytes
                            .get(i + 1)
                            .map(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
                            .unwrap_or(false)
                    {
                        saw_exp = true;
                        i += 1;
                        if bytes[i] == b'+' || bytes[i] == b'-' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &sql[start..i];
                if saw_dot || saw_exp {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| err(format!("invalid number '{text}'"), start))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| err(format!("integer '{text}' out of range"), start))?;
                    out.push(Token::Integer(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(err(format!("unexpected character '{other}'"), i));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT x, 42 FROM t WHERE y >= 1.5;").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Ident("x".into()),
                Token::Comma,
                Token::Integer(42),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("y".into()),
                Token::GtEq,
                Token::Float(1.5),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("'it''s' 'ünïcode'").unwrap();
        assert_eq!(t, vec![Token::String("it's".into()), Token::String("ünïcode".into())]);
    }

    #[test]
    fn blob_literals() {
        let t = tokenize("x'DEADbeef'").unwrap();
        assert_eq!(t, vec![Token::Blob(vec![0xDE, 0xAD, 0xBE, 0xEF])]);
        assert!(tokenize("x'abc'").is_err());
        assert!(tokenize("x'zz'").is_err());
        // x followed by non-quote is an identifier
        let t = tokenize("xyz").unwrap();
        assert_eq!(t, vec![Token::Ident("xyz".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("1 -- comment\n 2 /* block\nspans */ 3").unwrap();
        assert_eq!(t, vec![Token::Integer(1), Token::Integer(2), Token::Integer(3)]);
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn operators() {
        let t = tokenize("a<>b != c || d <= e").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::NotEq,
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Ident("c".into()),
                Token::Concat,
                Token::Ident("d".into()),
                Token::LtEq,
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 .5 1e3 2.5e-2 7.").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Integer(1),
                Token::Float(2.5),
                Token::Float(0.5),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Float(7.0),
            ]
        );
    }

    #[test]
    fn compound_idents() {
        let t = tokenize("t.col").unwrap();
        assert_eq!(t, vec![Token::Ident("t".into()), Token::Dot, Token::Ident("col".into())]);
    }

    #[test]
    fn errors_carry_position() {
        match tokenize("select @") {
            Err(DbError::Lex { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn unterminated_string_is_error_not_panic() {
        assert!(tokenize("x'").is_err());
    }
}
