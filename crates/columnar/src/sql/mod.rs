//! The SQL front-end: lexer → parser → binder → executor.
//!
//! The dialect is a practical subset modeled on MonetDB's:
//!
//! * `CREATE TABLE [IF NOT EXISTS] t (col TYPE [NOT NULL], …)`
//! * `CREATE TABLE t AS SELECT …`
//! * `DROP TABLE [IF EXISTS] t`, `DROP FUNCTION [IF EXISTS] f`
//! * `INSERT INTO t [(cols)] VALUES (…), …` and `INSERT INTO t SELECT …`
//! * `DELETE FROM t [WHERE …]`, `UPDATE t SET c = e, … [WHERE …]`
//! * `SELECT [DISTINCT] … FROM … [JOIN … ON/USING …] [WHERE …]
//!    [GROUP BY …] [HAVING …] [UNION ALL …] [ORDER BY …] [LIMIT/OFFSET]`
//! * Derived tables `(SELECT …) alias`, scalar subqueries, and
//!   **table-valued UDF calls** in `FROM` — `SELECT * FROM train((SELECT …), 16)`
//!   — the hook the ML integration uses.
//! * `SHOW TABLES`, `SHOW FUNCTIONS`

pub mod ast;
pub mod binder;
pub mod estimate;
pub mod execute;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod plan_cache;
pub mod token;

pub use binder::bind;
pub use execute::{
    execute_plan, execute_plan_with, substitute_in_plan, ExecOptions, DEFAULT_PARALLEL_THRESHOLD,
};
pub use optimizer::optimize;
pub use parser::{parse, parse_many};
pub use plan::{BoundStatement, LogicalPlan};
pub use plan_cache::{CacheStamp, CachedQuery, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
