//! Logical query plans: bound, positionally-resolved operator trees.

use crate::exec::{AggFunc, JoinType};
use crate::expr::Expr;
use crate::schema::Schema;
use std::fmt;
use std::sync::Arc;

/// One bound aggregate call inside an [`LogicalPlan::Aggregate`].
#[derive(Debug, Clone)]
pub struct PlanAgg {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression over the aggregate input (`None` for COUNT(*)).
    pub arg: Option<Expr>,
    /// `agg(DISTINCT …)`.
    pub distinct: bool,
}

/// One bound sort key inside an [`LogicalPlan::Sort`].
#[derive(Debug, Clone, Copy)]
pub struct PlanSortKey {
    /// Column index into the sort input.
    pub column: usize,
    /// Ascending?
    pub ascending: bool,
    /// NULLs first?
    pub nulls_first: bool,
}

/// A bound argument to a table-valued function.
#[derive(Debug, Clone)]
pub enum BoundTableArg {
    /// A constant scalar expression (no column references).
    Scalar(Expr),
    /// A subplan whose result columns are passed as whole-column arguments.
    Plan(LogicalPlan),
}

/// A bound logical plan. Every node knows its output schema.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a named table.
    Scan {
        /// Table name (resolved at execution from the catalog).
        table: String,
        /// Snapshot of the table's schema at bind time.
        schema: Arc<Schema>,
    },
    /// Invoke a table-valued UDF (the paper's `train`).
    TableFunction {
        /// Registered function name.
        name: String,
        /// Bound arguments.
        args: Vec<BoundTableArg>,
        /// Declared output schema.
        schema: Arc<Schema>,
    },
    /// A one-row, zero-visible-column relation (`SELECT 1`).
    UnitRow,
    /// Keep rows where the predicate is TRUE.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input columns.
        predicate: Expr,
    },
    /// Compute expressions over the input.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Output schema (names + inferred types).
        schema: Arc<Schema>,
    },
    /// Hash join.
    Join {
        /// Probe side.
        left: Box<LogicalPlan>,
        /// Build side.
        right: Box<LogicalPlan>,
        /// Inner / Left / Cross.
        join_type: JoinType,
        /// Equi-key columns on the left input.
        left_keys: Vec<usize>,
        /// Equi-key columns on the right input.
        right_keys: Vec<usize>,
        /// Non-equi residual condition applied post-join (inner only).
        residual: Option<Expr>,
        /// Build the hash table on the *left* input instead of the right.
        /// Set by the cost-based optimizer when the left side is estimated
        /// to be much smaller; the executor restores canonical row order,
        /// so flipping this bit never changes results. Inner/Left only.
        build_left: bool,
        /// Output schema: left fields then right fields.
        schema: Arc<Schema>,
    },
    /// Hash aggregation. Output columns: group keys, then aggregates.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-key expressions over the input.
        group: Vec<Expr>,
        /// Aggregate calls.
        aggs: Vec<PlanAgg>,
        /// Output schema (named group keys + named aggregates).
        schema: Arc<Schema>,
    },
    /// Stable multi-key sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input columns.
        keys: Vec<PlanSortKey>,
    },
    /// Row-count limiting.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Max rows, if bounded.
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Concatenation of same-shape inputs.
    UnionAll {
        /// The branches (at least one).
        inputs: Vec<LogicalPlan>,
        /// Common output schema.
        schema: Arc<Schema>,
    },
}

impl LogicalPlan {
    /// The plan's output schema.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::TableFunction { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::UnionAll { schema, .. } => schema.clone(),
            LogicalPlan::UnitRow => Schema::empty(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// A short operator label used in verifier diagnostics and plan paths
    /// (`"Scan(t)"`, `"Project"`, …).
    pub fn node_name(&self) -> String {
        match self {
            LogicalPlan::Scan { table, .. } => format!("Scan({table})"),
            LogicalPlan::TableFunction { name, .. } => format!("TableFunction({name})"),
            LogicalPlan::UnitRow => "UnitRow".to_owned(),
            LogicalPlan::Filter { .. } => "Filter".to_owned(),
            LogicalPlan::Project { .. } => "Project".to_owned(),
            LogicalPlan::Join { join_type, .. } => format!("Join({join_type:?})"),
            LogicalPlan::Aggregate { .. } => "Aggregate".to_owned(),
            LogicalPlan::Sort { .. } => "Sort".to_owned(),
            LogicalPlan::Limit { .. } => "Limit".to_owned(),
            LogicalPlan::Distinct { .. } => "Distinct".to_owned(),
            LogicalPlan::UnionAll { .. } => "UnionAll".to_owned(),
        }
    }

    /// The operator's direct plan inputs, including table-function argument
    /// subplans. Leaves return an empty list.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::UnitRow => Vec::new(),
            LogicalPlan::TableFunction { args, .. } => args
                .iter()
                .filter_map(|a| match a {
                    BoundTableArg::Plan(p) => Some(p),
                    BoundTableArg::Scalar(_) => None,
                })
                .collect(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::UnionAll { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Renders the plan tree with a per-node annotation appended to each
    /// node's head line — e.g. the optimizer's `" [parallel]"` marker in
    /// `EXPLAIN` output. Plain `Display` is `display_with(&|_| None)`.
    pub fn display_with(&self, ann: &dyn Fn(&LogicalPlan) -> Option<String>) -> String {
        let mut out = String::new();
        // Writing into a String is infallible.
        let _ = self.push_lines(&mut out, 0, ann);
        out
    }

    fn push_lines(
        &self,
        f: &mut dyn fmt::Write,
        indent: usize,
        ann: &dyn Fn(&LogicalPlan) -> Option<String>,
    ) -> fmt::Result {
        let pad = "  ".repeat(indent);
        let sfx = ann(self).unwrap_or_default();
        match self {
            LogicalPlan::Scan { table, .. } => writeln!(f, "{pad}Scan {table}{sfx}"),
            LogicalPlan::TableFunction { name, args, .. } => {
                writeln!(f, "{pad}TableFunction {name} ({} args){sfx}", args.len())?;
                for a in args {
                    if let BoundTableArg::Plan(p) = a {
                        p.push_lines(f, indent + 1, ann)?;
                    }
                }
                Ok(())
            }
            LogicalPlan::UnitRow => writeln!(f, "{pad}UnitRow{sfx}"),
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}{sfx}")?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Project { input, exprs, schema } => {
                write!(f, "{pad}Project ")?;
                for (i, (e, fld)) in exprs.iter().zip(schema.fields()).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e} AS {}", fld.name)?;
                }
                writeln!(f, "{sfx}")?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Join {
                left, right, join_type, left_keys, right_keys, build_left, ..
            } => {
                let side = if *build_left { " [build=left]" } else { "" };
                writeln!(
                    f,
                    "{pad}Join {join_type:?} on {left_keys:?} = {right_keys:?}{side}{sfx}"
                )?;
                left.push_lines(f, indent + 1, ann)?;
                right.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Aggregate { input, group, aggs, .. } => {
                writeln!(f, "{pad}Aggregate groups={} aggs={}{sfx}", group.len(), aggs.len())?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Sort { input, keys } => {
                writeln!(f, "{pad}Sort {} keys{sfx}", keys.len())?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Limit { input, limit, offset } => {
                writeln!(f, "{pad}Limit {limit:?} offset {offset}{sfx}")?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::Distinct { input } => {
                writeln!(f, "{pad}Distinct{sfx}")?;
                input.push_lines(f, indent + 1, ann)
            }
            LogicalPlan::UnionAll { inputs, .. } => {
                writeln!(f, "{pad}UnionAll{sfx}")?;
                for i in inputs {
                    i.push_lines(f, indent + 1, ann)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.push_lines(f, 0, &|_| None)
    }
}

/// A fully bound statement ready for execution.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Schema.
        schema: Arc<Schema>,
        /// Suppress already-exists.
        if_not_exists: bool,
    },
    /// `CREATE TABLE AS`.
    CreateTableAs {
        /// Table name.
        name: String,
        /// Source plan.
        plan: LogicalPlan,
        /// Uncorrelated scalar subqueries referenced by the plan.
        scalar_subs: Vec<LogicalPlan>,
        /// Suppress already-exists.
        if_not_exists: bool,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
        /// Suppress missing-table.
        if_exists: bool,
    },
    /// `INSERT ... VALUES` with constant rows already evaluated.
    InsertValues {
        /// Target table.
        table: String,
        /// Column positions in the target table, per provided value.
        column_map: Vec<usize>,
        /// Constant rows (in provided-column order).
        rows: Vec<Vec<crate::types::Value>>,
    },
    /// `INSERT ... SELECT`.
    InsertQuery {
        /// Target table.
        table: String,
        /// Column positions in the target table.
        column_map: Vec<usize>,
        /// Source plan.
        plan: LogicalPlan,
        /// Scalar subqueries.
        scalar_subs: Vec<LogicalPlan>,
    },
    /// `DELETE`.
    Delete {
        /// Target table.
        table: String,
        /// Predicate over the table's columns; `None` = all rows.
        filter: Option<Expr>,
        /// Scalar subqueries.
        scalar_subs: Vec<LogicalPlan>,
    },
    /// `UPDATE`.
    Update {
        /// Target table.
        table: String,
        /// `(column index, value expression)` pairs.
        assignments: Vec<(usize, Expr)>,
        /// Predicate; `None` = all rows.
        filter: Option<Expr>,
        /// Scalar subqueries.
        scalar_subs: Vec<LogicalPlan>,
    },
    /// A query.
    Query {
        /// The plan.
        plan: LogicalPlan,
        /// Scalar subqueries.
        scalar_subs: Vec<LogicalPlan>,
    },
    /// `EXPLAIN`: render the optimized plan instead of executing it. With
    /// `analyze`, the query also runs and each operator line reports its
    /// observed input/output rows, wall time, and whether the parallel path
    /// actually engaged.
    Explain {
        /// The plan to describe.
        plan: LogicalPlan,
        /// Scalar subqueries (listed under plain `EXPLAIN`, executed and
        /// substituted under `EXPLAIN ANALYZE`).
        scalar_subs: Vec<LogicalPlan>,
        /// Whether to execute the plan and annotate runtime statistics.
        analyze: bool,
    },
    /// `SHOW TABLES`.
    ShowTables,
    /// `SHOW FUNCTIONS`.
    ShowFunctions,
    /// `DROP FUNCTION`.
    DropFunction {
        /// Function name.
        name: String,
        /// Suppress missing-function.
        if_exists: bool,
    },
    /// `CHECKPOINT`: fold the write-ahead log into the page base.
    Checkpoint,
    /// `SAVE 'dir'`: whole-file snapshot into a directory.
    Save {
        /// Target directory.
        path: String,
    },
}
