//! Cardinality estimation over live column statistics.
//!
//! Walks a bound [`LogicalPlan`] bottom-up, seeding each [`Scan`] leaf
//! from the catalog's per-table [`TableStats`] and propagating estimated
//! row counts (and, where column identity survives, per-column
//! [`ColumnStats`]) through the operators above. The cost-based passes in
//! [`crate::sql::optimizer`] consume [`estimate_rows`] to pick join
//! build sides and orders; `EXPLAIN ANALYZE` consumes [`estimate_map`]
//! to print `est=N` next to actual rows so estimation error is visible.
//!
//! Estimates are heuristic and deliberately cheap — no sampling, no
//! histograms. Unknown quantities surface as `None` rather than a made-up
//! number, and callers treat `None` as "large" so a missing estimate can
//! never *cause* a rewrite.
//!
//! [`Scan`]: LogicalPlan::Scan
//! [`TableStats`]: crate::stats::TableStats

use crate::catalog::Catalog;
use crate::exec::JoinType;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::sql::plan::LogicalPlan;
use crate::stats::ColumnStats;
use crate::types::Value;
use std::collections::HashMap;

/// Default selectivity for predicates the heuristics don't recognize.
const DEFAULT_SELECTIVITY: f64 = 0.25;
/// Default selectivity for an equality against an unknown-NDV column.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity for range comparisons without usable min/max.
const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Assumed group count divisor for group keys without NDV stats.
const DEFAULT_GROUP_DIVISOR: u64 = 10;

/// The estimate propagated for one plan node: an output row count (when
/// derivable) and, for nodes that preserve column identity, the column
/// statistics of each output column (`None` for computed columns).
struct NodeEst {
    rows: Option<u64>,
    cols: Vec<Option<ColumnStats>>,
}

impl NodeEst {
    fn unknown(width: usize) -> NodeEst {
        NodeEst { rows: None, cols: vec![None; width] }
    }
}

/// Estimated output rows for every node of `plan`, keyed by node address
/// (the same key [`crate::sql::execute::PlanTrace`] uses). Nodes without
/// a derivable estimate are absent.
pub fn estimate_map(plan: &LogicalPlan, catalog: &Catalog) -> HashMap<usize, u64> {
    let mut out = HashMap::new();
    estimate_node(plan, catalog, &mut out);
    out
}

/// Estimated output rows for `plan`'s root, if derivable from stats.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> Option<u64> {
    let mut scratch = HashMap::new();
    estimate_node(plan, catalog, &mut scratch).rows
}

/// Collects the names of every table `plan` scans (with duplicates, in
/// plan order) — the plan cache stamps cached entries with these tables'
/// current row counts to detect growth drift.
pub fn scan_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    if let LogicalPlan::Scan { table, .. } = plan {
        out.push(table.clone());
    }
    for child in plan.children() {
        scan_tables(child, out);
    }
}

fn key_of(plan: &LogicalPlan) -> usize {
    plan as *const LogicalPlan as usize
}

/// The recursive estimator. Records every node's estimate into `map` as a
/// side effect and returns the node's [`NodeEst`] for the parent.
fn estimate_node(plan: &LogicalPlan, catalog: &Catalog, map: &mut HashMap<usize, u64>) -> NodeEst {
    let est = match plan {
        LogicalPlan::Scan { table, schema } => match catalog.table(table) {
            Ok(t) => {
                let guard = t.read();
                let stats = guard.stats();
                let cols: Vec<Option<ColumnStats>> =
                    (0..schema.len()).map(|i| stats.column(i).cloned()).collect();
                NodeEst { rows: Some(stats.rows()), cols }
            }
            Err(_) => NodeEst::unknown(schema.len()),
        },
        LogicalPlan::UnitRow => NodeEst { rows: Some(1), cols: Vec::new() },
        LogicalPlan::TableFunction { schema, .. } => {
            // Output size is up to the UDF; still recurse into plan-valued
            // arguments so their nodes land in the map.
            for child in plan.children() {
                estimate_node(child, catalog, map);
            }
            NodeEst::unknown(schema.len())
        }
        LogicalPlan::Filter { input, predicate } => {
            let inp = estimate_node(input, catalog, map);
            let rows = inp.rows.map(|r| apply_selectivity(r, selectivity(predicate, &inp.cols)));
            // Column stats survive a filter structurally (same columns),
            // but min/max/NDV may now overstate; that is the standard
            // conservative choice.
            NodeEst { rows, cols: inp.cols }
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let inp = estimate_node(input, catalog, map);
            let cols = exprs
                .iter()
                .map(|e| match e {
                    Expr::Column(i) => inp.cols.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect();
            NodeEst { rows: inp.rows, cols }
        }
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys, .. } => {
            let l = estimate_node(left, catalog, map);
            let r = estimate_node(right, catalog, map);
            let rows = join_rows(&l, &r, *join_type, left_keys, right_keys);
            let mut cols = l.cols;
            cols.extend(r.cols);
            NodeEst { rows, cols }
        }
        LogicalPlan::Aggregate { input, group, aggs: _, schema } => {
            let inp = estimate_node(input, catalog, map);
            let rows = if group.is_empty() {
                Some(1)
            } else {
                inp.rows.map(|r| {
                    let mut groups: u64 = 1;
                    for g in group {
                        let ndv = match g {
                            Expr::Column(i) => {
                                inp.cols.get(*i).and_then(|c| c.as_ref()).map(|c| c.ndv())
                            }
                            _ => None,
                        };
                        let per_key =
                            ndv.unwrap_or_else(|| (r / DEFAULT_GROUP_DIVISOR).max(1)).max(1);
                        groups = groups.saturating_mul(per_key);
                    }
                    groups.min(r.max(1))
                })
            };
            NodeEst { rows, cols: vec![None; schema.len()] }
        }
        LogicalPlan::Sort { input, .. } => estimate_node(input, catalog, map),
        LogicalPlan::Limit { input, limit, offset } => {
            let inp = estimate_node(input, catalog, map);
            let rows = inp.rows.map(|r| {
                let after_offset = r.saturating_sub(*offset as u64);
                match limit {
                    Some(l) => after_offset.min(*l as u64),
                    None => after_offset,
                }
            });
            NodeEst { rows, cols: inp.cols }
        }
        LogicalPlan::Distinct { input } => {
            // Without multi-column NDV there is no good distinct estimate;
            // pass rows through as an upper bound.
            estimate_node(input, catalog, map)
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let mut total: Option<u64> = Some(0);
            for p in inputs {
                let e = estimate_node(p, catalog, map);
                total = match (total, e.rows) {
                    (Some(t), Some(r)) => Some(t.saturating_add(r)),
                    _ => None,
                };
            }
            NodeEst { rows: total, cols: vec![None; schema.len()] }
        }
    };
    if let Some(r) = est.rows {
        map.insert(key_of(plan), r);
    }
    est
}

/// Join output estimate. Equi-joins use the textbook independence
/// formula `|L|·|R| / max(ndv_L, ndv_R)` per key pair; LEFT join output
/// is at least the left input; cross joins are the full product.
fn join_rows(
    l: &NodeEst,
    r: &NodeEst,
    join_type: JoinType,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Option<u64> {
    let lr = l.rows?;
    let rr = r.rows?;
    if join_type == JoinType::Cross || left_keys.is_empty() {
        return Some(lr.saturating_mul(rr));
    }
    let mut denom: u128 = 1;
    let mut any_ndv = false;
    for (lk, rk) in left_keys.iter().zip(right_keys) {
        let ln = l.cols.get(*lk).and_then(|c| c.as_ref()).map(|c| c.ndv());
        let rn = r.cols.get(*rk).and_then(|c| c.as_ref()).map(|c| c.ndv());
        let d = match (ln, rn) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => continue,
        };
        any_ndv = true;
        denom = denom.saturating_mul(u128::from(d.max(1)));
    }
    let mut est = if any_ndv {
        let product = u128::from(lr) * u128::from(rr);
        u64::try_from(product / denom.max(1)).unwrap_or(u64::MAX)
    } else {
        // No key stats on either side: assume a key-foreign-key join and
        // take the larger input as the estimate.
        lr.max(rr)
    };
    if join_type == JoinType::Left {
        est = est.max(lr);
    }
    Some(est)
}

/// Applies a selectivity fraction to a row count, keeping at least one
/// row for non-empty inputs so downstream estimates never divide by zero.
fn apply_selectivity(rows: u64, sel: f64) -> u64 {
    if rows == 0 {
        return 0;
    }
    let est = (rows as f64 * sel.clamp(0.0, 1.0)).round() as u64;
    est.clamp(1, rows)
}

/// Heuristic selectivity of `predicate` over columns with stats `cols`.
/// Always in `[0, 1]`; unrecognized shapes fall back to
/// [`DEFAULT_SELECTIVITY`].
pub(crate) fn selectivity(predicate: &Expr, cols: &[Option<ColumnStats>]) -> f64 {
    match predicate {
        Expr::Literal(Value::Boolean(true)) => 1.0,
        Expr::Literal(Value::Boolean(false)) | Expr::Literal(Value::Null) => 0.0,
        Expr::Binary { op: BinaryOp::And, left, right } => {
            // Independence assumption.
            selectivity(left, cols) * selectivity(right, cols)
        }
        Expr::Binary { op: BinaryOp::Or, left, right } => {
            let a = selectivity(left, cols);
            let b = selectivity(right, cols);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::Binary { op, left, right } if is_comparison(*op) => {
            comparison_selectivity(*op, left, right, cols)
        }
        Expr::Unary { op: UnaryOp::Not, expr } => 1.0 - selectivity(expr, cols),
        Expr::IsNull { expr, negated } => match column_stats(expr, cols) {
            Some(st) => {
                let f = st.null_fraction();
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
            None => DEFAULT_EQ_SELECTIVITY,
        },
        Expr::Between { expr, low, high, negated } => {
            let inside = between_selectivity(expr, low, high, cols);
            if *negated {
                (1.0 - inside).clamp(0.0, 1.0)
            } else {
                inside
            }
        }
        Expr::InList { expr, list, negated } => {
            let n = list.len() as f64;
            let inside = match column_stats(expr, cols) {
                Some(st) if st.ndv() > 0 => (n / st.ndv() as f64).min(1.0),
                _ => (n * DEFAULT_EQ_SELECTIVITY).min(1.0),
            };
            if *negated {
                (1.0 - inside).clamp(0.0, 1.0)
            } else {
                inside
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn is_comparison(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
    )
}

/// Stats for a bare column reference, when the expression is one.
fn column_stats<'a>(expr: &Expr, cols: &'a [Option<ColumnStats>]) -> Option<&'a ColumnStats> {
    match expr {
        Expr::Column(i) => cols.get(*i).and_then(|c| c.as_ref()),
        _ => None,
    }
}

/// A literal value, when the expression is one.
fn literal(expr: &Expr) -> Option<&Value> {
    match expr {
        Expr::Literal(v) if !v.is_null() => Some(v),
        _ => None,
    }
}

/// Selectivity of `col <op> lit` (either operand order) from min/max
/// range position and NDV.
fn comparison_selectivity(
    op: BinaryOp,
    left: &Expr,
    right: &Expr,
    cols: &[Option<ColumnStats>],
) -> f64 {
    // Normalize to column-on-the-left; mirror the operator when the
    // literal is on the left instead.
    let (st, lit, op) = match (column_stats(left, cols), literal(right)) {
        (Some(st), Some(v)) => (Some(st), Some(v), op),
        _ => match (literal(left), column_stats(right, cols)) {
            (Some(v), Some(st)) => (Some(st), Some(v), mirror(op)),
            _ => (None, None, op),
        },
    };
    let (st, lit) = match (st, lit) {
        (Some(s), Some(v)) => (s, v),
        _ => {
            return match op {
                BinaryOp::Eq => DEFAULT_EQ_SELECTIVITY,
                BinaryOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                _ => DEFAULT_RANGE_SELECTIVITY,
            }
        }
    };
    match op {
        BinaryOp::Eq => match st.min_max() {
            // A literal outside the observed range matches nothing.
            Some((min, max)) if out_of_range(lit, min, max) => 0.0,
            _ => {
                if st.ndv() > 0 {
                    (1.0 / st.ndv() as f64).min(1.0)
                } else {
                    0.0
                }
            }
        },
        BinaryOp::NotEq => {
            if st.ndv() > 0 {
                (1.0 - 1.0 / st.ndv() as f64).clamp(0.0, 1.0)
            } else {
                0.0
            }
        }
        BinaryOp::Lt | BinaryOp::LtEq => range_fraction(st, lit, true),
        BinaryOp::Gt | BinaryOp::GtEq => range_fraction(st, lit, false),
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Whether `lit` falls strictly outside `[min, max]` under SQL ordering.
/// Incomparable pairs (cross-type) return false (no conclusion).
fn out_of_range(lit: &Value, min: &Value, max: &Value) -> bool {
    let below = matches!(lit.sql_cmp(min), Some(std::cmp::Ordering::Less));
    let above = matches!(lit.sql_cmp(max), Some(std::cmp::Ordering::Greater));
    below || above
}

/// The fraction of the column's `[min, max]` numeric span below (or
/// above) `lit`, assuming a uniform distribution. Non-numeric or
/// degenerate ranges fall back to [`DEFAULT_RANGE_SELECTIVITY`].
fn range_fraction(st: &ColumnStats, lit: &Value, below: bool) -> f64 {
    let (min, max) = match st.min_max() {
        Some(mm) => mm,
        None => return DEFAULT_RANGE_SELECTIVITY,
    };
    let (min_f, max_f, lit_f) = match (min.as_f64(), max.as_f64(), lit.as_f64()) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => return DEFAULT_RANGE_SELECTIVITY,
    };
    if !min_f.is_finite() || !max_f.is_finite() || !lit_f.is_finite() {
        return DEFAULT_RANGE_SELECTIVITY;
    }
    if lit_f <= min_f {
        return if below { 0.0 } else { 1.0 };
    }
    if lit_f >= max_f {
        return if below { 1.0 } else { 0.0 };
    }
    let span = max_f - min_f;
    if span <= 0.0 {
        return DEFAULT_RANGE_SELECTIVITY;
    }
    let frac = (lit_f - min_f) / span;
    if below {
        frac
    } else {
        1.0 - frac
    }
}

/// Selectivity of `expr BETWEEN low AND high` as the overlap of the
/// literal range with the column's observed range.
fn between_selectivity(expr: &Expr, low: &Expr, high: &Expr, cols: &[Option<ColumnStats>]) -> f64 {
    let st = match column_stats(expr, cols) {
        Some(s) => s,
        None => return DEFAULT_RANGE_SELECTIVITY,
    };
    match (literal(low), literal(high)) {
        (Some(lo), Some(hi)) => {
            // `x BETWEEN lo AND hi` == `x >= lo AND x <= hi`; multiply the
            // complement-free fractions via the range positions.
            let below_hi = range_fraction(st, hi, true);
            let below_lo = range_fraction(st, lo, true);
            (below_hi - below_lo).clamp(0.0, 1.0)
        }
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

/// Mirrors a comparison for operand swap (`lit < col` → `col > lit`).
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::exec::AggFunc;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;
    use std::sync::Arc;

    fn catalog_with(name: &str, cols: Vec<(&str, Column)>) -> Catalog {
        let catalog = Catalog::new();
        let schema = Arc::new(Schema::new_unchecked(
            cols.iter().map(|(n, c)| Field::new(*n, c.data_type())).collect(),
        ));
        catalog.create_table(name, schema).unwrap();
        let batch = crate::batch::Batch::from_columns(cols).unwrap();
        catalog.table(name).unwrap().write().append_batch(&batch).unwrap();
        catalog
    }

    fn scan(catalog: &Catalog, name: &str) -> LogicalPlan {
        let schema = catalog.table(name).unwrap().read().schema().clone();
        LogicalPlan::Scan { table: name.to_owned(), schema }
    }

    #[test]
    fn scan_estimate_is_exact_row_count() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s((0..100).collect()))]);
        let plan = scan(&catalog, "t");
        assert_eq!(estimate_rows(&plan, &catalog), Some(100));
    }

    #[test]
    fn equality_filter_uses_ndv() {
        let catalog =
            catalog_with("t", vec![("x", Column::from_i32s((0..1000).map(|i| i % 10).collect()))]);
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&catalog, "t")),
            predicate: Expr::binary(BinaryOp::Eq, Expr::col(0), Expr::lit(3i32)),
        };
        // 10 distinct values over 1000 rows → ~100 rows.
        let est = estimate_rows(&plan, &catalog).unwrap();
        assert!((80..=120).contains(&est), "est {est} not near 100");
    }

    #[test]
    fn out_of_range_equality_estimates_zero_survivors_floor_one() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s((0..100).collect()))]);
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&catalog, "t")),
            predicate: Expr::binary(BinaryOp::Eq, Expr::col(0), Expr::lit(100_000i32)),
        };
        // Selectivity 0 floors at one row for non-empty inputs.
        assert_eq!(estimate_rows(&plan, &catalog), Some(1));
    }

    #[test]
    fn range_filter_tracks_fraction() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s((0..1000).collect()))]);
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&catalog, "t")),
            predicate: Expr::binary(BinaryOp::Lt, Expr::col(0), Expr::lit(250i32)),
        };
        let est = estimate_rows(&plan, &catalog).unwrap();
        assert!((200..=300).contains(&est), "est {est} not near 250");
    }

    #[test]
    fn ungrouped_aggregate_estimates_one_row() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s((0..50).collect()))]);
        let schema = Arc::new(Schema::new_unchecked(vec![Field::new("n", DataType::Int64)]));
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(&catalog, "t")),
            group: vec![],
            aggs: vec![crate::sql::plan::PlanAgg {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
            schema,
        };
        assert_eq!(estimate_rows(&plan, &catalog), Some(1));
    }

    #[test]
    fn join_estimate_divides_by_key_ndv() {
        let catalog = Catalog::new();
        let dim_schema = Arc::new(Schema::new_unchecked(vec![Field::new("id", DataType::Int32)]));
        let fact_schema = Arc::new(Schema::new_unchecked(vec![Field::new("fk", DataType::Int32)]));
        catalog.create_table("dim", dim_schema.clone()).unwrap();
        catalog.create_table("fact", fact_schema.clone()).unwrap();
        let dim =
            crate::batch::Batch::from_columns(vec![("id", Column::from_i32s((0..10).collect()))])
                .unwrap();
        let fact = crate::batch::Batch::from_columns(vec![(
            "fk",
            Column::from_i32s((0..1000).map(|i| i % 10).collect()),
        )])
        .unwrap();
        catalog.table("dim").unwrap().write().append_batch(&dim).unwrap();
        catalog.table("fact").unwrap().write().append_batch(&fact).unwrap();
        let out_schema = Arc::new(Schema::new_unchecked(vec![
            Field::new("id", DataType::Int32),
            Field::new("fk", DataType::Int32),
        ]));
        let plan = LogicalPlan::Join {
            left: Box::new(scan(&catalog, "dim")),
            right: Box::new(scan(&catalog, "fact")),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: out_schema,
        };
        // 10 · 1000 / max(10, 10) = 1000.
        let est = estimate_rows(&plan, &catalog).unwrap();
        assert!((800..=1200).contains(&est), "est {est} not near 1000");
    }

    #[test]
    fn estimate_map_covers_all_nodes_and_missing_table_is_absent() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s((0..10).collect()))]);
        let inner = scan(&catalog, "t");
        let plan = LogicalPlan::Limit { input: Box::new(inner), limit: Some(3), offset: 0 };
        let map = estimate_map(&plan, &catalog);
        assert_eq!(map.get(&(&plan as *const LogicalPlan as usize)), Some(&3));
        assert_eq!(map.len(), 2);

        let ghost = LogicalPlan::Scan {
            table: "missing".to_owned(),
            schema: Arc::new(Schema::new_unchecked(vec![])),
        };
        assert!(estimate_map(&ghost, &catalog).is_empty());
    }

    #[test]
    fn scan_tables_collects_in_plan_order() {
        let catalog = catalog_with("t", vec![("x", Column::from_i32s(vec![1]))]);
        let plan = LogicalPlan::UnionAll {
            inputs: vec![scan(&catalog, "t"), scan(&catalog, "t")],
            schema: Arc::new(Schema::new_unchecked(vec![Field::new("x", DataType::Int32)])),
        };
        let mut names = Vec::new();
        scan_tables(&plan, &mut names);
        assert_eq!(names, vec!["t".to_owned(), "t".to_owned()]);
    }
}
