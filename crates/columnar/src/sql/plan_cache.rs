//! Prepared-statement / plan cache keyed on SQL text.
//!
//! Repeat traffic — the serving workload the paper cares about, where a
//! trained model answers point predictions for many clients — re-submits
//! the same SQL text over and over. Parsing, binding, and optimizing that
//! text each time is pure overhead, so [`crate::Database`] caches the
//! optimized [`LogicalPlan`] (plus any scalar-subquery plans) per SQL
//! string and replays it on the next hit.
//!
//! **Invalidation** is stamp-based rather than eviction-based: each entry
//! records the catalog and function-registry generations at insert time
//! (a [`CacheStamp`]), and a lookup whose current stamp differs drops the
//! entry. DDL (`CREATE/DROP TABLE`, UDF registration) bumps a generation;
//! DML does not bump generations (plans reference tables by *name* and
//! resolve them at execution time), but it **can** stale a cost-based
//! plan: a join order picked when a table held 1K rows is wrong after
//! the table grows 100×. Each entry therefore also records the scanned
//! tables' row counts at optimize time ([`CachedQuery::table_rows`]),
//! and lookups take a caller-supplied validation closure that drops the
//! entry when the recorded counts have drifted past the caller's
//! threshold (see `Database::stats_drifted`: 2× growth or shrink).
//! Capacity is bounded with LRU eviction.
//!
//! Metrics: `sql.plan_cache.hits`, `sql.plan_cache.misses` (ticked by the
//! database at its lookup/insert sites), `sql.plan_cache.evictions`
//! (ticked here on LRU eviction).

use super::plan::LogicalPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of distinct SQL texts the cache retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Invalidation stamp: `(catalog generation, function-registry
/// generation)` at the moment a plan was cached.
pub type CacheStamp = (u64, u64);

/// An optimized, verified query plan ready to execute, as cached.
#[derive(Debug, Clone)]
pub struct CachedQuery {
    /// The optimized plan, pre-substitution: scalar-subquery placeholders
    /// are still present and are substituted per execution.
    pub plan: LogicalPlan,
    /// Plans for the statement's scalar subqueries, evaluated fresh on
    /// every execution (their results depend on current table contents).
    pub scalar_subs: Vec<LogicalPlan>,
    /// Row counts of the scanned tables at optimize time, in plan order.
    /// Empty when the plan was optimized without statistics (nothing
    /// cost-based to stale). Lookup validators compare these against the
    /// live counts to force re-optimization after significant growth.
    pub table_rows: Vec<(String, u64)>,
}

#[derive(Debug)]
struct Entry {
    query: Arc<CachedQuery>,
    stamp: CacheStamp,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A bounded, stamp-invalidated map from SQL text to optimized plans.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache { inner: Mutex::new(Inner::default()), capacity: capacity.max(1) }
    }

    /// Normalizes a SQL text into a cache key: surrounding whitespace and
    /// a trailing semicolon do not create distinct entries.
    fn key(sql: &str) -> &str {
        sql.trim().trim_end_matches(';').trim_end()
    }

    /// Looks up `sql`; a stale entry — stamp mismatch, or rejected by the
    /// caller's `valid` check (e.g. table row counts drifted past the
    /// re-optimization threshold) — is removed and reported as a miss
    /// (`None`). Ticks `sql.plan_cache.hits` only when an entry is
    /// actually served; the caller ticks misses, because only it knows
    /// whether the text is cachable at all.
    pub fn lookup(
        &self,
        sql: &str,
        stamp: CacheStamp,
        valid: impl Fn(&CachedQuery) -> bool,
    ) -> Option<Arc<CachedQuery>> {
        let key = Self::key(sql);
        let hit = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(key) {
                Some(e) if e.stamp == stamp && valid(&e.query) => {
                    e.last_used = tick;
                    Some(Arc::clone(&e.query))
                }
                Some(_) => {
                    inner.map.remove(key);
                    None
                }
                None => None,
            }
        };
        if hit.is_some() {
            crate::metrics::counter("sql.plan_cache.hits").incr();
        }
        hit
    }

    /// Like [`Self::lookup`] but ticks no counters, does not touch LRU
    /// state, and never removes entries — used by EXPLAIN to report
    /// whether a statement *would* hit.
    pub fn probe(
        &self,
        sql: &str,
        stamp: CacheStamp,
        valid: impl Fn(&CachedQuery) -> bool,
    ) -> Option<Arc<CachedQuery>> {
        let key = Self::key(sql);
        let inner = self.inner.lock();
        match inner.map.get(key) {
            Some(e) if e.stamp == stamp && valid(&e.query) => Some(Arc::clone(&e.query)),
            _ => None,
        }
    }

    /// Inserts a plan under `sql`, evicting the least-recently-used entry
    /// if the cache is full (ticks `sql.plan_cache.evictions`).
    pub fn insert(&self, sql: &str, query: CachedQuery, stamp: CacheStamp) {
        let key = Self::key(sql).to_owned();
        let evicted = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let mut evicted = false;
            if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
                if let Some(oldest) =
                    inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
                {
                    inner.map.remove(&oldest);
                    evicted = true;
                }
            }
            inner.map.insert(key, Entry { query: Arc::new(query), stamp, last_used: tick });
            evicted
        };
        if evicted {
            crate::metrics::counter("sql.plan_cache.evictions").incr();
        }
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> CachedQuery {
        CachedQuery { plan: LogicalPlan::UnitRow, scalar_subs: Vec::new(), table_rows: Vec::new() }
    }

    #[test]
    fn hit_after_insert_under_same_stamp() {
        let cache = PlanCache::with_capacity(4);
        assert!(cache.lookup("SELECT 1", (0, 0), |_| true).is_none());
        cache.insert("SELECT 1", q(), (0, 0));
        assert!(cache.lookup("SELECT 1", (0, 0), |_| true).is_some());
        // Key normalization: whitespace and trailing semicolons collapse.
        assert!(cache.lookup("  SELECT 1; ", (0, 0), |_| true).is_some());
    }

    #[test]
    fn stamp_mismatch_invalidates() {
        let cache = PlanCache::with_capacity(4);
        cache.insert("SELECT 1", q(), (0, 0));
        // DDL bumped a generation: the entry is dropped, not served.
        assert!(cache.lookup("SELECT 1", (1, 0), |_| true).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::with_capacity(2);
        cache.insert("a", q(), (0, 0));
        cache.insert("b", q(), (0, 0));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.lookup("a", (0, 0), |_| true).is_some());
        cache.insert("c", q(), (0, 0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", (0, 0), |_| true).is_some());
        assert!(cache.lookup("b", (0, 0), |_| true).is_none());
        assert!(cache.lookup("c", (0, 0), |_| true).is_some());
    }

    #[test]
    fn failed_validation_drops_entry() {
        let cache = PlanCache::with_capacity(4);
        let mut entry = q();
        entry.table_rows = vec![("t".to_owned(), 100)];
        cache.insert("SELECT 1", entry, (0, 0));
        // The validator sees the recorded row counts and can reject.
        assert!(cache
            .lookup("SELECT 1", (0, 0), |e| e.table_rows.iter().all(|(_, r)| *r >= 1000))
            .is_none());
        assert!(cache.is_empty(), "rejected entry must be removed");
    }

    #[test]
    fn probe_rejection_keeps_entry() {
        let cache = PlanCache::with_capacity(4);
        cache.insert("SELECT 1", q(), (0, 0));
        assert!(cache.probe("SELECT 1", (0, 0), |_| false).is_none());
        assert_eq!(cache.len(), 1, "probe must never remove entries");
    }

    #[test]
    fn probe_does_not_touch_lru_order() {
        let cache = PlanCache::with_capacity(2);
        cache.insert("a", q(), (0, 0));
        cache.insert("b", q(), (0, 0));
        // Probing "a" must not promote it.
        assert!(cache.probe("a", (0, 0), |_| true).is_some());
        cache.insert("c", q(), (0, 0));
        assert!(cache.probe("a", (0, 0), |_| true).is_none());
        assert!(cache.probe("b", (0, 0), |_| true).is_some());
    }
}
