//! SQL tokens.

use std::fmt;

/// One lexical token. Keywords arrive as `Ident` and are recognized
/// case-insensitively by the parser, which keeps the lexer small and the
/// keyword set extensible.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (lower-cased by the lexer).
    Ident(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (escapes resolved).
    String(String),
    /// Hex blob literal `x'DEADBEEF'`.
    Blob(Vec<u8>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||`
    Concat,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Integer(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Blob(_) => write!(f, "x'…'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Concat => write!(f, "||"),
        }
    }
}
