//! A small rule-based plan optimizer.
//!
//! Three rewrites that matter for an operator-at-a-time engine, where
//! every operator materializes its full result:
//!
//! 1. **Constant folding** — column-free, UDF-free subexpressions are
//!    evaluated at plan time (`a < 2 + 3` → `a < 5`).
//! 2. **Filter fusion & elimination** — adjacent filters merge into one
//!    conjunction; literal-`TRUE` filters disappear (so the scan's
//!    zero-copy snapshot flows through untouched).
//! 3. **Predicate pushdown** — filters move below projections (when they
//!    only reference pass-through columns), below sorts and distincts,
//!    and into the matching side of inner joins, shrinking intermediate
//!    materializations as early as possible.
//!
//! The optimizer is applied after scalar-subquery substitution, so
//! subquery results participate in folding.
//!
//! On top of the rule set, [`optimize_with_stats`] runs four **cost-based
//! passes** over the catalog's live column statistics (see
//! [`crate::stats`] and [`crate::sql::estimate`]):
//!
//! 1. **Aggregate-from-stats** — `COUNT(*)` / `COUNT(col)` / `MIN` /
//!    `MAX` over a bare scan collapse to a literal projection answered
//!    straight from the maintained statistics (never cached: the literals
//!    go stale on the next insert).
//! 2. **Conjunct ordering** — filter conjuncts over a scan are reordered
//!    most-selective-first so fused kernels see fewer survivors; only
//!    infallible predicate shapes are reordered.
//! 3. **Join reordering** — left-deep inner-join chains under
//!    order-insensitive consumers are reordered greedily by estimated
//!    cardinality, with a restoring projection keeping the output schema.
//! 4. **Build-side selection** — a hash join whose left input is
//!    estimated at half the right's cardinality or less builds on the
//!    left instead (the executor restores canonical row order).
//!
//! Debug builds re-run the plan verifier after every pass.

use crate::catalog::Catalog;
use crate::column::Encoding;
use crate::error::DbResult;
use crate::exec::{AggFunc, JoinType};
use crate::expr::{fuse, BinaryOp, Expr, UnaryOp};
use crate::metrics;
use crate::schema::{Field, Schema};
use crate::sql::binder::eval_constant;
use crate::sql::estimate;
use crate::sql::plan::{LogicalPlan, PlanAgg};
use crate::stats::ColumnStats;
use crate::types::Value;
use crate::udf::FunctionRegistry;
use crate::verify::{expr_parallel_safe, exprs_parallel_safe};
use std::collections::HashSet;
use std::sync::Arc;

/// The `EXPLAIN` annotation for one plan node: `" [parallel]"` when the
/// executor is *eligible* to run the operator in parallel (every expression
/// it evaluates is parallel-safe); the row threshold still decides at run
/// time. Pass to [`LogicalPlan::display_with`].
pub fn parallel_annotation(plan: &LogicalPlan, functions: &FunctionRegistry) -> Option<String> {
    let eligible = match plan {
        LogicalPlan::Filter { predicate, .. } => expr_parallel_safe(predicate, functions),
        LogicalPlan::Project { exprs, .. } => exprs_parallel_safe(exprs, functions),
        LogicalPlan::Join { join_type, residual, .. } => {
            *join_type != JoinType::Cross
                && residual.as_ref().map(|r| expr_parallel_safe(r, functions)).unwrap_or(true)
        }
        LogicalPlan::Aggregate { group, aggs, .. } => {
            aggs.iter().all(|a| !a.distinct)
                && exprs_parallel_safe(group, functions)
                && aggs
                    .iter()
                    .filter_map(|a| a.arg.as_ref())
                    .all(|e| expr_parallel_safe(e, functions))
        }
        LogicalPlan::Sort { keys, .. } => !keys.is_empty(),
        _ => false,
    };
    eligible.then(|| " [parallel]".to_owned())
}

/// The full static `EXPLAIN` annotation: [`parallel_annotation`] plus the
/// compressed-execution markers — `[fused]` on filters whose predicate has
/// a fusible shape (the kernel compiler may still bail per batch, e.g. on
/// a cross-family comparison), and `[dict]` / `[rle]` on scans of tables
/// that currently hold encoded columns. `EXPLAIN ANALYZE` reports what
/// actually ran; this reports what the executor is eligible to do.
pub fn explain_annotation(
    plan: &LogicalPlan,
    functions: &FunctionRegistry,
    catalog: &crate::catalog::Catalog,
) -> Option<String> {
    let mut ann = parallel_annotation(plan, functions).unwrap_or_default();
    match plan {
        LogicalPlan::Filter { predicate, .. } if fuse::fusible(predicate) => {
            ann.push_str(" [fused]");
        }
        LogicalPlan::Scan { table, .. } => {
            if let Ok(t) = catalog.table(table) {
                let batch = t.read().scan();
                let encodings: Vec<_> = batch.columns().iter().map(|c| c.encoding()).collect();
                if encodings.contains(&Encoding::Dict) {
                    ann.push_str(" [dict]");
                }
                if encodings.contains(&Encoding::Rle) {
                    ann.push_str(" [rle]");
                }
            }
        }
        _ => {}
    }
    (!ann.is_empty()).then_some(ann)
}

/// Optimizes a plan (bottom-up, fixed small pass set).
///
/// Debug builds re-run the structural plan verifier after each rewrite
/// pass, so an optimizer bug that breaks schema propagation or column
/// bounds is caught here rather than downstream in the executor.
pub fn optimize(plan: LogicalPlan) -> DbResult<LogicalPlan> {
    let plan = rewrite(plan)?;
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    Ok(plan)
}

/// The outcome of [`optimize_with_stats`]: the optimized plan, plus
/// whether any rewrite baked *data values* (not just plan structure) into
/// it. A `from_stats` plan must never be cached — its literals are a
/// snapshot of the table contents and go stale on the next write.
#[derive(Debug)]
pub struct CostOutcome {
    /// The optimized plan.
    pub plan: LogicalPlan,
    /// True when the aggregate-from-stats pass answered part of the query
    /// from column statistics.
    pub from_stats: bool,
}

/// [`optimize`] plus the cost-based passes over live column statistics.
///
/// With `use_stats` false (statistics disabled via
/// `MLCS_DISABLE_STATS` or [`crate::Database::set_stats_enabled`]) only
/// the rule-based rewrites run, so results can be compared bit-for-bit
/// against the cost-based plans.
pub fn optimize_with_stats(
    plan: LogicalPlan,
    catalog: &Catalog,
    use_stats: bool,
) -> DbResult<CostOutcome> {
    let plan = optimize(plan)?;
    if !use_stats {
        return Ok(CostOutcome { plan, from_stats: false });
    }
    let mut from_stats = false;
    let plan = collapse_stats_aggregates(plan, catalog, &mut from_stats);
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    let plan = order_conjuncts(plan, catalog);
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    let plan = reorder_joins(plan, catalog, false);
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    let plan = choose_build_sides(plan, catalog);
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    Ok(CostOutcome { plan, from_stats })
}

/// Applies `f` to each direct child of `plan`, rebuilding the node.
fn map_inputs(plan: LogicalPlan, f: &mut dyn FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    use crate::sql::plan::BoundTableArg;
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(f(*input)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(f(*input)), exprs, schema }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            build_left,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join_type,
            left_keys,
            right_keys,
            residual,
            build_left,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            LogicalPlan::Aggregate { input: Box::new(f(*input)), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort { input: Box::new(f(*input)), keys },
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(f(*input)), limit, offset }
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct { input: Box::new(f(*input)) },
        LogicalPlan::UnionAll { inputs, schema } => {
            LogicalPlan::UnionAll { inputs: inputs.into_iter().map(f).collect(), schema }
        }
        LogicalPlan::TableFunction { name, args, schema } => LogicalPlan::TableFunction {
            name,
            args: args
                .into_iter()
                .map(|a| match a {
                    BoundTableArg::Plan(p) => BoundTableArg::Plan(f(p)),
                    scalar => scalar,
                })
                .collect(),
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::UnitRow) => leaf,
    }
}

/// Pass 1: collapse ungrouped `COUNT(*)` / `COUNT(col)` / `MIN(col)` /
/// `MAX(col)` over a bare scan into a literal projection over
/// [`LogicalPlan::UnitRow`], answered from the table's statistics without
/// touching a single row. Sets `from_stats` (such plans are uncacheable)
/// and ticks `sql.stats.answered_aggregates` per collapsed aggregate.
fn collapse_stats_aggregates(
    plan: LogicalPlan,
    catalog: &Catalog,
    from_stats: &mut bool,
) -> LogicalPlan {
    let plan = map_inputs(plan, &mut |c| collapse_stats_aggregates(c, catalog, from_stats));
    if let LogicalPlan::Aggregate { input, group, aggs, schema } = &plan {
        if group.is_empty() && !aggs.is_empty() {
            if let LogicalPlan::Scan { table, .. } = &**input {
                if let Some(exprs) = stats_literals(catalog, table, aggs) {
                    metrics::counter("sql.stats.answered_aggregates").incr();
                    *from_stats = true;
                    return LogicalPlan::Project {
                        input: Box::new(LogicalPlan::UnitRow),
                        exprs,
                        schema: schema.clone(),
                    };
                }
            }
        }
    }
    plan
}

/// The literal answers for `aggs` over `table`'s statistics, or `None`
/// when any aggregate cannot be answered exactly (unsupported function,
/// DISTINCT, non-column argument, or min/max poisoned by NaN).
fn stats_literals(catalog: &Catalog, table: &str, aggs: &[PlanAgg]) -> Option<Vec<Expr>> {
    let t = catalog.table(table).ok()?;
    let guard = t.read();
    let stats = guard.stats();
    let mut out = Vec::with_capacity(aggs.len());
    for a in aggs {
        if a.distinct {
            return None;
        }
        let v = match (a.func, &a.arg) {
            (AggFunc::CountStar, None) => {
                Value::Int64(i64::try_from(stats.rows()).unwrap_or(i64::MAX))
            }
            (AggFunc::Count, Some(Expr::Column(i))) => {
                let c = stats.column(*i)?;
                Value::Int64(i64::try_from(c.rows().saturating_sub(c.nulls())).unwrap_or(i64::MAX))
            }
            (AggFunc::Min, Some(Expr::Column(i))) => {
                let c = stats.column(*i)?;
                match c.min_max() {
                    Some((min, _)) => min.clone(),
                    // MIN over no non-NULL values is SQL NULL; a poisoned
                    // (NaN-containing) column cannot be answered.
                    None if c.nulls() == c.rows() => Value::Null,
                    None => return None,
                }
            }
            (AggFunc::Max, Some(Expr::Column(i))) => {
                let c = stats.column(*i)?;
                match c.min_max() {
                    Some((_, max)) => max.clone(),
                    None if c.nulls() == c.rows() => Value::Null,
                    None => return None,
                }
            }
            _ => return None,
        };
        out.push(Expr::Literal(v));
    }
    Some(out)
}

/// Pass 2: reorder filter conjuncts over a scan most-selective-first, so
/// short-circuiting fused kernels reject rows on the cheapest test. Only
/// conjunctions whose every member is an infallible predicate shape
/// (comparisons, boolean logic, `IS NULL`, `BETWEEN`, `IN` over
/// columns/literals) are reordered — anything that can error at runtime
/// keeps its written order so error behavior is unchanged. Ticks
/// `sql.cost.conjunct_reorders` when an order actually changes.
fn order_conjuncts(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let plan = map_inputs(plan, &mut |c| order_conjuncts(c, catalog));
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let predicate = match &*input {
                LogicalPlan::Scan { table, schema } => {
                    let conjuncts = split_conjuncts(predicate);
                    let predicate = if conjuncts.len() >= 2 && conjuncts.iter().all(reorder_safe) {
                        let cols = scan_column_stats(catalog, table, schema.len());
                        let mut scored: Vec<(f64, usize, Expr)> = conjuncts
                            .into_iter()
                            .enumerate()
                            .map(|(i, c)| (estimate::selectivity(&c, &cols), i, c))
                            .collect();
                        // Stable sort: ties and NaN scores keep written order.
                        scored.sort_by(|a, b| {
                            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        if !scored.windows(2).all(|w| w[0].1 < w[1].1) {
                            metrics::counter("sql.cost.conjunct_reorders").incr();
                        }
                        combine(scored.into_iter().map(|(_, _, c)| c).collect())
                    } else {
                        combine(conjuncts)
                    };
                    match predicate {
                        Some(p) => p,
                        None => Expr::Literal(Value::Boolean(true)), // unreachable: ≥1 conjunct
                    }
                }
                _ => predicate,
            };
            LogicalPlan::Filter { input, predicate }
        }
        other => other,
    }
}

/// Per-column stats for a scan, padded with `None` to the schema width.
fn scan_column_stats(catalog: &Catalog, table: &str, width: usize) -> Vec<Option<ColumnStats>> {
    match catalog.table(table) {
        Ok(t) => {
            let guard = t.read();
            let stats = guard.stats();
            (0..width).map(|i| stats.column(i).cloned()).collect()
        }
        Err(_) => vec![None; width],
    }
}

/// Whether a conjunct is safe to evaluate in any order: built purely from
/// columns, literals, comparisons, boolean logic, `IS NULL`, `BETWEEN`,
/// and `IN` lists — shapes that can never raise a runtime error, so
/// evaluating them earlier or later is unobservable.
fn reorder_safe(e: &Expr) -> bool {
    match e {
        Expr::Column(_) | Expr::Literal(_) => true,
        Expr::Binary { op, left, right } => {
            (op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or))
                && reorder_safe(left)
                && reorder_safe(right)
        }
        Expr::Unary { op: UnaryOp::Not, expr } => reorder_safe(expr),
        Expr::IsNull { expr, .. } => reorder_safe(expr),
        Expr::Between { expr, low, high, .. } => {
            reorder_safe(expr) && reorder_safe(low) && reorder_safe(high)
        }
        Expr::InList { expr, list, .. } => reorder_safe(expr) && list.iter().all(reorder_safe),
        _ => false,
    }
}

/// Pass 3: greedy cardinality-based reordering of inner-join chains.
///
/// `order_free` tracks whether the consumer above can observe the node's
/// row *order* (not just its row set): it starts false at the root (a
/// query's output order must match the stats-off plan bit-for-bit) and
/// becomes true under consumers that are provably order-insensitive — an
/// ungrouped aggregate of order-insensitive functions, or a sort whose
/// keys cover every column. Only there may a join chain be reordered.
fn reorder_joins(plan: LogicalPlan, catalog: &Catalog, order_free: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let input_schema = input.schema();
            let child_free =
                group.is_empty() && aggs.iter().all(|a| order_insensitive_agg(a, &input_schema));
            LogicalPlan::Aggregate {
                input: Box::new(reorder_joins(*input, catalog, child_free)),
                group,
                aggs,
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            // A stable sort whose keys cover every column erases the input
            // order entirely (equal-on-all-keys rows are identical).
            let width = input.schema().len();
            let covered: HashSet<usize> = keys.iter().map(|k| k.column).collect();
            let child_free = order_free || (0..width).all(|i| covered.contains(&i));
            LogicalPlan::Sort { input: Box::new(reorder_joins(*input, catalog, child_free)), keys }
        }
        LogicalPlan::Limit { input, limit, offset } => LogicalPlan::Limit {
            // Which rows survive a limit depends on order.
            input: Box::new(reorder_joins(*input, catalog, false)),
            limit,
            offset,
        },
        join @ LogicalPlan::Join { .. } if order_free => try_reorder_chain(join, catalog),
        other => {
            // Filter/Project/Distinct/UnionAll pass row order through;
            // joins outside an order-free region pin their children, and
            // table UDFs may be sensitive to argument row order.
            let free = order_free
                && !matches!(other, LogicalPlan::Join { .. } | LogicalPlan::TableFunction { .. });
            map_inputs(other, &mut |c| reorder_joins(c, catalog, free))
        }
    }
}

/// Whether reordering the aggregate's input rows can change its output:
/// counts never; MIN/MAX only through float `-0.0`/`+0.0` ties (first
/// occurrence wins), so non-float columns are safe; SUM/AVG accumulate in
/// row order and stay pinned for floats (and conservatively for ints).
fn order_insensitive_agg(agg: &PlanAgg, input: &Schema) -> bool {
    match (agg.func, &agg.arg) {
        (AggFunc::CountStar, None) => true,
        (AggFunc::Count, Some(_)) => true,
        (AggFunc::Min | AggFunc::Max, Some(Expr::Column(i))) => input
            .fields()
            .get(*i)
            .map(|f| {
                !matches!(
                    f.dtype,
                    crate::types::DataType::Float32 | crate::types::DataType::Float64
                )
            })
            .unwrap_or(false),
        _ => false,
    }
}

/// Attempts a greedy reorder of the inner-join chain rooted at `join`;
/// recursion continues into the chain's relations either way. Ticks
/// `sql.cost.join_reorders` per chain whose order changed.
fn try_reorder_chain(join: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let order = {
        let mut rels: Vec<&LogicalPlan> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        chain_refs(&join, &mut rels, &mut edges);
        let widths: Vec<usize> = rels.iter().map(|r| r.schema().len()).collect();
        let sizes: Vec<u64> = rels
            .iter()
            .map(|r| estimate::estimate_rows(r, catalog).unwrap_or(u64::MAX / 2))
            .collect();
        greedy_order(&sizes, &widths, &edges)
    };
    match order {
        Some(order) => rebuild_chain(join, &order, catalog),
        // No profitable/safe reorder: still recurse into children, which
        // remain order-free (the chain's output order is unobserved).
        None => map_inputs(join, &mut |c| reorder_joins(c, catalog, true)),
    }
}

/// Flattens a maximal inner-join chain (no residuals, non-empty keys)
/// into its base relations plus equality edges in *global* column
/// coordinates (columns numbered across the relations in chain order).
fn chain_refs<'a>(
    plan: &'a LogicalPlan,
    rels: &mut Vec<&'a LogicalPlan>,
    edges: &mut Vec<(usize, usize)>,
) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            residual: None,
            ..
        } if !left_keys.is_empty() => {
            let base_left: usize = rels.iter().map(|r| r.schema().len()).sum();
            chain_refs(left, rels, edges);
            let base_right: usize = rels.iter().map(|r| r.schema().len()).sum();
            chain_refs(right, rels, edges);
            for (lk, rk) in left_keys.iter().zip(right_keys) {
                edges.push((base_left + lk, base_right + rk));
            }
        }
        other => rels.push(other),
    }
}

/// Owned counterpart of [`chain_refs`], consuming the chain. Produces the
/// relations in the same order (edges are identical, so callers reuse the
/// borrowed analysis).
fn chain_owned(plan: LogicalPlan, rels: &mut Vec<LogicalPlan>) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            residual: None,
            ..
        } if !left_keys.is_empty() => {
            chain_owned(*left, rels);
            chain_owned(*right, rels);
        }
        other => rels.push(other),
    }
}

/// Picks a join order: smallest relation first, then repeatedly the
/// smallest relation connected by an equality edge to the placed set
/// (never introducing a cross product). Returns `None` when the chain is
/// too short, disconnected, or the greedy order equals the original.
fn greedy_order(sizes: &[u64], widths: &[usize], edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let n = sizes.len();
    if n < 3 {
        return None;
    }
    // Map global column coordinates to relation indices.
    let mut rel_of_col = Vec::new();
    for (rel, w) in widths.iter().enumerate() {
        rel_of_col.extend(std::iter::repeat_n(rel, *w));
    }
    let rel_edges: Vec<(usize, usize)> = edges
        .iter()
        .filter_map(|&(a, b)| Some((*rel_of_col.get(a)?, *rel_of_col.get(b)?)))
        .collect();
    if rel_edges.len() != edges.len() {
        return None; // malformed coordinates; leave the plan alone
    }
    let start = (0..n).min_by_key(|&i| (sizes[i], i))?;
    let mut order = vec![start];
    let mut placed = vec![false; n];
    placed[start] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&c| !placed[c])
            .filter(|&c| {
                rel_edges.iter().any(|&(a, b)| (a == c && placed[b]) || (b == c && placed[a]))
            })
            .min_by_key(|&c| (sizes[c], c))?;
        placed[next] = true;
        order.push(next);
    }
    if order.iter().enumerate().all(|(i, &r)| i == r) {
        return None; // already optimal under the heuristic
    }
    Some(order)
}

/// Rebuilds a flattened chain left-deep in `order`, reattaching each
/// original equality edge at the join step that places its later
/// endpoint, then restores the original output column order with a
/// projection so nothing above the chain changes.
fn rebuild_chain(join: LogicalPlan, order: &[usize], catalog: &Catalog) -> LogicalPlan {
    let top_schema = join.schema();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    {
        let mut rels: Vec<&LogicalPlan> = Vec::new();
        chain_refs(&join, &mut rels, &mut edges);
    }
    let mut owned: Vec<LogicalPlan> = Vec::new();
    chain_owned(join, &mut owned);
    // The chain's output order is unobserved, so its relations stay
    // order-free for nested chains.
    let rels: Vec<LogicalPlan> =
        owned.into_iter().map(|r| reorder_joins(r, catalog, true)).collect();
    let n = rels.len();
    let widths: Vec<usize> = rels.iter().map(|r| r.schema().len()).collect();
    let mut offsets = vec![0usize; n];
    for i in 1..n {
        offsets[i] = offsets[i - 1] + widths[i - 1];
    }
    let total: usize = widths.iter().sum();
    let locate = |g: usize| -> (usize, usize) {
        let mut rel = 0;
        while rel + 1 < n && g >= offsets[rel + 1] {
            rel += 1;
        }
        (rel, g - offsets[rel])
    };
    // Column base of each relation in the new (placement) order.
    let mut new_base = vec![0usize; n];
    let mut acc = 0usize;
    for &r in order {
        new_base[r] = acc;
        acc += widths.get(r).copied().unwrap_or(0);
    }
    let mut slots: Vec<Option<LogicalPlan>> = rels.into_iter().map(Some).collect();
    let mut placed = vec![false; n];
    let mut used = vec![false; edges.len()];
    let mut tree = match order.first().and_then(|&f| slots.get_mut(f).and_then(Option::take)) {
        Some(t) => t,
        None => return LogicalPlan::UnitRow, // unreachable: order is a permutation
    };
    if let Some(&f) = order.first() {
        placed[f] = true;
    }
    for &next in order.iter().skip(1) {
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for (ei, &(a, b)) in edges.iter().enumerate() {
            if used[ei] {
                continue;
            }
            let (ra, ca) = locate(a);
            let (rb, cb) = locate(b);
            let (placed_rel, placed_col, next_col) = if ra == next && placed[rb] {
                (rb, cb, ca)
            } else if rb == next && placed[ra] {
                (ra, ca, cb)
            } else {
                continue;
            };
            used[ei] = true;
            left_keys.push(new_base[placed_rel] + placed_col);
            right_keys.push(next_col);
        }
        let right = match slots.get_mut(next).and_then(Option::take) {
            Some(r) => r,
            None => return LogicalPlan::UnitRow, // unreachable: permutation
        };
        let fields: Vec<Field> = tree
            .schema()
            .fields()
            .iter()
            .cloned()
            .chain(right.schema().fields().iter().cloned())
            .collect();
        tree = LogicalPlan::Join {
            left: Box::new(tree),
            right: Box::new(right),
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            residual: None,
            build_left: false,
            schema: Arc::new(Schema::new_unchecked(fields)),
        };
        placed[next] = true;
    }
    metrics::counter("sql.cost.join_reorders").incr();
    let exprs: Vec<Expr> = (0..total)
        .map(|g| {
            let (rel, col) = locate(g);
            Expr::col(new_base[rel] + col)
        })
        .collect();
    LogicalPlan::Project { input: Box::new(tree), exprs, schema: top_schema }
}

/// Pass 4: build-side selection. A hash join builds on its right input by
/// default; when the left input is estimated at **half the right's
/// cardinality or less** (`est(left) * 2 <= est(right)`), flip
/// `build_left` so the hash table is built on the smaller side. The
/// executor's swapped kernels restore canonical row order, so this never
/// changes results. Inner/Left equi-joins only; missing estimates never
/// trigger a swap. Ticks `sql.cost.build_side_swaps` per flipped join.
fn choose_build_sides(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let plan = map_inputs(plan, &mut |c| choose_build_sides(c, catalog));
    match plan {
        LogicalPlan::Join {
            left,
            right,
            join_type: join_type @ (JoinType::Inner | JoinType::Left),
            left_keys,
            right_keys,
            residual,
            build_left: false,
            schema,
        } => {
            let swap = !left_keys.is_empty()
                && match (
                    estimate::estimate_rows(&left, catalog),
                    estimate::estimate_rows(&right, catalog),
                ) {
                    (Some(l), Some(r)) => l.saturating_mul(2) <= r,
                    _ => false,
                };
            if swap {
                metrics::counter("sql.cost.build_side_swaps").incr();
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                residual,
                build_left: swap,
                schema,
            }
        }
        other => other,
    }
}

fn rewrite(plan: LogicalPlan) -> DbResult<LogicalPlan> {
    // Recurse first so child rewrites expose parent opportunities.
    let plan = match plan {
        LogicalPlan::Filter { input, mut predicate } => {
            let input = rewrite(*input)?;
            fold_expr(&mut predicate);
            push_filter(predicate, input)?
        }
        LogicalPlan::Project { input, mut exprs, schema } => {
            let input = rewrite(*input)?;
            for e in &mut exprs {
                fold_expr(e);
            }
            LogicalPlan::Project { input: Box::new(input), exprs, schema }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            build_left,
            schema,
        } => {
            let mut residual = residual;
            if let Some(r) = &mut residual {
                fold_expr(r);
            }
            LogicalPlan::Join {
                left: Box::new(rewrite(*left)?),
                right: Box::new(rewrite(*right)?),
                join_type,
                left_keys,
                right_keys,
                residual,
                build_left,
                schema,
            }
        }
        LogicalPlan::Aggregate { input, mut group, mut aggs, schema } => {
            for g in &mut group {
                fold_expr(g);
            }
            for a in &mut aggs {
                if let Some(arg) = &mut a.arg {
                    fold_expr(arg);
                }
            }
            LogicalPlan::Aggregate { input: Box::new(rewrite(*input)?), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(rewrite(*input)?), keys }
        }
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(rewrite(*input)?), limit, offset }
        }
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(rewrite(*input)?) }
        }
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(rewrite).collect::<DbResult<_>>()?,
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::TableFunction { .. }
        | LogicalPlan::UnitRow) => leaf,
    };
    Ok(plan)
}

/// Places a filter above `input`, pushing it down where legal.
fn push_filter(predicate: Expr, input: LogicalPlan) -> DbResult<LogicalPlan> {
    // TRUE filters vanish.
    if matches!(predicate, Expr::Literal(Value::Boolean(true))) {
        return Ok(input);
    }
    match input {
        // Filter(Filter(x)) fuses into one conjunction.
        LogicalPlan::Filter { input, predicate: inner } => {
            let fused = Expr::binary(BinaryOp::And, inner, predicate);
            push_filter(fused, *input)
        }
        // Filter over Sort/Distinct commutes (set-preserving operators).
        LogicalPlan::Sort { input, keys } => {
            Ok(LogicalPlan::Sort { input: Box::new(push_filter(predicate, *input)?), keys })
        }
        LogicalPlan::Distinct { input } => {
            Ok(LogicalPlan::Distinct { input: Box::new(push_filter(predicate, *input)?) })
        }
        // Filter over Project pushes down when every referenced output
        // column is a plain pass-through (`Column(i)`) — rewrite the
        // predicate in input coordinates.
        LogicalPlan::Project { input, exprs, schema } => {
            let mut refs = Vec::new();
            predicate.referenced_columns(&mut refs);
            let passthrough: Vec<Option<usize>> = exprs
                .iter()
                .map(|e| match e {
                    Expr::Column(i) => Some(*i),
                    _ => None,
                })
                .collect();
            if refs.iter().all(|&r| passthrough.get(r).copied().flatten().is_some()) {
                let map: Vec<usize> = passthrough
                    .iter()
                    .map(|p| p.unwrap_or(0)) // unused slots never referenced
                    .collect();
                let mut pushed = predicate;
                pushed.remap_columns(&map);
                let inner = push_filter(pushed, *input)?;
                Ok(LogicalPlan::Project { input: Box::new(inner), exprs, schema })
            } else {
                Ok(LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Project { input, exprs, schema }),
                    predicate,
                })
            }
        }
        // Filter over an inner join pushes conjuncts that reference only
        // one side into that side.
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            residual,
            build_left,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for conj in split_conjuncts(predicate) {
                let mut refs = Vec::new();
                conj.referenced_columns(&mut refs);
                if !refs.is_empty() && refs.iter().all(|&r| r < left_width) {
                    left_preds.push(conj);
                } else if !refs.is_empty() && refs.iter().all(|&r| r >= left_width) {
                    let mut c = conj;
                    // Rebase to right-side coordinates.
                    let total = schema.len();
                    let map: Vec<usize> =
                        (0..total).map(|i| i.saturating_sub(left_width)).collect();
                    c.remap_columns(&map);
                    right_preds.push(c);
                } else {
                    keep.push(conj);
                }
            }
            let new_left = match combine(left_preds) {
                Some(p) => Box::new(push_filter(p, *left)?),
                None => Box::new(rewrite(*left)?),
            };
            let new_right = match combine(right_preds) {
                Some(p) => Box::new(push_filter(p, *right)?),
                None => Box::new(rewrite(*right)?),
            };
            let join = LogicalPlan::Join {
                left: new_left,
                right: new_right,
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                residual,
                build_left,
                schema,
            };
            Ok(match combine(keep) {
                Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                None => join,
            })
        }
        other => Ok(LogicalPlan::Filter { input: Box::new(other), predicate }),
    }
}

fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { op: BinaryOp::And, left, right } => {
            let mut out = split_conjuncts(*left);
            out.extend(split_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

fn combine(preds: Vec<Expr>) -> Option<Expr> {
    preds.into_iter().reduce(|a, b| Expr::binary(BinaryOp::And, a, b))
}

/// True when the expression is safe and useful to fold: column-free,
/// UDF-free, subquery-free, and not already a literal.
fn foldable(e: &Expr) -> bool {
    fn pure(e: &Expr) -> bool {
        match e {
            Expr::Column(_) | Expr::Subquery(_) | Expr::Udf { .. } => false,
            Expr::Literal(_) => true,
            Expr::Binary { left, right, .. } => pure(left) && pure(right),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                pure(expr)
            }
            Expr::Case { operand, branches, else_expr } => {
                operand.as_deref().is_none_or(pure)
                    && branches.iter().all(|(w, t)| pure(w) && pure(t))
                    && else_expr.as_deref().is_none_or(pure)
            }
            Expr::InList { expr, list, .. } => pure(expr) && list.iter().all(pure),
            Expr::Like { expr, pattern, .. } => pure(expr) && pure(pattern),
            Expr::Between { expr, low, high, .. } => pure(expr) && pure(low) && pure(high),
            Expr::ScalarFn { args, .. } => args.iter().all(pure),
        }
    }
    !matches!(e, Expr::Literal(_)) && pure(e)
}

/// Folds constant subexpressions in place. Folding errors (e.g. division
/// by zero in dead CASE branches) leave the expression unchanged so the
/// error surfaces — or not — at execution time, matching unoptimized
/// semantics.
pub fn fold_expr(e: &mut Expr) {
    if foldable(e) {
        if let Ok(v) = eval_constant(e) {
            *e = Expr::Literal(v);
            return;
        }
    }
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Subquery(_) => {}
        Expr::Binary { left, right, .. } => {
            fold_expr(left);
            fold_expr(right);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            fold_expr(expr)
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                fold_expr(o);
            }
            for (w, t) in branches {
                fold_expr(w);
                fold_expr(t);
            }
            if let Some(x) = else_expr {
                fold_expr(x);
            }
        }
        Expr::InList { expr, list, .. } => {
            fold_expr(expr);
            for x in list {
                fold_expr(x);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            fold_expr(expr);
            fold_expr(pattern);
        }
        Expr::Between { expr, low, high, .. } => {
            fold_expr(expr);
            fold_expr(low);
            fold_expr(high);
        }
        Expr::ScalarFn { args, .. } | Expr::Udf { args, .. } => {
            for a in args {
                fold_expr(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr as E;

    #[test]
    fn constants_fold() {
        let mut e = E::binary(
            BinaryOp::Lt,
            E::col(0),
            E::binary(BinaryOp::Add, E::lit(2i32), E::lit(3i32)),
        );
        fold_expr(&mut e);
        assert_eq!(e, E::binary(BinaryOp::Lt, E::col(0), E::Literal(Value::Int64(5))));
    }

    #[test]
    fn folding_errors_are_deferred() {
        // 1/0 must not panic or error during optimization.
        let mut e = E::binary(BinaryOp::Div, E::lit(1i32), E::lit(0i32));
        fold_expr(&mut e);
        assert!(matches!(e, E::Binary { .. }), "kept unfolded: {e}");
    }

    #[test]
    fn udf_calls_never_fold() {
        let mut e = E::Udf { name: "f".into(), args: vec![E::lit(1i32)] };
        fold_expr(&mut e);
        assert!(matches!(e, E::Udf { .. }));
    }

    fn scan(cols: usize) -> LogicalPlan {
        use crate::schema::{Field, Schema};
        let fields =
            (0..cols).map(|i| Field::new(format!("c{i}"), crate::types::DataType::Int32)).collect();
        LogicalPlan::Scan {
            table: "t".into(),
            schema: std::sync::Arc::new(Schema::new_unchecked(fields)),
        }
    }

    #[test]
    fn true_filter_removed() {
        let plan = LogicalPlan::Filter { input: Box::new(scan(1)), predicate: E::lit(true) };
        let out = optimize(plan).unwrap();
        assert!(matches!(out, LogicalPlan::Scan { .. }), "{out}");
    }

    #[test]
    fn adjacent_filters_fuse() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(1)),
                predicate: E::binary(BinaryOp::Gt, E::col(0), E::lit(1i32)),
            }),
            predicate: E::binary(BinaryOp::Lt, E::col(0), E::lit(9i32)),
        };
        let out = optimize(plan).unwrap();
        match out {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert!(matches!(predicate, E::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn filter_pushes_below_passthrough_project() {
        use crate::schema::{Field, Schema};
        let project = LogicalPlan::Project {
            input: Box::new(scan(3)),
            exprs: vec![E::col(2), E::col(0)],
            schema: std::sync::Arc::new(Schema::new_unchecked(vec![
                Field::new("a", crate::types::DataType::Int32),
                Field::new("b", crate::types::DataType::Int32),
            ])),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(project),
            predicate: E::binary(BinaryOp::Eq, E::col(1), E::lit(5i32)),
        };
        let out = optimize(plan).unwrap();
        match out {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Filter { predicate, input } => {
                    // Output column 1 maps back to input column 0.
                    assert_eq!(predicate, E::binary(BinaryOp::Eq, E::col(0), E::lit(5i32)));
                    assert!(matches!(*input, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected filter under project, got {other}"),
            },
            other => panic!("expected project on top, got {other}"),
        }
    }

    #[test]
    fn filter_stays_above_computed_project() {
        use crate::schema::{Field, Schema};
        let project = LogicalPlan::Project {
            input: Box::new(scan(1)),
            exprs: vec![E::binary(BinaryOp::Add, E::col(0), E::lit(1i32))],
            schema: std::sync::Arc::new(Schema::new_unchecked(vec![Field::new(
                "a",
                crate::types::DataType::Int64,
            )])),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(project),
            predicate: E::binary(BinaryOp::Gt, E::col(0), E::lit(0i32)),
        };
        let out = optimize(plan).unwrap();
        assert!(matches!(out, LogicalPlan::Filter { .. }), "{out}");
    }

    #[test]
    fn filter_splits_across_inner_join() {
        use crate::schema::{Field, Schema};
        let join_schema = std::sync::Arc::new(Schema::new_unchecked(vec![
            Field::new("l0", crate::types::DataType::Int32),
            Field::new("l1", crate::types::DataType::Int32),
            Field::new("r0", crate::types::DataType::Int32),
        ]));
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(1)),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: join_schema,
        };
        // (l1 > 1) AND (r0 < 5) AND (l0 = r0-ish both sides)
        let pred = E::binary(
            BinaryOp::And,
            E::binary(
                BinaryOp::And,
                E::binary(BinaryOp::Gt, E::col(1), E::lit(1i32)),
                E::binary(BinaryOp::Lt, E::col(2), E::lit(5i32)),
            ),
            E::binary(BinaryOp::Eq, E::col(0), E::col(2)),
        );
        let plan = LogicalPlan::Filter { input: Box::new(join), predicate: pred };
        let out = optimize(plan).unwrap();
        // Top: the cross-side conjunct stays as a filter over the join.
        match out {
            LogicalPlan::Filter { input, predicate } => {
                assert_eq!(predicate, E::binary(BinaryOp::Eq, E::col(0), E::col(2)));
                match *input {
                    LogicalPlan::Join { left, right, .. } => {
                        assert!(
                            matches!(*left, LogicalPlan::Filter { .. }),
                            "left-side conjunct not pushed: {left}"
                        );
                        match *right {
                            LogicalPlan::Filter { predicate, .. } => {
                                // r0 rebased from column 2 to column 0.
                                assert_eq!(
                                    predicate,
                                    E::binary(BinaryOp::Lt, E::col(0), E::lit(5i32))
                                );
                            }
                            other => panic!("right-side conjunct not pushed: {other}"),
                        }
                    }
                    other => panic!("{other}"),
                }
            }
            other => panic!("{other}"),
        }
    }

    fn add_table(catalog: &Catalog, name: &str, cols: Vec<(&str, crate::column::Column)>) {
        let schema = Arc::new(Schema::new_unchecked(
            cols.iter().map(|(n, c)| Field::new(*n, c.data_type())).collect(),
        ));
        catalog.create_table(name, schema).unwrap();
        let batch = crate::batch::Batch::from_columns(cols).unwrap();
        catalog.table(name).unwrap().write().append_batch(&batch).unwrap();
    }

    fn cat_scan(catalog: &Catalog, name: &str) -> LogicalPlan {
        let schema = catalog.table(name).unwrap().read().schema().clone();
        LogicalPlan::Scan { table: name.to_owned(), schema }
    }

    #[test]
    fn bare_aggregates_collapse_to_stats_literals() {
        use crate::column::Column;
        use crate::types::DataType;
        let catalog = Catalog::new();
        add_table(&catalog, "t", vec![("x", Column::from_i32s((0..1000).collect()))]);
        let agg_schema = Arc::new(Schema::new_unchecked(vec![
            Field::new("n", DataType::Int64),
            Field::new("lo", DataType::Int32),
            Field::new("hi", DataType::Int32),
        ]));
        let plan = LogicalPlan::Aggregate {
            input: Box::new(cat_scan(&catalog, "t")),
            group: vec![],
            aggs: vec![
                PlanAgg { func: AggFunc::CountStar, arg: None, distinct: false },
                PlanAgg { func: AggFunc::Min, arg: Some(Expr::col(0)), distinct: false },
                PlanAgg { func: AggFunc::Max, arg: Some(Expr::col(0)), distinct: false },
            ],
            schema: agg_schema,
        };
        let off = optimize_with_stats(plan.clone(), &catalog, false).unwrap();
        assert!(!off.from_stats);
        assert!(matches!(off.plan, LogicalPlan::Aggregate { .. }), "{}", off.plan);
        let on = optimize_with_stats(plan, &catalog, true).unwrap();
        assert!(on.from_stats);
        match on.plan {
            LogicalPlan::Project { input, exprs, .. } => {
                assert!(matches!(*input, LogicalPlan::UnitRow));
                assert_eq!(
                    exprs,
                    vec![
                        Expr::Literal(Value::Int64(1000)),
                        Expr::Literal(Value::Int32(0)),
                        Expr::Literal(Value::Int32(999)),
                    ]
                );
            }
            other => panic!("expected literal projection, got {other}"),
        }
    }

    #[test]
    fn skewed_join_swaps_build_side() {
        use crate::column::Column;
        use crate::types::DataType;
        let catalog = Catalog::new();
        add_table(&catalog, "small", vec![("k", Column::from_i32s((0..10).collect()))]);
        add_table(
            &catalog,
            "big",
            vec![("k", Column::from_i32s((0..1000).map(|i| i % 10).collect()))],
        );
        let join_schema = Arc::new(Schema::new_unchecked(vec![
            Field::new("lk", DataType::Int32),
            Field::new("rk", DataType::Int32),
        ]));
        let join = |l: &str, r: &str| LogicalPlan::Join {
            left: Box::new(cat_scan(&catalog, l)),
            right: Box::new(cat_scan(&catalog, r)),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: join_schema.clone(),
        };
        // Small left input: build there instead of on the big probe side.
        match optimize_with_stats(join("small", "big"), &catalog, true).unwrap().plan {
            LogicalPlan::Join { build_left, .. } => {
                assert!(build_left, "small left side should become the build side")
            }
            other => panic!("{other}"),
        }
        // Small right input: already the build side, no swap.
        match optimize_with_stats(join("big", "small"), &catalog, true).unwrap().plan {
            LogicalPlan::Join { build_left, .. } => assert!(!build_left),
            other => panic!("{other}"),
        }
        // Stats off: never swaps.
        match optimize_with_stats(join("small", "big"), &catalog, false).unwrap().plan {
            LogicalPlan::Join { build_left, .. } => assert!(!build_left),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn conjuncts_reorder_most_selective_first() {
        use crate::column::Column;
        let catalog = Catalog::new();
        add_table(&catalog, "t", vec![("x", Column::from_i32s((0..1000).collect()))]);
        // Weak range conjunct first, highly selective equality second.
        let weak = Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(10i32));
        let strong = Expr::binary(BinaryOp::Eq, Expr::col(0), Expr::lit(500i32));
        let plan = LogicalPlan::Filter {
            input: Box::new(cat_scan(&catalog, "t")),
            predicate: Expr::binary(BinaryOp::And, weak.clone(), strong.clone()),
        };
        let out = optimize_with_stats(plan, &catalog, true).unwrap().plan;
        match out {
            LogicalPlan::Filter { predicate, .. } => match predicate {
                Expr::Binary { op: BinaryOp::And, left, right } => {
                    assert_eq!(*left, strong, "equality should be evaluated first");
                    assert_eq!(*right, weak);
                }
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn join_chain_reorders_smallest_first_under_countstar() {
        use crate::column::Column;
        use crate::types::DataType;
        let catalog = Catalog::new();
        add_table(
            &catalog,
            "a",
            vec![("k", Column::from_i32s((0..1000).map(|i| i % 10).collect()))],
        );
        add_table(&catalog, "b", vec![("k", Column::from_i32s((0..10).collect()))]);
        add_table(&catalog, "c", vec![("k", Column::from_i32s((0..10).collect()))]);
        let ab = LogicalPlan::Join {
            left: Box::new(cat_scan(&catalog, "a")),
            right: Box::new(cat_scan(&catalog, "b")),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: Arc::new(Schema::new_unchecked(vec![
                Field::new("ak", DataType::Int32),
                Field::new("bk", DataType::Int32),
            ])),
        };
        let abc = LogicalPlan::Join {
            left: Box::new(ab),
            right: Box::new(cat_scan(&catalog, "c")),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            build_left: false,
            schema: Arc::new(Schema::new_unchecked(vec![
                Field::new("ak", DataType::Int32),
                Field::new("bk", DataType::Int32),
                Field::new("ck", DataType::Int32),
            ])),
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(abc),
            group: vec![],
            aggs: vec![PlanAgg { func: AggFunc::CountStar, arg: None, distinct: false }],
            schema: Arc::new(Schema::new_unchecked(vec![Field::new("n", DataType::Int64)])),
        };
        let out = optimize_with_stats(plan, &catalog, true).unwrap().plan;
        // COUNT(*) is order-insensitive, so the chain is rebuilt
        // smallest-relation-first under a restoring projection; the big
        // relation "a" (1000 rows) no longer drives the chain.
        let LogicalPlan::Aggregate { input, .. } = out else { panic!("{out}") };
        let LogicalPlan::Project { input, .. } = *input else {
            panic!("expected restoring projection, got {input}")
        };
        let mut leaf = input.as_ref();
        while let LogicalPlan::Join { left, .. } = leaf {
            leaf = left.as_ref();
        }
        match leaf {
            LogicalPlan::Scan { table, .. } => {
                assert_eq!(table, "b", "smallest connected relation should drive the chain")
            }
            other => panic!("{other}"),
        }
    }
}
