//! A small rule-based plan optimizer.
//!
//! Three rewrites that matter for an operator-at-a-time engine, where
//! every operator materializes its full result:
//!
//! 1. **Constant folding** — column-free, UDF-free subexpressions are
//!    evaluated at plan time (`a < 2 + 3` → `a < 5`).
//! 2. **Filter fusion & elimination** — adjacent filters merge into one
//!    conjunction; literal-`TRUE` filters disappear (so the scan's
//!    zero-copy snapshot flows through untouched).
//! 3. **Predicate pushdown** — filters move below projections (when they
//!    only reference pass-through columns), below sorts and distincts,
//!    and into the matching side of inner joins, shrinking intermediate
//!    materializations as early as possible.
//!
//! The optimizer is applied after scalar-subquery substitution, so
//! subquery results participate in folding.

use crate::column::Encoding;
use crate::error::DbResult;
use crate::exec::JoinType;
use crate::expr::{fuse, BinaryOp, Expr};
use crate::sql::binder::eval_constant;
use crate::sql::plan::LogicalPlan;
use crate::types::Value;
use crate::udf::FunctionRegistry;
use crate::verify::{expr_parallel_safe, exprs_parallel_safe};

/// The `EXPLAIN` annotation for one plan node: `" [parallel]"` when the
/// executor is *eligible* to run the operator in parallel (every expression
/// it evaluates is parallel-safe); the row threshold still decides at run
/// time. Pass to [`LogicalPlan::display_with`].
pub fn parallel_annotation(plan: &LogicalPlan, functions: &FunctionRegistry) -> Option<String> {
    let eligible = match plan {
        LogicalPlan::Filter { predicate, .. } => expr_parallel_safe(predicate, functions),
        LogicalPlan::Project { exprs, .. } => exprs_parallel_safe(exprs, functions),
        LogicalPlan::Join { join_type, residual, .. } => {
            *join_type != JoinType::Cross
                && residual.as_ref().map(|r| expr_parallel_safe(r, functions)).unwrap_or(true)
        }
        LogicalPlan::Aggregate { group, aggs, .. } => {
            aggs.iter().all(|a| !a.distinct)
                && exprs_parallel_safe(group, functions)
                && aggs
                    .iter()
                    .filter_map(|a| a.arg.as_ref())
                    .all(|e| expr_parallel_safe(e, functions))
        }
        LogicalPlan::Sort { keys, .. } => !keys.is_empty(),
        _ => false,
    };
    eligible.then(|| " [parallel]".to_owned())
}

/// The full static `EXPLAIN` annotation: [`parallel_annotation`] plus the
/// compressed-execution markers — `[fused]` on filters whose predicate has
/// a fusible shape (the kernel compiler may still bail per batch, e.g. on
/// a cross-family comparison), and `[dict]` / `[rle]` on scans of tables
/// that currently hold encoded columns. `EXPLAIN ANALYZE` reports what
/// actually ran; this reports what the executor is eligible to do.
pub fn explain_annotation(
    plan: &LogicalPlan,
    functions: &FunctionRegistry,
    catalog: &crate::catalog::Catalog,
) -> Option<String> {
    let mut ann = parallel_annotation(plan, functions).unwrap_or_default();
    match plan {
        LogicalPlan::Filter { predicate, .. } if fuse::fusible(predicate) => {
            ann.push_str(" [fused]");
        }
        LogicalPlan::Scan { table, .. } => {
            if let Ok(t) = catalog.table(table) {
                let batch = t.read().scan();
                let encodings: Vec<_> = batch.columns().iter().map(|c| c.encoding()).collect();
                if encodings.contains(&Encoding::Dict) {
                    ann.push_str(" [dict]");
                }
                if encodings.contains(&Encoding::Rle) {
                    ann.push_str(" [rle]");
                }
            }
        }
        _ => {}
    }
    (!ann.is_empty()).then_some(ann)
}

/// Optimizes a plan (bottom-up, fixed small pass set).
///
/// Debug builds re-run the structural plan verifier after each rewrite
/// pass, so an optimizer bug that breaks schema propagation or column
/// bounds is caught here rather than downstream in the executor.
pub fn optimize(plan: LogicalPlan) -> DbResult<LogicalPlan> {
    let plan = rewrite(plan)?;
    #[cfg(debug_assertions)]
    crate::verify::verify_rewrite(&plan)?;
    Ok(plan)
}

fn rewrite(plan: LogicalPlan) -> DbResult<LogicalPlan> {
    // Recurse first so child rewrites expose parent opportunities.
    let plan = match plan {
        LogicalPlan::Filter { input, mut predicate } => {
            let input = rewrite(*input)?;
            fold_expr(&mut predicate);
            push_filter(predicate, input)?
        }
        LogicalPlan::Project { input, mut exprs, schema } => {
            let input = rewrite(*input)?;
            for e in &mut exprs {
                fold_expr(e);
            }
            LogicalPlan::Project { input: Box::new(input), exprs, schema }
        }
        LogicalPlan::Join { left, right, join_type, left_keys, right_keys, residual, schema } => {
            let mut residual = residual;
            if let Some(r) = &mut residual {
                fold_expr(r);
            }
            LogicalPlan::Join {
                left: Box::new(rewrite(*left)?),
                right: Box::new(rewrite(*right)?),
                join_type,
                left_keys,
                right_keys,
                residual,
                schema,
            }
        }
        LogicalPlan::Aggregate { input, mut group, mut aggs, schema } => {
            for g in &mut group {
                fold_expr(g);
            }
            for a in &mut aggs {
                if let Some(arg) = &mut a.arg {
                    fold_expr(arg);
                }
            }
            LogicalPlan::Aggregate { input: Box::new(rewrite(*input)?), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(rewrite(*input)?), keys }
        }
        LogicalPlan::Limit { input, limit, offset } => {
            LogicalPlan::Limit { input: Box::new(rewrite(*input)?), limit, offset }
        }
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(rewrite(*input)?) }
        }
        LogicalPlan::UnionAll { inputs, schema } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(rewrite).collect::<DbResult<_>>()?,
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::TableFunction { .. }
        | LogicalPlan::UnitRow) => leaf,
    };
    Ok(plan)
}

/// Places a filter above `input`, pushing it down where legal.
fn push_filter(predicate: Expr, input: LogicalPlan) -> DbResult<LogicalPlan> {
    // TRUE filters vanish.
    if matches!(predicate, Expr::Literal(Value::Boolean(true))) {
        return Ok(input);
    }
    match input {
        // Filter(Filter(x)) fuses into one conjunction.
        LogicalPlan::Filter { input, predicate: inner } => {
            let fused = Expr::binary(BinaryOp::And, inner, predicate);
            push_filter(fused, *input)
        }
        // Filter over Sort/Distinct commutes (set-preserving operators).
        LogicalPlan::Sort { input, keys } => {
            Ok(LogicalPlan::Sort { input: Box::new(push_filter(predicate, *input)?), keys })
        }
        LogicalPlan::Distinct { input } => {
            Ok(LogicalPlan::Distinct { input: Box::new(push_filter(predicate, *input)?) })
        }
        // Filter over Project pushes down when every referenced output
        // column is a plain pass-through (`Column(i)`) — rewrite the
        // predicate in input coordinates.
        LogicalPlan::Project { input, exprs, schema } => {
            let mut refs = Vec::new();
            predicate.referenced_columns(&mut refs);
            let passthrough: Vec<Option<usize>> = exprs
                .iter()
                .map(|e| match e {
                    Expr::Column(i) => Some(*i),
                    _ => None,
                })
                .collect();
            if refs.iter().all(|&r| passthrough.get(r).copied().flatten().is_some()) {
                let map: Vec<usize> = passthrough
                    .iter()
                    .map(|p| p.unwrap_or(0)) // unused slots never referenced
                    .collect();
                let mut pushed = predicate;
                pushed.remap_columns(&map);
                let inner = push_filter(pushed, *input)?;
                Ok(LogicalPlan::Project { input: Box::new(inner), exprs, schema })
            } else {
                Ok(LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Project { input, exprs, schema }),
                    predicate,
                })
            }
        }
        // Filter over an inner join pushes conjuncts that reference only
        // one side into that side.
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for conj in split_conjuncts(predicate) {
                let mut refs = Vec::new();
                conj.referenced_columns(&mut refs);
                if !refs.is_empty() && refs.iter().all(|&r| r < left_width) {
                    left_preds.push(conj);
                } else if !refs.is_empty() && refs.iter().all(|&r| r >= left_width) {
                    let mut c = conj;
                    // Rebase to right-side coordinates.
                    let total = schema.len();
                    let map: Vec<usize> =
                        (0..total).map(|i| i.saturating_sub(left_width)).collect();
                    c.remap_columns(&map);
                    right_preds.push(c);
                } else {
                    keep.push(conj);
                }
            }
            let new_left = match combine(left_preds) {
                Some(p) => Box::new(push_filter(p, *left)?),
                None => Box::new(rewrite(*left)?),
            };
            let new_right = match combine(right_preds) {
                Some(p) => Box::new(push_filter(p, *right)?),
                None => Box::new(rewrite(*right)?),
            };
            let join = LogicalPlan::Join {
                left: new_left,
                right: new_right,
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            Ok(match combine(keep) {
                Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                None => join,
            })
        }
        other => Ok(LogicalPlan::Filter { input: Box::new(other), predicate }),
    }
}

fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { op: BinaryOp::And, left, right } => {
            let mut out = split_conjuncts(*left);
            out.extend(split_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

fn combine(preds: Vec<Expr>) -> Option<Expr> {
    preds.into_iter().reduce(|a, b| Expr::binary(BinaryOp::And, a, b))
}

/// True when the expression is safe and useful to fold: column-free,
/// UDF-free, subquery-free, and not already a literal.
fn foldable(e: &Expr) -> bool {
    fn pure(e: &Expr) -> bool {
        match e {
            Expr::Column(_) | Expr::Subquery(_) | Expr::Udf { .. } => false,
            Expr::Literal(_) => true,
            Expr::Binary { left, right, .. } => pure(left) && pure(right),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                pure(expr)
            }
            Expr::Case { operand, branches, else_expr } => {
                operand.as_deref().is_none_or(pure)
                    && branches.iter().all(|(w, t)| pure(w) && pure(t))
                    && else_expr.as_deref().is_none_or(pure)
            }
            Expr::InList { expr, list, .. } => pure(expr) && list.iter().all(pure),
            Expr::Like { expr, pattern, .. } => pure(expr) && pure(pattern),
            Expr::Between { expr, low, high, .. } => pure(expr) && pure(low) && pure(high),
            Expr::ScalarFn { args, .. } => args.iter().all(pure),
        }
    }
    !matches!(e, Expr::Literal(_)) && pure(e)
}

/// Folds constant subexpressions in place. Folding errors (e.g. division
/// by zero in dead CASE branches) leave the expression unchanged so the
/// error surfaces — or not — at execution time, matching unoptimized
/// semantics.
pub fn fold_expr(e: &mut Expr) {
    if foldable(e) {
        if let Ok(v) = eval_constant(e) {
            *e = Expr::Literal(v);
            return;
        }
    }
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Subquery(_) => {}
        Expr::Binary { left, right, .. } => {
            fold_expr(left);
            fold_expr(right);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
            fold_expr(expr)
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                fold_expr(o);
            }
            for (w, t) in branches {
                fold_expr(w);
                fold_expr(t);
            }
            if let Some(x) = else_expr {
                fold_expr(x);
            }
        }
        Expr::InList { expr, list, .. } => {
            fold_expr(expr);
            for x in list {
                fold_expr(x);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            fold_expr(expr);
            fold_expr(pattern);
        }
        Expr::Between { expr, low, high, .. } => {
            fold_expr(expr);
            fold_expr(low);
            fold_expr(high);
        }
        Expr::ScalarFn { args, .. } | Expr::Udf { args, .. } => {
            for a in args {
                fold_expr(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr as E;

    #[test]
    fn constants_fold() {
        let mut e = E::binary(
            BinaryOp::Lt,
            E::col(0),
            E::binary(BinaryOp::Add, E::lit(2i32), E::lit(3i32)),
        );
        fold_expr(&mut e);
        assert_eq!(e, E::binary(BinaryOp::Lt, E::col(0), E::Literal(Value::Int64(5))));
    }

    #[test]
    fn folding_errors_are_deferred() {
        // 1/0 must not panic or error during optimization.
        let mut e = E::binary(BinaryOp::Div, E::lit(1i32), E::lit(0i32));
        fold_expr(&mut e);
        assert!(matches!(e, E::Binary { .. }), "kept unfolded: {e}");
    }

    #[test]
    fn udf_calls_never_fold() {
        let mut e = E::Udf { name: "f".into(), args: vec![E::lit(1i32)] };
        fold_expr(&mut e);
        assert!(matches!(e, E::Udf { .. }));
    }

    fn scan(cols: usize) -> LogicalPlan {
        use crate::schema::{Field, Schema};
        let fields =
            (0..cols).map(|i| Field::new(format!("c{i}"), crate::types::DataType::Int32)).collect();
        LogicalPlan::Scan {
            table: "t".into(),
            schema: std::sync::Arc::new(Schema::new_unchecked(fields)),
        }
    }

    #[test]
    fn true_filter_removed() {
        let plan = LogicalPlan::Filter { input: Box::new(scan(1)), predicate: E::lit(true) };
        let out = optimize(plan).unwrap();
        assert!(matches!(out, LogicalPlan::Scan { .. }), "{out}");
    }

    #[test]
    fn adjacent_filters_fuse() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(1)),
                predicate: E::binary(BinaryOp::Gt, E::col(0), E::lit(1i32)),
            }),
            predicate: E::binary(BinaryOp::Lt, E::col(0), E::lit(9i32)),
        };
        let out = optimize(plan).unwrap();
        match out {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert!(matches!(predicate, E::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn filter_pushes_below_passthrough_project() {
        use crate::schema::{Field, Schema};
        let project = LogicalPlan::Project {
            input: Box::new(scan(3)),
            exprs: vec![E::col(2), E::col(0)],
            schema: std::sync::Arc::new(Schema::new_unchecked(vec![
                Field::new("a", crate::types::DataType::Int32),
                Field::new("b", crate::types::DataType::Int32),
            ])),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(project),
            predicate: E::binary(BinaryOp::Eq, E::col(1), E::lit(5i32)),
        };
        let out = optimize(plan).unwrap();
        match out {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Filter { predicate, input } => {
                    // Output column 1 maps back to input column 0.
                    assert_eq!(predicate, E::binary(BinaryOp::Eq, E::col(0), E::lit(5i32)));
                    assert!(matches!(*input, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected filter under project, got {other}"),
            },
            other => panic!("expected project on top, got {other}"),
        }
    }

    #[test]
    fn filter_stays_above_computed_project() {
        use crate::schema::{Field, Schema};
        let project = LogicalPlan::Project {
            input: Box::new(scan(1)),
            exprs: vec![E::binary(BinaryOp::Add, E::col(0), E::lit(1i32))],
            schema: std::sync::Arc::new(Schema::new_unchecked(vec![Field::new(
                "a",
                crate::types::DataType::Int64,
            )])),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(project),
            predicate: E::binary(BinaryOp::Gt, E::col(0), E::lit(0i32)),
        };
        let out = optimize(plan).unwrap();
        assert!(matches!(out, LogicalPlan::Filter { .. }), "{out}");
    }

    #[test]
    fn filter_splits_across_inner_join() {
        use crate::schema::{Field, Schema};
        let join_schema = std::sync::Arc::new(Schema::new_unchecked(vec![
            Field::new("l0", crate::types::DataType::Int32),
            Field::new("l1", crate::types::DataType::Int32),
            Field::new("r0", crate::types::DataType::Int32),
        ]));
        let join = LogicalPlan::Join {
            left: Box::new(scan(2)),
            right: Box::new(scan(1)),
            join_type: JoinType::Inner,
            left_keys: vec![0],
            right_keys: vec![0],
            residual: None,
            schema: join_schema,
        };
        // (l1 > 1) AND (r0 < 5) AND (l0 = r0-ish both sides)
        let pred = E::binary(
            BinaryOp::And,
            E::binary(
                BinaryOp::And,
                E::binary(BinaryOp::Gt, E::col(1), E::lit(1i32)),
                E::binary(BinaryOp::Lt, E::col(2), E::lit(5i32)),
            ),
            E::binary(BinaryOp::Eq, E::col(0), E::col(2)),
        );
        let plan = LogicalPlan::Filter { input: Box::new(join), predicate: pred };
        let out = optimize(plan).unwrap();
        // Top: the cross-side conjunct stays as a filter over the join.
        match out {
            LogicalPlan::Filter { input, predicate } => {
                assert_eq!(predicate, E::binary(BinaryOp::Eq, E::col(0), E::col(2)));
                match *input {
                    LogicalPlan::Join { left, right, .. } => {
                        assert!(
                            matches!(*left, LogicalPlan::Filter { .. }),
                            "left-side conjunct not pushed: {left}"
                        );
                        match *right {
                            LogicalPlan::Filter { predicate, .. } => {
                                // r0 rebased from column 2 to column 0.
                                assert_eq!(
                                    predicate,
                                    E::binary(BinaryOp::Lt, E::col(0), E::lit(5i32))
                                );
                            }
                            other => panic!("right-side conjunct not pushed: {other}"),
                        }
                    }
                    other => panic!("{other}"),
                }
            }
            other => panic!("{other}"),
        }
    }
}
