//! Plan execution: turns a bound [`LogicalPlan`] into a [`Batch`].

use crate::batch::Batch;
use crate::catalog::Catalog;
use crate::column::{Column, Encoding};
use crate::error::{DbError, DbResult};
use crate::exec;
use crate::expr::{eval, EvalContext, Expr};
use crate::metrics;
use crate::parallel::{effective_threads, parallel_map, DEFAULT_MORSEL_ROWS};
use crate::schema::Schema;
use crate::sql::plan::{BoundTableArg, LogicalPlan, PlanAgg};
use crate::types::Value;
use crate::udf::FunctionRegistry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Input rows below which operators stay serial by default: morsel
/// scheduling overhead swamps the win on small batches.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 32 * 1024;

/// Divisor applied to the parallel threshold for heavy operators (hash
/// join, hash aggregate, sort). Per-row cost there is several times a
/// filter/project's, so the morsel-scheduling overhead amortizes at a
/// proportionally smaller input: with the default 32K threshold these
/// operators go parallel at 8K rows. Plan-time cardinality estimates
/// (see [`crate::sql::estimate`]) pick the operator shapes; this runtime
/// gate still keys off actual input rows so estimation error can never
/// serialize a genuinely large input.
pub const HEAVY_OP_DIVISOR: usize = 4;

/// Knobs controlling parallel execution of a plan.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker count including the calling thread; `0` resolves to the
    /// hardware thread count (or the `MLCS_THREADS` override).
    pub threads: usize,
    /// Minimum operator input rows before the parallel path engages.
    pub parallel_threshold: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
    /// Wall-clock deadline for the whole statement. Checked at every
    /// operator (batch) boundary and inside every parallel operator at
    /// morsel boundaries; expiry surfaces as [`DbError::Timeout`] carrying
    /// the operator path that observed it.
    pub deadline: Option<Instant>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            threads: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            deadline: None,
        }
    }
}

impl ExecOptions {
    /// Options that always take the serial path.
    pub fn serial() -> ExecOptions {
        ExecOptions {
            threads: 1,
            parallel_threshold: usize::MAX,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            deadline: None,
        }
    }

    /// These options with the statement deadline set `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> ExecOptions {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// These options with the parallel threshold lowered for a heavy
    /// operator (join/aggregate/sort) — see [`HEAVY_OP_DIVISOR`]. A
    /// serial policy (`usize::MAX`) stays effectively serial, and a
    /// forced-parallel threshold of 1 stays 1 (`Parallelism::enabled`
    /// clamps the threshold to at least 1).
    fn for_heavy(&self) -> ExecOptions {
        ExecOptions { parallel_threshold: self.parallel_threshold / HEAVY_OP_DIVISOR, ..*self }
    }

    /// The operator-level policy under these options, given whether every
    /// expression the operator evaluates is parallel-safe. The deadline is
    /// carried into the policy even on the serial path so morsel-level
    /// checks stay active wherever the operator ends up running.
    fn parallelism(&self, safe: bool) -> exec::Parallelism {
        if !safe {
            return exec::Parallelism { deadline: self.deadline, ..exec::Parallelism::serial() };
        }
        exec::Parallelism {
            threads: effective_threads(self.threads),
            threshold: self.parallel_threshold,
            morsel_rows: self.morsel_rows.max(1),
            deadline: self.deadline,
        }
    }
}

/// The policy for an operator that evaluates `exprs`: parallel only when
/// every expression is safe to run concurrently (see
/// [`crate::verify::expr_parallel_safe`]).
fn par_for(opts: &ExecOptions, exprs: &[&Expr], functions: &FunctionRegistry) -> exec::Parallelism {
    let safe = exprs.iter().all(|e| crate::verify::expr_parallel_safe(e, functions));
    opts.parallelism(safe)
}

/// Runtime statistics observed for one plan operator during a traced
/// (`EXPLAIN ANALYZE`) execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Total rows fed into the operator (sum of its inputs' output rows;
    /// zero for leaves).
    pub rows_in: usize,
    /// Rows the operator produced.
    pub rows_out: usize,
    /// Wall time including the operator's inputs (inclusive time, as in
    /// `EXPLAIN ANALYZE` elsewhere); per-morsel work is folded in because
    /// the caller blocks until every morsel finishes.
    pub elapsed: Duration,
    /// Whether the parallel path actually engaged (threshold met, workers
    /// available, expressions safe).
    pub parallel: bool,
    /// Whether a fused predicate kernel ran (filters only).
    pub fused: bool,
    /// Whether the operator saw dictionary-encoded input columns.
    pub dict: bool,
    /// Whether the operator saw run-length-encoded input columns.
    pub rle: bool,
    /// The optimizer's estimated output cardinality for this node, when
    /// column statistics were available at plan time (see
    /// [`crate::sql::estimate`]). Shown as `est=N` so estimation error is
    /// visible next to actual rows.
    pub est: Option<u64>,
}

/// Per-node statistics collected while executing a plan, keyed by node
/// identity. Populated by [`execute_plan_traced`]; the plan value must not
/// move between execution and [`PlanTrace::annotation`] lookups.
#[derive(Debug, Default)]
pub struct PlanTrace {
    nodes: Mutex<HashMap<usize, NodeStats>>,
    /// Plan-time cardinality estimates keyed like `nodes` (node address),
    /// installed via [`PlanTrace::set_estimates`] before execution.
    ests: Mutex<HashMap<usize, u64>>,
}

impl PlanTrace {
    /// An empty trace.
    pub fn new() -> PlanTrace {
        PlanTrace::default()
    }

    fn key(plan: &LogicalPlan) -> usize {
        plan as *const LogicalPlan as usize
    }

    /// Installs plan-time cardinality estimates (from
    /// [`crate::sql::estimate::estimate_map`] over the same plan value)
    /// so `EXPLAIN ANALYZE` can print `est=N` next to actual rows.
    pub fn set_estimates(&self, estimates: HashMap<usize, u64>) {
        let mut ests = match self.ests.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *ests = estimates;
    }

    fn est_for(&self, key: usize) -> Option<u64> {
        let ests = match self.ests.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ests.get(&key).copied()
    }

    fn record(&self, plan: &LogicalPlan, mut stats: NodeStats) {
        let key = Self::key(plan);
        stats.est = self.est_for(key);
        let mut nodes = match self.nodes.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        nodes.insert(key, stats);
    }

    /// The statistics recorded for `plan`'s node, if it executed.
    pub fn get(&self, plan: &LogicalPlan) -> Option<NodeStats> {
        let nodes = match self.nodes.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        nodes.get(&Self::key(plan)).copied()
    }

    fn rows_out(&self, plan: &LogicalPlan) -> usize {
        self.get(plan).map(|s| s.rows_out).unwrap_or(0)
    }

    /// The `EXPLAIN ANALYZE` suffix for `plan`'s node, e.g.
    /// `" (rows=1000, in=32768, time=1.204ms) [parallel]"`. Returns `None`
    /// for nodes that never executed.
    pub fn annotation(&self, plan: &LogicalPlan) -> Option<String> {
        let s = self.get(plan)?;
        let mut out = format!(" (rows={}", s.rows_out);
        if let Some(e) = s.est {
            out.push_str(&format!(", est={e}"));
        }
        if !plan.children().is_empty() {
            out.push_str(&format!(", in={}", s.rows_in));
        }
        out.push_str(&format!(", time={})", format_duration(s.elapsed)));
        if s.parallel {
            out.push_str(" [parallel]");
        }
        if s.fused {
            out.push_str(" [fused]");
        }
        if s.dict {
            out.push_str(" [dict]");
        }
        if s.rle {
            out.push_str(" [rle]");
        }
        Some(out)
    }
}

/// Renders a duration for plan annotations: sub-second values in
/// milliseconds with microsecond precision, longer ones in seconds.
fn format_duration(d: Duration) -> String {
    if d < Duration::from_secs(1) {
        format!("{:.3}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.3}s", d.as_secs_f64())
    }
}

/// The lowercase metric segment for an operator, as used in the
/// `exec.<op>.rows` / `exec.<op>.time_ns` registry names.
fn metric_op(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "scan",
        LogicalPlan::UnitRow => "unit_row",
        LogicalPlan::TableFunction { .. } => "table_function",
        LogicalPlan::Filter { .. } => "filter",
        LogicalPlan::Project { .. } => "project",
        LogicalPlan::Join { .. } => "hash_join",
        LogicalPlan::Aggregate { .. } => "aggregate",
        LogicalPlan::Sort { .. } => "sort",
        LogicalPlan::Limit { .. } => "limit",
        LogicalPlan::Distinct { .. } => "distinct",
        LogicalPlan::UnionAll { .. } => "union_all",
    }
}

/// Executes a plan against the catalog and function registry with default
/// [`ExecOptions`] (parallel above the row threshold).
///
/// Scalar subqueries must already be substituted (see
/// [`substitute_in_plan`]); encountering a placeholder is an internal error.
/// Debug builds re-verify the plan (see [`crate::verify`]) before running
/// it, so plans reaching the executor through any entry point are checked.
pub fn execute_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
) -> DbResult<Batch> {
    execute_plan_with(plan, catalog, functions, &ExecOptions::default())
}

/// [`execute_plan`] with explicit parallelism options.
pub fn execute_plan_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
    opts: &ExecOptions,
) -> DbResult<Batch> {
    #[cfg(debug_assertions)]
    crate::verify::verify_plan(plan, functions)?;
    execute_node(plan, catalog, functions, opts, None)
}

/// [`execute_plan_with`] recording per-node runtime statistics into `trace`
/// — the execution engine behind `EXPLAIN ANALYZE`. The same `plan` value
/// must be used for later [`PlanTrace::annotation`] lookups.
pub fn execute_plan_traced(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
    opts: &ExecOptions,
    trace: &PlanTrace,
) -> DbResult<Batch> {
    #[cfg(debug_assertions)]
    crate::verify::verify_plan(plan, functions)?;
    execute_node(plan, catalog, functions, opts, Some(trace))
}

/// A batch plus an optional selection vector over it — the unit flowing
/// between pipeline-friendly operators (scan → filter → project/aggregate).
/// A filter records *which* rows survive without gathering them; the
/// consumer then gathers only the columns it actually touches (late
/// materialization). `sel` indices are strictly increasing row numbers
/// into `batch`; `None` means all rows.
struct ExecView {
    batch: Batch,
    sel: Option<Vec<u32>>,
}

impl ExecView {
    fn full(batch: Batch) -> ExecView {
        ExecView { batch, sel: None }
    }

    /// Logical row count (after the selection).
    fn rows(&self) -> usize {
        self.sel.as_ref().map_or(self.batch.rows(), Vec::len)
    }

    /// Gathers the selected rows across all columns. A full selection is
    /// the identity (selections are increasing), so no gather happens.
    fn materialize(self) -> Batch {
        match self.sel {
            None => self.batch,
            Some(s) if s.len() == self.batch.rows() => self.batch,
            Some(s) => self.batch.take(&s),
        }
    }

    /// The late-materialization gather: only the columns in `cols`, only
    /// the selected rows. Dictionary columns gather codes, not values.
    fn gather(&self, cols: &[usize]) -> DbResult<Batch> {
        let narrow = self.batch.project(cols)?;
        Ok(match &self.sel {
            None => narrow,
            Some(s) if s.len() == self.batch.rows() => narrow,
            Some(s) => narrow.take(s),
        })
    }
}

/// Per-operator execution flags feeding [`NodeStats`] markers.
#[derive(Debug, Clone, Copy, Default)]
struct OpFlags {
    parallel: bool,
    fused: bool,
    dict: bool,
    rle: bool,
}

impl OpFlags {
    /// Flags with dict/rle derived from the columns of `b`.
    fn encodings(b: &Batch) -> OpFlags {
        OpFlags {
            dict: b.columns().iter().any(|c| c.encoding() == Encoding::Dict),
            rle: b.columns().iter().any(|c| c.encoding() == Encoding::Rle),
            ..OpFlags::default()
        }
    }
}

/// The sorted, deduplicated input columns referenced by `exprs`.
fn referenced(exprs: &[&Expr]) -> Vec<usize> {
    let mut refs = Vec::new();
    for e in exprs {
        e.referenced_columns(&mut refs);
    }
    refs.sort_unstable();
    refs.dedup();
    refs
}

/// The remap table sending original column index → position in `refs`
/// (for [`Expr::remap_columns`] after a [`ExecView::gather`]).
fn remap_table(refs: &[usize], width: usize) -> Vec<usize> {
    let mut map = vec![0usize; width];
    for (pos, &i) in refs.iter().enumerate() {
        map[i] = pos;
    }
    map
}

/// The recursive executor behind [`execute_plan_with`]: [`execute_view`]
/// with the output materialized, for operators (and public entry points)
/// that need a plain batch.
fn execute_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
    opts: &ExecOptions,
    trace: Option<&PlanTrace>,
) -> DbResult<Batch> {
    Ok(execute_view(plan, catalog, functions, opts, trace)?.materialize())
}

/// The recursive executor, producing a view (possibly with a pending
/// selection). Each node's output rows and inclusive wall time feed the
/// `exec.<op>.rows` / `exec.<op>.time_ns` registry metrics, and — when
/// tracing — the per-node [`PlanTrace`] used by `EXPLAIN ANALYZE`.
fn execute_view(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
    opts: &ExecOptions,
    trace: Option<&PlanTrace>,
) -> DbResult<ExecView> {
    let op = metric_op(plan);
    if let Some(d) = opts.deadline {
        if Instant::now() >= d {
            metrics::counter("exec.deadline_expired").incr();
            return Err(DbError::Timeout { path: op.to_owned() });
        }
    }
    let start = Instant::now();
    let (view, flags) =
        run_operator(plan, catalog, functions, opts, trace).map_err(|e| match e {
            // Grow the operator path as the timeout unwinds: a morsel-level
            // check reports an empty path, the operator that observed it
            // contributes its name, and each ancestor prepends its own.
            DbError::Timeout { path } if path.is_empty() => {
                metrics::counter("exec.deadline_expired").incr();
                DbError::Timeout { path: op.to_owned() }
            }
            DbError::Timeout { path } => DbError::Timeout { path: format!("{op}/{path}") },
            other => other,
        })?;
    let elapsed = start.elapsed();
    metrics::counter(&format!("exec.{op}.rows")).add(view.rows() as u64);
    metrics::record_duration(&format!("exec.{op}.time_ns"), elapsed);
    if let Some(tr) = trace {
        let rows_in = plan.children().iter().map(|c| tr.rows_out(c)).sum();
        tr.record(
            plan,
            NodeStats {
                rows_in,
                rows_out: view.rows(),
                elapsed,
                parallel: flags.parallel,
                fused: flags.fused,
                dict: flags.dict,
                rle: flags.rle,
                est: None, // filled from the trace's estimate map in record()
            },
        );
    }
    Ok(view)
}

/// One operator's work: produces the node's output view and the flags
/// describing which specialized paths engaged for it.
fn run_operator(
    plan: &LogicalPlan,
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
    opts: &ExecOptions,
    trace: Option<&PlanTrace>,
) -> DbResult<(ExecView, OpFlags)> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let b = catalog.table(table)?.read().scan();
            #[cfg(debug_assertions)]
            crate::verify::verify_batch_encodings(&b)?;
            let flags = OpFlags::encodings(&b);
            Ok((ExecView::full(b), flags))
        }
        LogicalPlan::UnitRow => Ok((ExecView::full(unit_batch()?), OpFlags::default())),
        LogicalPlan::TableFunction { name, args, schema } => {
            let udf = functions.table(name)?;
            let mut arg_cols: Vec<Arc<Column>> = Vec::new();
            for a in args {
                match a {
                    BoundTableArg::Scalar(e) => {
                        let unit = unit_batch()?;
                        let ctx = EvalContext::new(&unit, Some(functions.as_ref()));
                        arg_cols.push(Arc::new(eval(&ctx, e)?));
                    }
                    BoundTableArg::Plan(p) => {
                        let b = execute_node(p, catalog, functions, opts, trace)?;
                        arg_cols.extend(b.columns().iter().cloned());
                    }
                }
            }
            metrics::counter(&format!("udf.{name}.invocations")).incr();
            metrics::counter("udf.table.invocations").incr();
            let out = udf.invoke(&arg_cols)?;
            Ok((ExecView::full(conform(out, schema.clone())?), OpFlags::default()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let v = execute_view(input, catalog, functions, opts, trace)?;
            let par = par_for(opts, &[predicate], functions);
            let mut flags = OpFlags::encodings(&v.batch);
            match v.sel {
                None => {
                    // Produce a selection over the input batch; rows are
                    // gathered only when a downstream operator needs them.
                    let (sel, st) =
                        exec::filter_sel_par(&v.batch, predicate, Some(functions), par)?;
                    flags.parallel = st.parallel;
                    flags.fused = st.fused;
                    Ok((ExecView { batch: v.batch, sel: Some(sel) }, flags))
                }
                Some(prev) => {
                    // Stacked filters: evaluate over only the columns this
                    // predicate references, restricted to the surviving
                    // rows, then map back to input-batch row numbers.
                    let refs = referenced(&[predicate]);
                    let narrow = ExecView { batch: v.batch.clone(), sel: Some(prev.clone()) }
                        .gather(&refs)?;
                    let mut pred = predicate.clone();
                    pred.remap_columns(&remap_table(&refs, v.batch.width()));
                    let (sub_sel, st) = exec::filter_sel_par(&narrow, &pred, Some(functions), par)?;
                    flags.parallel = st.parallel;
                    flags.fused = st.fused;
                    let sel = sub_sel.iter().map(|&i| prev[i as usize]).collect();
                    Ok((ExecView { batch: v.batch, sel: Some(sel) }, flags))
                }
            }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let v = execute_view(input, catalog, functions, opts, trace)?;
            let expr_refs: Vec<&Expr> = exprs.iter().collect();
            let par = par_for(opts, &expr_refs, functions);
            let mut flags = OpFlags::encodings(&v.batch);
            // Gather only the referenced columns (keeping at least one so
            // constant-only projections still see the right row count).
            let mut refs = referenced(&expr_refs);
            if refs.is_empty() && v.batch.width() > 0 {
                refs.push(0);
            }
            let narrow = v.gather(&refs)?;
            let mut ex = exprs.to_vec();
            let map = remap_table(&refs, v.batch.width());
            for e in &mut ex {
                e.remap_columns(&map);
            }
            flags.parallel = par.enabled(narrow.rows());
            let out = project_par(&narrow, &ex, schema.clone(), functions, par)?;
            Ok((ExecView::full(out), flags))
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            build_left,
            schema,
        } => {
            let l = execute_node(left, catalog, functions, opts, trace)?;
            let r = execute_node(right, catalog, functions, opts, trace)?;
            // The hash join itself evaluates no expressions, so it is
            // gated only by the row threshold (lowered for heavy ops).
            let par = opts.for_heavy().parallelism(true);
            // Mirror hash_join_par's own gate (build or probe side big
            // enough, cross joins always serial).
            let ran_parallel =
                *join_type != exec::JoinType::Cross && par.enabled(l.rows().max(r.rows()));
            let mut joined = if *build_left {
                exec::hash_join_build_left_par(&l, &r, left_keys, right_keys, *join_type, par)?
            } else {
                exec::hash_join_par(&l, &r, left_keys, right_keys, *join_type, par)?
            };
            if let Some(pred) = residual {
                let par = par_for(opts, &[pred], functions);
                joined = exec::filter_par(&joined, pred, Some(functions), par)?;
            }
            let flags = OpFlags { parallel: ran_parallel, ..OpFlags::default() };
            Ok((ExecView::full(conform(joined, schema.clone())?), flags))
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let v = execute_view(input, catalog, functions, opts, trace)?;
            // Gather only the columns the group keys and aggregate
            // arguments reference (keeping one so COUNT(*) sees the row
            // count), then aggregate over the narrow batch.
            let mut expr_refs: Vec<&Expr> = group.iter().collect();
            expr_refs.extend(aggs.iter().filter_map(|a| a.arg.as_ref()));
            let mut refs = referenced(&expr_refs);
            if refs.is_empty() && v.batch.width() > 0 {
                refs.push(0);
            }
            let mut flags = OpFlags::encodings(&v.batch);
            let narrow = v.gather(&refs)?;
            let map = remap_table(&refs, v.batch.width());
            let mut group = group.to_vec();
            for g in &mut group {
                g.remap_columns(&map);
            }
            let mut aggs = aggs.to_vec();
            for a in &mut aggs {
                if let Some(arg) = &mut a.arg {
                    arg.remap_columns(&map);
                }
            }
            let (out, ran_parallel) =
                aggregate(&narrow, &group, &aggs, schema.clone(), functions, &opts.for_heavy())?;
            flags.parallel = ran_parallel;
            Ok((ExecView::full(out), flags))
        }
        LogicalPlan::Sort { input, keys } => {
            let b = execute_node(input, catalog, functions, opts, trace)?;
            let keys: Vec<exec::SortKey> = keys
                .iter()
                .map(|k| exec::SortKey {
                    column: k.column,
                    ascending: k.ascending,
                    nulls_first: k.nulls_first,
                })
                .collect();
            let par = opts.for_heavy().parallelism(true);
            let ran_parallel = !keys.is_empty() && par.enabled(b.rows());
            let out = exec::sort_par(&b, &keys, par)?;
            let flags = OpFlags { parallel: ran_parallel, ..OpFlags::default() };
            Ok((ExecView::full(out), flags))
        }
        LogicalPlan::Limit { input, limit, offset } => {
            let b = execute_node(input, catalog, functions, opts, trace)?;
            Ok((ExecView::full(exec::limit(&b, *limit, *offset)), OpFlags::default()))
        }
        LogicalPlan::Distinct { input } => {
            let b = execute_node(input, catalog, functions, opts, trace)?;
            Ok((ExecView::full(exec::distinct(&b)), OpFlags::default()))
        }
        LogicalPlan::UnionAll { inputs, schema } => {
            let batches: Vec<Batch> = inputs
                .iter()
                .map(|p| {
                    execute_node(p, catalog, functions, opts, trace)
                        .and_then(|b| conform(b, schema.clone()))
                })
                .collect::<DbResult<_>>()?;
            Ok((ExecView::full(Batch::concat(&batches)?), OpFlags::default()))
        }
    }
}

/// A one-row batch with a single hidden column, used to evaluate
/// expressions that reference no input (e.g. `SELECT 1`).
fn unit_batch() -> DbResult<Batch> {
    Batch::from_columns(vec![("__unit", Column::from_bools(vec![false]))])
}

/// Morsel-parallel projection: each morsel evaluates the expressions over
/// its slice of the input, and the per-morsel batches are concatenated in
/// morsel order. Falls back to [`project`] below the policy threshold.
fn project_par(
    input: &Batch,
    exprs: &[Expr],
    schema: Arc<Schema>,
    functions: &Arc<FunctionRegistry>,
    par: exec::Parallelism,
) -> DbResult<Batch> {
    if !par.enabled(input.rows()) {
        return project(input, exprs, schema, functions);
    }
    let batch = input.clone();
    let ex = exprs.to_vec();
    let sch = schema.clone();
    let funcs = Arc::clone(functions);
    let parts = parallel_map(input.rows(), par.morsel_rows, par.threads, move |m| {
        par.check_deadline()?;
        let slice = batch.slice(m.start, m.len);
        project(&slice, &ex, sch.clone(), &funcs)
    })?;
    Batch::concat(&parts)
}

/// Evaluates projection expressions over `input` and labels the result with
/// `schema`, broadcasting constants and casting to declared types.
fn project(
    input: &Batch,
    exprs: &[Expr],
    schema: Arc<Schema>,
    functions: &FunctionRegistry,
) -> DbResult<Batch> {
    let ctx = EvalContext::new(input, Some(functions));
    let n = input.rows();
    let mut columns = Vec::with_capacity(exprs.len());
    for (e, f) in exprs.iter().zip(schema.fields()) {
        let c = eval(&ctx, e)?;
        let c = c.broadcast_to(n)?;
        let c = if c.data_type() == f.dtype { c } else { c.cast(f.dtype)? };
        columns.push(Arc::new(c));
    }
    Batch::new(schema, columns)
}

/// Evaluates group and aggregate-argument expressions, runs the hash
/// aggregate, and labels the output with the plan schema. Also reports
/// whether the parallel aggregate path engaged.
fn aggregate(
    input: &Batch,
    group: &[Expr],
    aggs: &[PlanAgg],
    schema: Arc<Schema>,
    functions: &FunctionRegistry,
    opts: &ExecOptions,
) -> DbResult<(Batch, bool)> {
    let ctx = EvalContext::new(input, Some(functions));
    let n = input.rows();
    // Pre-batch: group key columns first, then aggregate arguments.
    let mut pre_cols: Vec<(String, Column)> = Vec::new();
    for (i, g) in group.iter().enumerate() {
        let c = eval(&ctx, g)?.broadcast_to(n)?;
        pre_cols.push((format!("g{i}"), c));
    }
    let mut calls = Vec::with_capacity(aggs.len());
    for (i, a) in aggs.iter().enumerate() {
        let arg = match &a.arg {
            Some(e) => {
                let c = eval(&ctx, e)?.broadcast_to(n)?;
                pre_cols.push((format!("a{i}"), c));
                Some(pre_cols.len() - 1)
            }
            None => None,
        };
        calls.push(exec::AggCall { func: a.func, arg, distinct: a.distinct });
    }
    if pre_cols.is_empty() {
        // COUNT(*)-only aggregation: no keys, no arguments. Carry a dummy
        // column so the pre-batch still knows the input row count.
        pre_cols.push(("__rows".to_owned(), Column::from_bools(vec![false; n])));
    }
    let pre = Batch::from_columns(pre_cols.iter().map(|(n, c)| (n.as_str(), c.clone())).collect())?;
    let group_keys: Vec<usize> = (0..group.len()).collect();
    // The hash aggregate reads only the materialized pre-batch, but stay
    // conservative and mirror the EXPLAIN gating: parallel only when the
    // whole pipeline's expressions are safe.
    let mut exprs: Vec<&Expr> = group.iter().collect();
    exprs.extend(aggs.iter().filter_map(|a| a.arg.as_ref()));
    let par = par_for(opts, &exprs, functions);
    // Mirror hash_aggregate_par's gate: DISTINCT aggregates and inputs
    // below the threshold take the serial path.
    let ran_parallel = par.enabled(pre.rows()) && !calls.iter().any(|c| c.distinct);
    let out = exec::hash_aggregate_par(&pre, &group_keys, &calls, par)?;
    Ok((conform(out, schema)?, ran_parallel))
}

/// Relabels `batch` with `schema`, casting columns whose types differ.
pub fn conform(batch: Batch, schema: Arc<Schema>) -> DbResult<Batch> {
    if batch.width() != schema.len() {
        return Err(DbError::internal(format!(
            "plan schema has {} columns but execution produced {}",
            schema.len(),
            batch.width()
        )));
    }
    let mut columns = Vec::with_capacity(batch.width());
    for (c, f) in batch.columns().iter().zip(schema.fields()) {
        if c.data_type() == f.dtype {
            columns.push(c.clone());
        } else {
            columns.push(Arc::new(c.cast(f.dtype)?));
        }
    }
    Batch::new(schema, columns)
}

/// Substitutes computed scalar-subquery values into every expression of the
/// plan (recursively).
pub fn substitute_in_plan(plan: &mut LogicalPlan, values: &[Value]) {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::UnitRow => {}
        LogicalPlan::TableFunction { args, .. } => {
            for a in args {
                match a {
                    BoundTableArg::Scalar(e) => e.substitute_subqueries(values),
                    BoundTableArg::Plan(p) => substitute_in_plan(p, values),
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            predicate.substitute_subqueries(values);
            substitute_in_plan(input, values);
        }
        LogicalPlan::Project { input, exprs, .. } => {
            for e in exprs {
                e.substitute_subqueries(values);
            }
            substitute_in_plan(input, values);
        }
        LogicalPlan::Join { left, right, residual, .. } => {
            if let Some(r) = residual {
                r.substitute_subqueries(values);
            }
            substitute_in_plan(left, values);
            substitute_in_plan(right, values);
        }
        LogicalPlan::Aggregate { input, group, aggs, .. } => {
            for g in group {
                g.substitute_subqueries(values);
            }
            for a in aggs {
                if let Some(arg) = &mut a.arg {
                    arg.substitute_subqueries(values);
                }
            }
            substitute_in_plan(input, values);
        }
        LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => substitute_in_plan(input, values),
        LogicalPlan::UnionAll { inputs, .. } => {
            for p in inputs {
                substitute_in_plan(p, values);
            }
        }
    }
}

/// Evaluates the statement's scalar subqueries in order, substituting each
/// result into later subqueries, and returns the computed values.
///
/// A subquery returning zero rows yields NULL; more than one row or column
/// is an error.
pub fn evaluate_scalar_subqueries(
    subs: &[LogicalPlan],
    catalog: &Catalog,
    functions: &Arc<FunctionRegistry>,
) -> DbResult<Vec<Value>> {
    // Scalar subqueries run serially: they execute once per statement and
    // their plans are re-verified here rather than gated per operator.
    let opts = ExecOptions::serial();
    let mut values: Vec<Value> = Vec::with_capacity(subs.len());
    for sub in subs {
        let mut plan = sub.clone();
        substitute_in_plan(&mut plan, &values);
        crate::verify::verify_plan(&plan, functions)?;
        let batch = execute_node(&plan, catalog, functions, &opts, None)?;
        if batch.width() != 1 {
            return Err(DbError::bind(format!(
                "scalar subquery returned {} columns",
                batch.width()
            )));
        }
        let v = match batch.rows() {
            0 => Value::Null,
            1 => batch.column(0).value(0),
            n => {
                return Err(DbError::bind(format!(
                    "scalar subquery returned {n} rows; expected at most one"
                )))
            }
        };
        values.push(v);
    }
    Ok(values)
}
