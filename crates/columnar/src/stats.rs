//! Live per-column statistics: row/null counts, min/max, and NDV.
//!
//! Every [`crate::table::Table`] carries a [`TableStats`] that the
//! cost-based optimizer ([`crate::sql::optimizer`]) and the cardinality
//! estimator ([`crate::sql::estimate`]) read through the catalog. Stats
//! are maintained on the table's own mutation paths:
//!
//! * **Appends** merge exact per-batch stats incrementally (O(batch)).
//! * The **encoding sweep** (`auto_encode`, which already runs on every
//!   table-size doubling) recomputes stats from scratch, so full-sweep
//!   cost stays amortized O(1) per appended row.
//! * Deletes and updates recompute eagerly — they are rare and already
//!   O(table).
//!
//! **Exactness contract.** `rows`, `nulls`, `min`, and `max` are exact on
//! every path — the optimizer answers `COUNT(*)` / `COUNT(col)` /
//! `MIN` / `MAX` straight from them, so "estimate" is not good enough.
//! The min/max sweep replicates the executor's `AggState::MinMax` update
//! rule bit for bit: values are visited in row order, compared with
//! [`Value::sql_cmp`], a strict `Less`/`Greater` replaces the running
//! best (ties keep the earlier value, so `-0.0`/`+0.0` resolve the same
//! way either route), and an incomparable pair (NaN) poisons min/max so
//! the optimizer falls back to the scan — which reports the same
//! incomparability error the stats path would have hidden.
//!
//! `ndv` is exact on dictionary-encoded columns (distinct live dictionary
//! codes, free after PR 7) and a [`NdvSketch`] HyperLogLog-style estimate
//! on plain/RLE columns; [`ColumnStats::ndv_exact`] says which.

use crate::column::Column;
use crate::types::Value;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::sync::OnceLock;

/// Register-index bits of the NDV sketch (`2^8 = 256` registers,
/// ~6.5% relative error — plenty for selectivity heuristics).
const REGISTER_BITS: u32 = 8;
/// Number of sketch registers.
const REGISTERS: usize = 1 << REGISTER_BITS;

/// True unless `MLCS_DISABLE_STATS` is set to a non-empty value other
/// than `0`, which turns cost-based planning off for the whole process
/// (collection still runs; only *use* of the stats is gated, so the
/// on/off comparison in benchmarks pays identical collection cost).
pub fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("MLCS_DISABLE_STATS") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    })
}

/// A streaming HyperLogLog-style distinct-count sketch.
///
/// Std-only: values are hashed with `DefaultHasher`, the low
/// `REGISTER_BITS` pick a register, and the register keeps the maximum
/// "rank" (position of the first set bit in the remaining hash bits).
/// Sketches merge by register-wise max, which is what makes incremental
/// append maintenance possible without rescanning the table.
#[derive(Clone)]
pub struct NdvSketch {
    registers: [u8; REGISTERS],
}

impl std::fmt::Debug for NdvSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NdvSketch").field("estimate", &self.estimate()).finish()
    }
}

impl Default for NdvSketch {
    fn default() -> Self {
        NdvSketch { registers: [0; REGISTERS] }
    }
}

impl NdvSketch {
    /// An empty sketch (estimates 0).
    pub fn new() -> NdvSketch {
        NdvSketch::default()
    }

    /// Folds one 64-bit value hash into the sketch.
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h & (REGISTERS as u64 - 1)) as usize;
        let rest = h >> REGISTER_BITS;
        let rank = (rest.trailing_zeros().min(63 - REGISTER_BITS) + 1) as u8;
        if let Some(r) = self.registers.get_mut(idx) {
            if rank > *r {
                *r = rank;
            }
        }
    }

    /// Merges another sketch into this one (register-wise max).
    pub fn merge(&mut self, other: &NdvSketch) {
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Estimated number of distinct values folded in so far.
    pub fn estimate(&self) -> u64 {
        let m = REGISTERS as f64;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if zeros > 0 {
            // Linear counting is more accurate in the sparse regime.
            let lc = m * (m / zeros as f64).ln();
            if lc < 2.5 * m {
                return lc.round() as u64;
            }
        }
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        (alpha * m * m / sum).round() as u64
    }
}

/// Hashes a non-null [`Value`] for NDV sketching. Integer-family values
/// hash by their widened `i64` so the estimate is stable across integer
/// widths; floats hash by bit pattern.
fn hash_value(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match v {
        Value::Null => (0u8).hash(&mut h),
        Value::Boolean(b) => (1u8, b).hash(&mut h),
        Value::Int8(_) | Value::Int16(_) | Value::Int32(_) | Value::Int64(_) => {
            (2u8, v.as_i64()).hash(&mut h)
        }
        Value::Float32(f) => (3u8, (f64::from(*f)).to_bits()).hash(&mut h),
        Value::Float64(f) => (3u8, f.to_bits()).hash(&mut h),
        Value::Varchar(s) => (4u8, s.as_bytes()).hash(&mut h),
        Value::Blob(b) => (5u8, b.as_slice()).hash(&mut h),
    }
    h.finish()
}

/// Statistics over one column: exact row/null counts and min/max, plus a
/// distinct-value count that is exact for dictionary-encoded columns and
/// sketch-estimated otherwise.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    rows: u64,
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    /// False once any min/max comparison returned incomparable (NaN);
    /// min/max are then unusable but counts stay exact.
    comparable: bool,
    ndv: u64,
    ndv_exact: bool,
    sketch: NdvSketch,
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats {
            rows: 0,
            nulls: 0,
            min: None,
            max: None,
            comparable: true,
            ndv: 0,
            ndv_exact: true,
            sketch: NdvSketch::new(),
        }
    }
}

impl ColumnStats {
    /// Computes stats for a column with one full sweep (in row order, so
    /// min/max tie-breaking matches the executor's serial aggregate).
    pub fn compute(col: &Column) -> ColumnStats {
        let mut s = ColumnStats {
            rows: col.len() as u64,
            nulls: col.null_count() as u64,
            ..ColumnStats::default()
        };
        for i in 0..col.len() {
            if col.is_null(i) {
                continue;
            }
            let v = col.value(i);
            s.observe_min_max(&v);
            s.sketch.insert_hash(hash_value(&v));
        }
        let non_null = s.rows - s.nulls;
        if let Some((codes, dict)) = col.dict_parts() {
            // Exact NDV: count distinct live dictionary codes among
            // non-null rows (robust even if the dictionary holds unused
            // or placeholder slots).
            let mut seen = vec![false; dict.len()];
            for (i, &code) in codes.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                if let Some(slot) = seen.get_mut(code as usize) {
                    *slot = true;
                }
            }
            s.ndv = seen.iter().filter(|&&b| b).count() as u64;
            s.ndv_exact = true;
        } else {
            s.ndv = clamp_ndv(s.sketch.estimate(), non_null);
            s.ndv_exact = false;
        }
        s
    }

    /// Folds stats computed over an appended batch into stats for the
    /// rows already present. Min/max ties keep the earlier (existing)
    /// value — the same answer a full re-sweep in row order would give.
    pub fn merge_append(&mut self, appended: &ColumnStats) {
        self.rows += appended.rows;
        self.nulls += appended.nulls;
        if !appended.comparable {
            self.poison();
        } else if self.comparable {
            if let (Some(amn), Some(amx)) = (appended.min.clone(), appended.max.clone()) {
                match (self.min.clone(), self.max.clone()) {
                    (Some(mn), Some(mx)) => {
                        match amn.sql_cmp(&mn) {
                            Some(Ordering::Less) => self.min = Some(amn),
                            Some(_) => {}
                            None => self.poison(),
                        }
                        if self.comparable {
                            match amx.sql_cmp(&mx) {
                                Some(Ordering::Greater) => self.max = Some(amx),
                                Some(_) => {}
                                None => self.poison(),
                            }
                        }
                    }
                    _ => {
                        self.min = Some(amn);
                        self.max = Some(amx);
                    }
                }
            }
        }
        self.sketch.merge(&appended.sketch);
        self.ndv = clamp_ndv(self.sketch.estimate(), self.rows - self.nulls);
        // The merged count is sketch-based even if both inputs were
        // exact; the next encoding sweep restores exactness.
        self.ndv_exact = false;
    }

    fn observe_min_max(&mut self, v: &Value) {
        if !self.comparable {
            return;
        }
        let (cmp_min, cmp_max) = match (self.min.as_ref(), self.max.as_ref()) {
            (Some(mn), Some(mx)) => (v.sql_cmp(mn), v.sql_cmp(mx)),
            _ => {
                self.min = Some(v.clone());
                self.max = Some(v.clone());
                return;
            }
        };
        match (cmp_min, cmp_max) {
            (None, _) | (_, None) => self.poison(),
            (Some(Ordering::Less), _) => self.min = Some(v.clone()),
            (_, Some(Ordering::Greater)) => self.max = Some(v.clone()),
            _ => {}
        }
    }

    fn poison(&mut self) {
        self.comparable = false;
        self.min = None;
        self.max = None;
    }

    /// Total rows covered (including NULLs).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// NULL rows covered.
    pub fn nulls(&self) -> u64 {
        self.nulls
    }

    /// Fraction of rows that are NULL (0.0 for an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// Exact minimum and maximum over non-null values, or `None` when
    /// the column is empty/all-NULL or holds incomparable values (NaN).
    pub fn min_max(&self) -> Option<(&Value, &Value)> {
        if !self.comparable {
            return None;
        }
        match (self.min.as_ref(), self.max.as_ref()) {
            (Some(mn), Some(mx)) => Some((mn, mx)),
            _ => None,
        }
    }

    /// Number of distinct non-null values — exact when
    /// [`Self::ndv_exact`], a sketch estimate otherwise.
    pub fn ndv(&self) -> u64 {
        self.ndv
    }

    /// Whether [`Self::ndv`] is exact (dictionary-encoded column).
    pub fn ndv_exact(&self) -> bool {
        self.ndv_exact
    }
}

/// Clamps a sketch NDV estimate to the feasible `[1, non_null]` range
/// (0 when the column has no non-null values).
fn clamp_ndv(estimate: u64, non_null: u64) -> u64 {
    if non_null == 0 {
        0
    } else {
        estimate.clamp(1, non_null)
    }
}

/// Statistics for a whole table: the row count plus one [`ColumnStats`]
/// per column, positionally aligned with the table schema.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    rows: u64,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes stats for every column with one sweep each.
    pub fn compute(columns: &[Arc<Column>], rows: usize) -> TableStats {
        TableStats {
            rows: rows as u64,
            columns: columns.iter().map(|c| ColumnStats::compute(c)).collect(),
        }
    }

    /// Folds per-batch append stats into the existing stats. Column
    /// lists of different widths (schema drift mid-merge — should not
    /// happen) degrade gracefully by merging the common prefix.
    pub fn merge_append(&mut self, appended: &TableStats) {
        self.rows += appended.rows;
        for (dst, src) in self.columns.iter_mut().zip(appended.columns.iter()) {
            dst.merge_append(src);
        }
    }

    /// Exact current row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Stats for column `i`, if present.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }

    /// All per-column stats, positionally aligned with the schema.
    pub fn columns(&self) -> &[ColumnStats] {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn counts_min_max_exact() {
        let col = Column::from_opt_i32s(vec![Some(5), None, Some(2), Some(9), Some(2)]);
        let s = ColumnStats::compute(&col);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.nulls(), 1);
        let (mn, mx) = s.min_max().expect("comparable");
        assert_eq!(mn, &Value::Int32(2));
        assert_eq!(mx, &Value::Int32(9));
        assert_eq!(s.ndv(), 3);
    }

    #[test]
    fn nan_poisons_min_max_but_not_counts() {
        let col = Column::from_f64s(vec![1.0, f64::NAN, 3.0]);
        let s = ColumnStats::compute(&col);
        assert_eq!(s.rows(), 3);
        assert!(s.min_max().is_none());
    }

    #[test]
    fn merge_matches_full_recompute_for_ints() {
        let a = Column::from_i64s(vec![4, 7, 7, 1]);
        let b = Column::from_i64s(vec![0, 9, 4]);
        let mut merged = ColumnStats::compute(&a);
        merged.merge_append(&ColumnStats::compute(&b));
        let mut all = Column::from_i64s(vec![4, 7, 7, 1]);
        all.extend(&Column::from_i64s(vec![0, 9, 4])).unwrap();
        let full = ColumnStats::compute(&all);
        assert_eq!(merged.rows(), full.rows());
        assert_eq!(merged.min_max(), full.min_max());
    }

    #[test]
    fn dict_column_ndv_is_exact() {
        let vals: Vec<&str> = ["a", "b", "a", "c", "a", "b"].into();
        let col = Column::from_strings(vals).encode(crate::column::Encoding::Dict);
        let s = ColumnStats::compute(&col);
        assert_eq!(s.ndv(), 3);
        assert!(s.ndv_exact());
    }

    #[test]
    fn sketch_estimate_tracks_distinct_count() {
        let mut sk = NdvSketch::new();
        for i in 0..10_000i64 {
            sk.insert_hash(super::hash_value(&Value::Int64(i)));
        }
        let est = sk.estimate();
        assert!(est > 8_000 && est < 12_000, "estimate {est} too far from 10000");
    }

    #[test]
    fn min_max_keeps_earlier_value_on_ties() {
        // -0.0 and +0.0 compare Equal under sql_cmp: the first one seen
        // must win, exactly as the serial MIN/MAX aggregate behaves.
        let col = Column::from_f64s(vec![-0.0, 0.0]);
        let s = ColumnStats::compute(&col);
        let (mn, mx) = s.min_max().expect("comparable");
        assert_eq!(mn.as_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(mx.as_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
    }
}
