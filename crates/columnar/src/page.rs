//! Fixed-size on-disk pages with per-page checksums.
//!
//! Checkpointed table data is stored as a sequence of [`PAGE_SIZE`]-byte
//! pages, each carrying a 16-byte header (magic, page number, payload
//! length, CRC32 of the payload). The fixed grid makes torn writes
//! *detectable*: a file whose length is not a whole number of pages was
//! cut mid-page, and a page whose checksum does not match its payload was
//! only partially (or wrongly) written. Neither is ever silently loaded —
//! the reader surfaces a typed [`DbError::Corrupt`] naming the page.
//!
//! The page grid is deliberately dumb — no slotted records, no free
//! lists. It is the durability floor the future buffer-pool / out-of-core
//! PR will build on: one logical payload (an encoded table) striped over
//! numbered, individually-checksummed pages.

use crate::error::{DbError, DbResult};
use crate::metrics;
use mlcs_pickle::crc::crc32;

/// Size of one on-disk page, header included.
pub const PAGE_SIZE: usize = 8192;

/// Bytes of header at the start of every page: magic, page number,
/// payload length, payload CRC32 (each a little-endian `u32`).
pub const PAGE_HEADER: usize = 16;

/// Payload capacity of one page.
pub const PAGE_CAPACITY: usize = PAGE_SIZE - PAGE_HEADER;

/// `"MPG1"` — the per-page magic.
const PAGE_MAGIC: u32 = 0x4D50_4731;

/// Why a page file failed verification, split so recovery can count
/// checksum/torn-page detections separately from other damage.
#[derive(Debug)]
pub(crate) struct PageFailure {
    /// Whether the failure is a checksum / torn-page detection (as
    /// opposed to, say, a bad magic from a non-page file).
    pub checksum: bool,
    /// The typed error to surface.
    pub error: DbError,
}

/// Stripes `payload` over numbered pages, each checksummed and padded to
/// [`PAGE_SIZE`]. The result's length is always a whole number of pages.
pub fn encode_pages(payload: &[u8]) -> Vec<u8> {
    let npages = payload.len().div_ceil(PAGE_CAPACITY).max(1);
    let mut out = Vec::with_capacity(npages * PAGE_SIZE);
    for page_no in 0..npages {
        let start = page_no * PAGE_CAPACITY;
        let chunk = &payload[start..payload.len().min(start + PAGE_CAPACITY)];
        out.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        out.extend_from_slice(&(page_no as u32).to_le_bytes());
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(chunk).to_le_bytes());
        out.extend_from_slice(chunk);
        out.resize((page_no + 1) * PAGE_SIZE, 0);
    }
    out
}

/// Verifies and reassembles a page file produced by [`encode_pages`].
/// Every detected torn page or checksum mismatch ticks
/// `persist.checksum_failures` (exactly once per failing file — reading
/// stops at the first bad page).
pub fn decode_pages(name: &str, bytes: &[u8]) -> DbResult<Vec<u8>> {
    decode_pages_counted(name, bytes).map_err(|f| f.error)
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

pub(crate) fn decode_pages_counted(name: &str, bytes: &[u8]) -> Result<Vec<u8>, PageFailure> {
    let checksum_failure = |error: DbError| {
        metrics::counter("persist.checksum_failures").incr();
        PageFailure { checksum: true, error }
    };
    if !bytes.len().is_multiple_of(PAGE_SIZE) {
        return Err(checksum_failure(DbError::Corrupt(format!(
            "page file '{name}' is torn: {} bytes is not a whole number of {PAGE_SIZE}-byte pages",
            bytes.len()
        ))));
    }
    if bytes.is_empty() {
        return Err(PageFailure {
            checksum: false,
            error: DbError::Corrupt(format!("page file '{name}' is empty")),
        });
    }
    let mut payload = Vec::with_capacity(bytes.len());
    for (page_no, page) in bytes.chunks_exact(PAGE_SIZE).enumerate() {
        if u32_at(page, 0) != PAGE_MAGIC {
            return Err(PageFailure {
                checksum: false,
                error: DbError::Corrupt(format!(
                    "page {page_no} of '{name}' has a bad magic — not a page file"
                )),
            });
        }
        let stored_no = u32_at(page, 4);
        let len = u32_at(page, 8) as usize;
        let stored_crc = u32_at(page, 12);
        if stored_no as usize != page_no || len > PAGE_CAPACITY {
            return Err(checksum_failure(DbError::Corrupt(format!(
                "page {page_no} of '{name}' has a damaged header \
                 (stored number {stored_no}, payload length {len})"
            ))));
        }
        let chunk = &page[PAGE_HEADER..PAGE_HEADER + len];
        let computed = crc32(chunk);
        if stored_crc != computed {
            return Err(checksum_failure(DbError::Corrupt(format!(
                "page {page_no} of '{name}' failed its checksum \
                 ({stored_crc:#x} != {computed:#x}) — torn or corrupt write detected"
            ))));
        }
        payload.extend_from_slice(chunk);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_sizes() {
        for len in [0usize, 1, PAGE_CAPACITY - 1, PAGE_CAPACITY, PAGE_CAPACITY + 1, 100_000] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let pages = encode_pages(&payload);
            assert_eq!(pages.len() % PAGE_SIZE, 0, "len {len}");
            assert_eq!(decode_pages("t", &pages).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn torn_file_detected() {
        let pages = encode_pages(&[42u8; 20_000]);
        let torn = &pages[..pages.len() - 100];
        let err = decode_pages("t", torn).unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn flipped_byte_detected_and_counted() {
        let mut pages = encode_pages(&[7u8; 20_000]);
        pages[PAGE_SIZE + PAGE_HEADER + 5] ^= 0x40; // payload byte of page 1
        let before = metrics::snapshot();
        let err = decode_pages("t", &pages).unwrap_err();
        assert!(err.to_string().contains("page 1"), "{err}");
        let delta = metrics::snapshot().since(&before);
        assert_eq!(delta.counter("persist.checksum_failures"), 1);
    }

    #[test]
    fn wrong_magic_is_not_a_checksum_failure() {
        let failure = decode_pages_counted("t", &[0u8; PAGE_SIZE]).unwrap_err();
        assert!(!failure.checksum);
    }
}
