//! Deterministic, seeded fault injection for resilience testing.
//!
//! The chaos suite (and any operator debugging a production incident) needs
//! failures that are *injectable on demand* and *replayable exactly*: the
//! registry here is configured from a compact spec string, draws every
//! probabilistic decision from one seeded generator, and counts each fired
//! fault in the metrics registry (`faults.injected.<point>.<kind>`), so a
//! failing run can name the schedule that produced it.
//!
//! # Spec grammar
//!
//! A spec is a comma-separated list of entries, each
//! `point:kind:prob[:nth]`:
//!
//! ```text
//! MLCS_FAULTS="net.read:err:0.01,fs.write:torn:0.05"
//! MLCS_FAULTS="net.write:err:1:1"        # fire exactly on the 1st draw
//! MLCS_FAULTS_SEED=42
//! ```
//!
//! * `point` — where the fault is considered; the injection points wired
//!   into this workspace are `net.read` / `net.write` (socket stream I/O,
//!   via [`FaultyStream`]), `fs.write` / `fs.rename` / `fs.fsync` (persist
//!   file I/O, via [`FaultyFile`], [`rename`], and [`sync_file_at`]),
//!   `wal.append` / `wal.fsync` (write-ahead-log commits), `page.write`
//!   (checkpoint page files), and `pickle.decode` (model BLOB decoding in
//!   `mlcs-core`).
//! * `kind` — one of [`FaultKind`]: `err` (fail with an injected I/O
//!   error), `delay` (sleep [`DELAY`] then proceed), `short` (premature
//!   EOF on reads, partial-then-error on writes), `flip` (corrupt one
//!   byte), `torn` (write a prefix, then fail — the classic torn write).
//! * `prob` — probability in `[0, 1]` that a matching draw fires.
//! * `nth` — optional; when present the entry is *deterministic* instead
//!   of probabilistic: it fires exactly on the `nth` (1-based) matching
//!   draw and never again. Used by tests that must kill an operation at
//!   one precise point.
//!
//! # Determinism
//!
//! All draws come from one SplitMix64 generator behind a mutex, so a fixed
//! seed fixes the entire decision *sequence*. Single-threaded drivers
//! replay exactly; multi-threaded drivers (server + client in one process)
//! still draw from the one deterministic stream, but thread interleaving
//! decides which call site sees which draw — chaos tests therefore assert
//! invariants (typed errors, byte-identical retried results), never exact
//! fault timelines.
//!
//! Injection is disabled by default and the hot-path cost of a disabled
//! registry is one relaxed atomic load. The environment variables are read
//! once, on first use; programmatic [`configure`]/[`clear`] override them.

use crate::metrics;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// How long a `delay` fault sleeps before letting the operation proceed.
pub const DELAY: Duration = Duration::from_millis(5);

/// The failure mode of one fault entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with an injected I/O error before touching the resource.
    Err,
    /// Sleep [`DELAY`], then proceed normally.
    Delay,
    /// Reads: premature EOF (`Ok(0)`). Writes: write a prefix, then fail.
    Short,
    /// Corrupt one byte of the buffer (reads: after reading; writes:
    /// before writing — the full length still transfers).
    Flip,
    /// Write a prefix of the buffer, then fail — a torn write. On reads
    /// and renames this behaves like `short`/`err` respectively.
    Torn,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "err" => FaultKind::Err,
            "delay" => FaultKind::Delay,
            "short" => FaultKind::Short,
            "flip" => FaultKind::Flip,
            "torn" => FaultKind::Torn,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            FaultKind::Err => "err",
            FaultKind::Delay => "delay",
            FaultKind::Short => "short",
            FaultKind::Flip => "flip",
            FaultKind::Torn => "torn",
        }
    }
}

/// One parsed spec entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Injection point this entry applies to (exact match).
    pub point: String,
    /// What happens when the entry fires.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a matching draw fires (ignored when
    /// `nth` is set).
    pub prob: f64,
    /// When set, fire exactly on this (1-based) matching draw, once.
    pub nth: Option<u64>,
}

/// A fired fault: the kind to apply plus auxiliary randomness (byte
/// positions, xor masks) drawn from the same seeded stream.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// The failure mode to apply.
    pub kind: FaultKind,
    /// Auxiliary random bits for the applier (e.g. which byte to flip).
    pub rand: u64,
}

/// Parses a fault spec string (see the module docs for the grammar).
pub fn parse_spec(spec: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() < 3 || parts.len() > 4 {
            // lint: allow(configure-time spec parse, not a query path)
            return Err(format!("bad fault entry '{entry}': expected point:kind:prob[:nth]"));
        }
        let kind = FaultKind::parse(parts[1])
            .ok_or_else(|| format!("bad fault kind '{}' in '{entry}'", parts[1]))?;
        let prob: f64 = parts[2]
            .parse()
            .map_err(|_| format!("bad fault probability '{}' in '{entry}'", parts[2]))?;
        if !(0.0..=1.0).contains(&prob) {
            // lint: allow(configure-time spec parse, not a query path)
            return Err(format!("fault probability {prob} outside [0, 1] in '{entry}'"));
        }
        let nth = match parts.get(3) {
            None => None,
            Some(n) => Some(
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad nth '{n}' in '{entry}' (1-based integer)"))?,
            ),
        };
        out.push(FaultSpec { point: parts[0].to_owned(), kind, prob, nth });
    }
    Ok(out)
}

/// SplitMix64: tiny, seedable, and good enough for fault schedules.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Maps 64 random bits to `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One spec entry plus its per-point draw counter (for `nth` entries).
#[derive(Debug)]
struct Armed {
    spec: FaultSpec,
    draws: u64,
}

#[derive(Debug, Default)]
struct Injector {
    entries: Vec<Armed>,
    rng: Option<SplitMix64>,
}

/// Fast-path flag. `UNINIT` until the first query forces the one-time
/// `MLCS_FAULTS` environment read; `ARMED`/`DISARMED` after. The disarmed
/// steady state is a single relaxed load.
static STATE: AtomicU8 = AtomicU8::new(UNINIT);
const UNINIT: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

/// Resolves the fast-path state, running the environment arming exactly
/// once process-wide on the first call.
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s != UNINIT {
        return s;
    }
    injector();
    STATE.load(Ordering::Relaxed)
}

fn injector() -> &'static Mutex<Injector> {
    static INJECTOR: OnceLock<Mutex<Injector>> = OnceLock::new();
    INJECTOR.get_or_init(|| {
        let mut inj = Injector::default();
        let mut state = DISARMED;
        if let Ok(spec) = std::env::var("MLCS_FAULTS") {
            match parse_spec(&spec) {
                Ok(specs) if !specs.is_empty() => {
                    let seed = std::env::var("MLCS_FAULTS_SEED")
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    inj.entries = specs.into_iter().map(|spec| Armed { spec, draws: 0 }).collect();
                    inj.rng = Some(SplitMix64(seed));
                    state = ARMED;
                }
                Ok(_) => {}
                Err(e) => eprintln!("MLCS_FAULTS ignored: {e}"),
            }
        }
        STATE.store(state, Ordering::Relaxed);
        Mutex::new(inj)
    })
}

fn lock() -> parking_lot::MutexGuard<'static, Injector> {
    injector().lock()
}

/// Arms the injector with `specs`, seeding the decision stream with `seed`.
/// Replaces any previous (or environment-derived) configuration.
pub fn configure(specs: Vec<FaultSpec>, seed: u64) {
    let mut inj = lock();
    STATE.store(if specs.is_empty() { DISARMED } else { ARMED }, Ordering::Relaxed);
    inj.entries = specs.into_iter().map(|spec| Armed { spec, draws: 0 }).collect();
    inj.rng = Some(SplitMix64(seed));
}

/// Parses `spec` and arms the injector. Convenience for tests and the
/// chaos harness.
pub fn configure_str(spec: &str, seed: u64) -> Result<(), String> {
    configure(parse_spec(spec)?, seed);
    Ok(())
}

/// Disarms the injector entirely (also overriding `MLCS_FAULTS`).
pub fn clear() {
    configure(Vec::new(), 0);
}

/// Whether any fault entry is currently armed.
pub fn enabled() -> bool {
    state() == ARMED
}

/// Draws a fault decision for `point`. Returns the fault to apply, or
/// `None` (the overwhelmingly common case). Every fired fault increments
/// the `faults.injected.<point>.<kind>` counter.
pub fn decide(point: &str) -> Option<Fault> {
    if state() != ARMED {
        return None;
    }
    let mut inj = lock();
    let mut fired: Option<Fault> = None;
    // Split borrow: walk entries by index so the rng can be borrowed too.
    for i in 0..inj.entries.len() {
        if inj.entries[i].spec.point != point {
            continue;
        }
        inj.entries[i].draws += 1;
        let draws = inj.entries[i].draws;
        let (kind, prob, nth) =
            (inj.entries[i].spec.kind, inj.entries[i].spec.prob, inj.entries[i].spec.nth);
        let fires = match nth {
            Some(nth) => draws == nth,
            None => inj.rng.get_or_insert(SplitMix64(0)).unit() < prob,
        };
        if fires && fired.is_none() {
            let rand = inj.rng.get_or_insert(SplitMix64(0)).next();
            metrics::counter(&format!("faults.injected.{point}.{}", kind.name())).incr();
            fired = Some(Fault { kind, rand });
        }
    }
    fired
}

/// The `io::Error` an injected `err` fault produces.
pub fn injected_io_error(point: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {point}"))
}

/// Xors one byte of `buf` with a non-zero mask derived from `rand`.
fn flip_byte(buf: &mut [u8], rand: u64) {
    if buf.is_empty() {
        return;
    }
    let pos = (rand as usize) % buf.len();
    let mask = 1 + ((rand >> 17) % 255) as u8;
    buf[pos] ^= mask;
}

/// Consults `point` without touching any resource: a fired non-`delay`
/// fault becomes an injected error, a `delay` sleeps then proceeds. For
/// operations with no buffer to tear or flip (fsync, directory sync),
/// where every destructive kind degenerates to "the call failed".
pub fn check_point(point: &str) -> std::io::Result<()> {
    match decide(point) {
        None => Ok(()),
        Some(f) => match f.kind {
            FaultKind::Delay => {
                std::thread::sleep(DELAY);
                Ok(())
            }
            _ => Err(injected_io_error(point)),
        },
    }
}

/// Writes the whole buffer to `file`, honoring any armed fault at `point`:
/// `err` fails before touching the file, `short`/`torn` write half the
/// buffer (synced, so the torn prefix survives a crash) then fail, `flip`
/// corrupts one byte but reports success, `delay` stalls then proceeds.
/// Shared by the persist layer (`fs.write`), the write-ahead log
/// (`wal.append`), and the checkpoint page writer (`page.write`).
pub fn write_file_at(point: &str, file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
    match decide(point) {
        None => file.write_all(buf),
        Some(f) => match f.kind {
            FaultKind::Err => Err(injected_io_error(point)),
            FaultKind::Delay => {
                std::thread::sleep(DELAY);
                file.write_all(buf)
            }
            FaultKind::Short | FaultKind::Torn => {
                let cut = buf.len() / 2;
                file.write_all(&buf[..cut])?;
                let _ = file.sync_all();
                Err(injected_io_error(point))
            }
            FaultKind::Flip => {
                let mut copy = buf.to_vec();
                flip_byte(&mut copy, f.rand);
                file.write_all(&copy)
            }
        },
    }
}

/// Fsyncs `file`, honoring any armed fault at `point` (every non-`delay`
/// kind fails the sync — there is no buffer to tear or flip).
pub fn sync_file_at(point: &str, file: &std::fs::File) -> std::io::Result<()> {
    check_point(point)?;
    file.sync_all()
}

/// A stream wrapper that consults the injector on every read (`net.read`)
/// and write (`net.write`). Wrap both halves of a socket to exercise
/// errors, delays, premature EOFs, torn writes, and flipped bytes without
/// touching the protocol code.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> FaultyStream<S> {
        FaultyStream { inner }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwraps the stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match decide("net.read") {
            None => self.inner.read(buf),
            Some(f) => match f.kind {
                FaultKind::Err => Err(injected_io_error("net.read")),
                FaultKind::Delay => {
                    std::thread::sleep(DELAY);
                    self.inner.read(buf)
                }
                // A premature EOF: the peer "hung up" mid-frame.
                FaultKind::Short | FaultKind::Torn => Ok(0),
                FaultKind::Flip => {
                    let n = self.inner.read(buf)?;
                    flip_byte(&mut buf[..n], f.rand);
                    Ok(n)
                }
            },
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match decide("net.write") {
            None => self.inner.write(buf),
            Some(f) => match f.kind {
                FaultKind::Err => Err(injected_io_error("net.write")),
                FaultKind::Delay => {
                    std::thread::sleep(DELAY);
                    self.inner.write(buf)
                }
                // Push a prefix onto the wire, then fail: the peer sees a
                // torn frame, the caller sees an error.
                FaultKind::Short | FaultKind::Torn => {
                    if buf.len() > 1 {
                        let _ = self.inner.write(&buf[..buf.len() / 2]);
                        let _ = self.inner.flush();
                    }
                    Err(injected_io_error("net.write"))
                }
                FaultKind::Flip => {
                    let mut copy = buf.to_vec();
                    flip_byte(&mut copy, f.rand);
                    self.inner.write(&copy)
                }
            },
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A file handle whose writes consult the injector (`fs.write`): they can
/// fail outright, tear (prefix + error), flip a byte, or stall. Used by the
/// persist layer so crash-safety is testable without `kill -9`.
#[derive(Debug)]
pub struct FaultyFile {
    file: std::fs::File,
    path: PathBuf,
}

impl FaultyFile {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<FaultyFile> {
        Ok(FaultyFile { file: std::fs::File::create(path)?, path: path.to_path_buf() })
    }

    /// The path this handle writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes the whole buffer, honoring any armed `fs.write` fault.
    pub fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        write_file_at("fs.write", &mut self.file, buf)
    }

    /// Flushes file contents and metadata to stable storage, honoring any
    /// armed `fs.fsync` fault.
    pub fn sync_all(&self) -> std::io::Result<()> {
        sync_file_at("fs.fsync", &self.file)
    }
}

/// Renames `from` to `to`, honoring any armed `fs.rename` fault (every
/// non-`delay` kind fails the rename, leaving `from` in place).
pub fn rename(from: &Path, to: &Path) -> std::io::Result<()> {
    match decide("fs.rename") {
        None => std::fs::rename(from, to),
        Some(f) => match f.kind {
            FaultKind::Delay => {
                std::thread::sleep(DELAY);
                std::fs::rename(from, to)
            }
            _ => Err(injected_io_error("fs.rename")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock as TestOnce;

    /// The injector is process-global; tests that arm it serialize here.
    fn guard() -> parking_lot::MutexGuard<'static, ()> {
        static G: TestOnce<Mutex<()>> = TestOnce::new();
        G.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn spec_parses_and_rejects() {
        let specs = parse_spec("net.read:err:0.01,fs.write:torn:0.05").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].point, "net.read");
        assert_eq!(specs[0].kind, FaultKind::Err);
        assert_eq!(specs[1].kind, FaultKind::Torn);
        assert_eq!(specs[1].nth, None);
        let specs = parse_spec("net.write:err:1:3").unwrap();
        assert_eq!(specs[0].nth, Some(3));
        assert!(parse_spec("net.read:err").is_err());
        assert!(parse_spec("net.read:zap:0.5").is_err());
        assert!(parse_spec("net.read:err:1.5").is_err());
        assert!(parse_spec("net.read:err:1:0").is_err());
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn seeded_decisions_replay_exactly() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            configure(parse_spec("p:err:0.5").unwrap(), seed);
            (0..64).map(|_| decide("p").is_some()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        clear();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f), "p=0.5 mixes outcomes");
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = guard();
        configure(parse_spec("p:err:1:3").unwrap(), 0);
        let fired: Vec<bool> = (0..6).map(|_| decide("p").is_some()).collect();
        clear();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn disabled_injector_is_silent() {
        let _g = guard();
        clear();
        assert!(!enabled());
        assert!(decide("net.read").is_none());
    }

    #[test]
    fn faulty_stream_injects_errors_and_eof() {
        let _g = guard();
        configure(parse_spec("net.read:err:1:1,net.read:short:1:2").unwrap(), 0);
        let data = vec![1u8, 2, 3, 4];
        let mut s = FaultyStream::new(data.as_slice());
        let mut buf = [0u8; 4];
        assert!(s.read(&mut buf).is_err(), "first read errors");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "second read is a premature EOF");
        assert_eq!(s.read(&mut buf).unwrap(), 4, "then reads flow again");
        clear();
    }

    #[test]
    fn faulty_stream_torn_write_pushes_prefix() {
        let _g = guard();
        configure(parse_spec("net.write:torn:1:1").unwrap(), 0);
        let mut sink: Vec<u8> = Vec::new();
        {
            let mut s = FaultyStream::new(&mut sink);
            assert!(s.write(&[9u8; 8]).is_err(), "torn write reports an error");
        }
        clear();
        assert_eq!(sink.len(), 4, "half the buffer reached the wire");
    }

    #[test]
    fn faulty_file_torn_write_leaves_prefix() {
        let _g = guard();
        let dir = std::env::temp_dir().join(format!("mlcs_faults_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        configure(parse_spec("fs.write:torn:1:1").unwrap(), 0);
        let mut f = FaultyFile::create(&path).unwrap();
        assert!(f.write_all(&[7u8; 10]).is_err());
        clear();
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_fault_leaves_source() {
        let _g = guard();
        let dir = std::env::temp_dir().join(format!("mlcs_faults_rn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let from = dir.join("a.tmp");
        let to = dir.join("a");
        std::fs::write(&from, b"x").unwrap();
        configure(parse_spec("fs.rename:err:1:1").unwrap(), 0);
        assert!(rename(&from, &to).is_err());
        clear();
        assert!(from.exists() && !to.exists());
        rename(&from, &to).unwrap();
        assert!(to.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_fault_fails_sync_not_write() {
        let _g = guard();
        let dir = std::env::temp_dir().join(format!("mlcs_faults_fs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synced.bin");
        configure(parse_spec("fs.fsync:err:1:1").unwrap(), 0);
        let mut f = FaultyFile::create(&path).unwrap();
        f.write_all(b"payload").unwrap();
        assert!(f.sync_all().is_err(), "first fsync injected");
        assert!(f.sync_all().is_ok(), "nth=1 fires once");
        clear();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload", "data reached the file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fired_faults_are_counted() {
        let _g = guard();
        let before = crate::metrics::snapshot();
        configure(parse_spec("countme:err:1:1").unwrap(), 0);
        assert!(decide("countme").is_some());
        clear();
        let delta = crate::metrics::snapshot().since(&before);
        assert_eq!(delta.counter("faults.injected.countme.err"), 1);
    }
}
