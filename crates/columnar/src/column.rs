//! Typed columns: the engine's bulk data representation.
//!
//! A [`Column`] is a contiguous typed vector plus an optional validity
//! bitmap. The common all-valid case carries no bitmap. Operators work on
//! whole columns at a time (MonetDB's operator-at-a-time model) through the
//! typed slice accessors ([`Column::i32s`] etc.), which is also exactly how
//! vectorized UDFs receive their inputs — as borrowed slices, zero-copy.
//!
//! ## Compressed representations
//!
//! A column may additionally carry a compressed representation
//! ([`Encoding`]): dictionary (`codes` into a vector of distinct values) or
//! run-length (`run_ends` over one stored value per run). Encodings are
//! transparent to the scalar accessors (`value`, `f64_at`, `i64_at`) which
//! resolve through [`Column::physical_index`]; the typed *slice* accessors
//! return `None` for encoded columns so vectorized fast paths either handle
//! the encoding explicitly or fall back after [`Column::decode`]. Encoding
//! covers the *raw physical* values only — NULL placeholder slots encode
//! like any other value and the validity bitmap stays logical-length — so
//! `encode` ∘ `decode` reproduces the original column bit for bit.

use crate::bitmap::Bitmap;
use crate::error::{DbError, DbResult};
use crate::strings::{BlobColumn, StringColumn};
use crate::types::{DataType, Value};
use std::borrow::Cow;
use std::fmt;

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Boolean values.
    Boolean(Vec<bool>),
    /// 8-bit integers.
    Int8(Vec<i8>),
    /// 16-bit integers.
    Int16(Vec<i16>),
    /// 32-bit integers.
    Int32(Vec<i32>),
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 32-bit floats.
    Float32(Vec<f32>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Varchar(StringColumn),
    /// Byte strings (pickled models live here).
    Blob(BlobColumn),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Boolean(v) => v.len(),
            ColumnData::Int8(v) => v.len(),
            ColumnData::Int16(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float32(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Varchar(v) => v.len(),
            ColumnData::Blob(v) => v.len(),
        }
    }

    /// True when the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Boolean(_) => DataType::Boolean,
            ColumnData::Int8(_) => DataType::Int8,
            ColumnData::Int16(_) => DataType::Int16,
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float32(_) => DataType::Float32,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Varchar(_) => DataType::Varchar,
            ColumnData::Blob(_) => DataType::Blob,
        }
    }

    /// An empty payload of the given type.
    pub fn empty(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Boolean => ColumnData::Boolean(Vec::new()),
            DataType::Int8 => ColumnData::Int8(Vec::new()),
            DataType::Int16 => ColumnData::Int16(Vec::new()),
            DataType::Int32 => ColumnData::Int32(Vec::new()),
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float32 => ColumnData::Float32(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Varchar => ColumnData::Varchar(StringColumn::new()),
            DataType::Blob => ColumnData::Blob(BlobColumn::new()),
        }
    }
}

/// Gathers `data[indices[k]]` into a new payload of the same type.
pub(crate) fn take_data(data: &ColumnData, indices: &[u32]) -> ColumnData {
    match data {
        ColumnData::Boolean(v) => {
            ColumnData::Boolean(indices.iter().map(|&i| v[i as usize]).collect())
        }
        ColumnData::Int8(v) => ColumnData::Int8(indices.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::Int16(v) => ColumnData::Int16(indices.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::Int32(v) => ColumnData::Int32(indices.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i as usize]).collect()),
        ColumnData::Float32(v) => {
            ColumnData::Float32(indices.iter().map(|&i| v[i as usize]).collect())
        }
        ColumnData::Float64(v) => {
            ColumnData::Float64(indices.iter().map(|&i| v[i as usize]).collect())
        }
        ColumnData::Varchar(v) => ColumnData::Varchar(v.take(indices)),
        ColumnData::Blob(v) => ColumnData::Blob(v.take(indices)),
    }
}

/// Physical representation of a column's payload.
///
/// `Plain` stores one value per row. `Dict` stores each distinct value once
/// plus a per-row code. `Rle` stores one value per run plus the exclusive
/// end offset of each run. See the module docs for the accessor contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// One value per row (the default).
    Plain,
    /// Distinct values plus per-row codes.
    Dict,
    /// Run values plus exclusive run ends.
    Rle,
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Encoding::Plain => "plain",
            Encoding::Dict => "dict",
            Encoding::Rle => "rle",
        })
    }
}

/// Private per-column representation state. For `Dict`, `data` holds the
/// dictionary of distinct values and `codes[i]` indexes it; for `Rle`,
/// `data` holds one value per run and `run_ends[r]` is the exclusive
/// logical end of run `r` (strictly increasing; the last entry is the
/// logical length).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Repr {
    Plain,
    Dict { codes: Vec<u32> },
    Rle { run_ends: Vec<u32> },
}

/// A column: typed data plus optional validity bitmap.
///
/// Invariant: if a validity bitmap is present it has exactly `len()` bits
/// (the *logical* length, regardless of encoding). NULL slots still hold a
/// placeholder value in the data vector (zero / empty string) so the typed
/// slices are always fully populated.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
    repr: Repr,
}

impl PartialEq for Column {
    /// Logical equality: encoded columns compare equal to their plain
    /// decoding (including placeholder values at NULL slots, matching the
    /// field-wise comparison plain columns have always used).
    fn eq(&self, other: &Self) -> bool {
        if self.repr == Repr::Plain && other.repr == Repr::Plain {
            return self.data == other.data && self.validity == other.validity;
        }
        let a = self.decoded();
        let b = other.decoded();
        a.data == b.data && a.validity == b.validity
    }
}

macro_rules! from_native {
    ($fn_name:ident, $opt_fn:ident, $native:ty, $variant:ident, $default:expr) => {
        /// Builds an all-valid column from native values.
        pub fn $fn_name(values: Vec<$native>) -> Column {
            Column { data: ColumnData::$variant(values.into()), validity: None, repr: Repr::Plain }
        }

        /// Builds a nullable column from optional native values.
        pub fn $opt_fn(values: Vec<Option<$native>>) -> Column {
            let mut validity = Bitmap::new();
            let mut data = Vec::with_capacity(values.len());
            let mut any_null = false;
            for v in values {
                match v {
                    Some(x) => {
                        validity.push(true);
                        data.push(x);
                    }
                    None => {
                        any_null = true;
                        validity.push(false);
                        data.push($default);
                    }
                }
            }
            Column {
                data: ColumnData::$variant(data.into()),
                validity: if any_null { Some(validity) } else { None },
                repr: Repr::Plain,
            }
        }
    };
}

macro_rules! slice_accessor {
    ($name:ident, $native:ty, $variant:ident) => {
        /// Borrowed typed slice, or `None` if the column has another type
        /// or a non-plain encoding (decode first, or handle the encoding).
        pub fn $name(&self) -> Option<&[$native]> {
            if self.repr != Repr::Plain {
                return None;
            }
            match &self.data {
                ColumnData::$variant(v) => Some(v),
                _ => None,
            }
        }
    };
}

impl Column {
    /// Wraps raw parts into a plain column, checking the bitmap length
    /// invariant.
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> DbResult<Column> {
        if let Some(bm) = &validity {
            if bm.len() != data.len() {
                return Err(DbError::Shape(format!(
                    "validity bitmap has {} bits but column has {} rows",
                    bm.len(),
                    data.len()
                )));
            }
            if bm.all_set() {
                return Ok(Column { data, validity: None, repr: Repr::Plain });
            }
        }
        Ok(Column { data, validity, repr: Repr::Plain })
    }

    /// Internal constructor: normalizes an all-set bitmap away, trusting
    /// the caller on lengths (which are correct by construction at every
    /// call site — gathers and slices preserve shape).
    pub(crate) fn with_repr(data: ColumnData, validity: Option<Bitmap>, repr: Repr) -> Column {
        let validity = validity.filter(|bm| !bm.all_set());
        Column { data, validity, repr }
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Column {
        Column { data: ColumnData::empty(dtype), validity: None, repr: Repr::Plain }
    }

    /// A column of `len` NULLs of the given type.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let mut data = ColumnData::empty(dtype);
        match &mut data {
            ColumnData::Boolean(v) => v.resize(len, false),
            ColumnData::Int8(v) => v.resize(len, 0),
            ColumnData::Int16(v) => v.resize(len, 0),
            ColumnData::Int32(v) => v.resize(len, 0),
            ColumnData::Int64(v) => v.resize(len, 0),
            ColumnData::Float32(v) => v.resize(len, 0.0),
            ColumnData::Float64(v) => v.resize(len, 0.0),
            ColumnData::Varchar(v) => {
                for _ in 0..len {
                    v.push("");
                }
            }
            ColumnData::Blob(v) => {
                for _ in 0..len {
                    v.push(&[]);
                }
            }
        }
        Column { data, validity: Some(Bitmap::filled(len, false)), repr: Repr::Plain }
    }

    from_native!(from_bools, from_opt_bools, bool, Boolean, false);
    from_native!(from_i8s, from_opt_i8s, i8, Int8, 0);
    from_native!(from_i16s, from_opt_i16s, i16, Int16, 0);
    from_native!(from_i32s, from_opt_i32s, i32, Int32, 0);
    from_native!(from_i64s, from_opt_i64s, i64, Int64, 0);
    from_native!(from_f32s, from_opt_f32s, f32, Float32, 0.0);
    from_native!(from_f64s, from_opt_f64s, f64, Float64, 0.0);

    /// Builds an all-valid VARCHAR column.
    pub fn from_strings<'a>(values: impl IntoIterator<Item = &'a str>) -> Column {
        Column {
            data: ColumnData::Varchar(StringColumn::from_strs(values)),
            validity: None,
            repr: Repr::Plain,
        }
    }

    /// Builds an all-valid BLOB column.
    pub fn from_blobs<'a>(values: impl IntoIterator<Item = &'a [u8]>) -> Column {
        Column {
            data: ColumnData::Blob(BlobColumn::from_slices(values)),
            validity: None,
            repr: Repr::Plain,
        }
    }

    /// Builds a column of type `dtype` from scalar [`Value`]s, casting each
    /// value to `dtype` (so integer literals fill FLOAT columns, etc.).
    pub fn from_values(dtype: DataType, values: &[Value]) -> DbResult<Column> {
        let mut b = ColumnBuilder::new(dtype);
        for v in values {
            b.push_value(v)?;
        }
        Ok(b.finish())
    }

    /// Number of (logical) rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Plain => self.data.len(),
            Repr::Dict { codes } => codes.len(),
            Repr::Rle { run_ends } => run_ends.last().map_or(0, |&e| e as usize),
        }
    }

    /// True when the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// The *physical* payload: per-row values for plain columns, the
    /// dictionary for dict columns, per-run values for RLE columns. Callers
    /// indexing rows directly must hold a plain column (see the typed slice
    /// accessors) or resolve through [`Column::physical_index`].
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The column's physical representation.
    pub fn encoding(&self) -> Encoding {
        match &self.repr {
            Repr::Plain => Encoding::Plain,
            Repr::Dict { .. } => Encoding::Dict,
            Repr::Rle { .. } => Encoding::Rle,
        }
    }

    /// True when one physical value is stored per row.
    pub fn is_plain(&self) -> bool {
        self.repr == Repr::Plain
    }

    /// Maps a logical row to its physical index in [`Column::data`].
    #[inline]
    pub fn physical_index(&self, i: usize) -> usize {
        match &self.repr {
            Repr::Plain => i,
            Repr::Dict { codes } => codes[i] as usize,
            Repr::Rle { run_ends } => run_ends.partition_point(|&e| e as usize <= i),
        }
    }

    /// Dictionary codes and values, if dict-encoded.
    pub(crate) fn dict_parts(&self) -> Option<(&[u32], &ColumnData)> {
        match &self.repr {
            Repr::Dict { codes } => Some((codes, &self.data)),
            _ => None,
        }
    }

    /// Run ends and per-run values, if RLE-encoded.
    pub(crate) fn rle_parts(&self) -> Option<(&[u32], &ColumnData)> {
        match &self.repr {
            Repr::Rle { run_ends } => Some((run_ends, &self.data)),
            _ => None,
        }
    }

    /// Materializes a plain copy (identity clone when already plain). The
    /// raw data — including NULL placeholder slots — round-trips exactly.
    pub fn decode(&self) -> Column {
        match &self.repr {
            Repr::Plain => self.clone(),
            Repr::Dict { codes } => Column {
                data: take_data(&self.data, codes),
                validity: self.validity.clone(),
                repr: Repr::Plain,
            },
            Repr::Rle { run_ends } => {
                let mut phys: Vec<u32> = Vec::with_capacity(self.len());
                let mut start = 0u32;
                for (run, &end) in run_ends.iter().enumerate() {
                    for _ in start..end {
                        phys.push(run as u32);
                    }
                    start = end;
                }
                Column {
                    data: take_data(&self.data, &phys),
                    validity: self.validity.clone(),
                    repr: Repr::Plain,
                }
            }
        }
    }

    /// Borrows plain columns, decodes encoded ones.
    pub fn decoded(&self) -> Cow<'_, Column> {
        if self.is_plain() {
            Cow::Borrowed(self)
        } else {
            Cow::Owned(self.decode())
        }
    }

    /// Re-encodes into the requested representation (decoding first if
    /// already encoded). Unconditional: ignores the auto-selection
    /// heuristic, so callers can force a dictionary on all-distinct data.
    pub fn encode(&self, enc: Encoding) -> Column {
        crate::encoding::encode(self, enc)
    }

    /// Encodes per the NDV/run-length heuristic (see [`crate::encoding`]);
    /// returns a clone when no encoding pays off.
    pub fn encode_auto(&self) -> Column {
        crate::encoding::encode_auto(self)
    }

    /// Validates the encoding invariants: dict codes in range, run ends
    /// strictly increasing, validity bitmap logical-length. Plain columns
    /// always pass. Used by the plan verifier and tests.
    pub fn check_encoding(&self) -> DbResult<()> {
        if let Some(bm) = &self.validity {
            if bm.len() != self.len() {
                return Err(DbError::internal(format!(
                    "validity bitmap has {} bits but column has {} logical rows",
                    bm.len(),
                    self.len()
                )));
            }
        }
        match &self.repr {
            Repr::Plain => Ok(()),
            Repr::Dict { codes } => {
                let nd = self.data.len();
                for &c in codes {
                    if c as usize >= nd {
                        return Err(DbError::internal(format!(
                            "dict code {c} out of range for dictionary of {nd}"
                        )));
                    }
                }
                Ok(())
            }
            Repr::Rle { run_ends } => {
                if run_ends.len() != self.data.len() {
                    return Err(DbError::internal(format!(
                        "{} run ends for {} run values",
                        run_ends.len(),
                        self.data.len()
                    )));
                }
                let mut prev = 0u32;
                for (r, &end) in run_ends.iter().enumerate() {
                    if end <= prev {
                        return Err(DbError::internal(format!(
                            "run {r} ends at {end}, not after {prev}"
                        )));
                    }
                    prev = end;
                }
                Ok(())
            }
        }
    }

    /// The validity bitmap, if any rows are NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// True if row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.validity {
            Some(bm) => !bm.get(i),
            None => false,
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity.as_ref().map_or(0, Bitmap::count_zeros)
    }

    slice_accessor!(bools, bool, Boolean);
    slice_accessor!(i8s, i8, Int8);
    slice_accessor!(i16s, i16, Int16);
    slice_accessor!(i32s, i32, Int32);
    slice_accessor!(i64s, i64, Int64);
    slice_accessor!(f32s, f32, Float32);
    slice_accessor!(f64s, f64, Float64);

    /// The string payload, if this is a plain VARCHAR column.
    pub fn strings(&self) -> Option<&StringColumn> {
        if self.repr != Repr::Plain {
            return None;
        }
        match &self.data {
            ColumnData::Varchar(v) => Some(v),
            _ => None,
        }
    }

    /// The blob payload, if this is a plain BLOB column.
    pub fn blobs(&self) -> Option<&BlobColumn> {
        if self.repr != Repr::Plain {
            return None;
        }
        match &self.data {
            ColumnData::Blob(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts row `i` as a scalar [`Value`] (slow path; result printing,
    /// row-protocol serialization and tests only).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        let p = self.physical_index(i);
        match &self.data {
            ColumnData::Boolean(v) => Value::Boolean(v[p]),
            ColumnData::Int8(v) => Value::Int8(v[p]),
            ColumnData::Int16(v) => Value::Int16(v[p]),
            ColumnData::Int32(v) => Value::Int32(v[p]),
            ColumnData::Int64(v) => Value::Int64(v[p]),
            ColumnData::Float32(v) => Value::Float32(v[p]),
            ColumnData::Float64(v) => Value::Float64(v[p]),
            ColumnData::Varchar(v) => Value::Varchar(v.get(p).to_owned()),
            ColumnData::Blob(v) => Value::Blob(v.get(p).to_vec()),
        }
    }

    /// Row `i` as f64, if numeric/boolean and non-NULL.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        let p = self.physical_index(i);
        Some(match &self.data {
            ColumnData::Boolean(v) => v[p] as u8 as f64,
            ColumnData::Int8(v) => v[p] as f64,
            ColumnData::Int16(v) => v[p] as f64,
            ColumnData::Int32(v) => v[p] as f64,
            ColumnData::Int64(v) => v[p] as f64,
            ColumnData::Float32(v) => v[p] as f64,
            ColumnData::Float64(v) => v[p],
            _ => return None,
        })
    }

    /// Row `i` as i64, if integer/boolean and non-NULL.
    #[inline]
    pub fn i64_at(&self, i: usize) -> Option<i64> {
        if self.is_null(i) {
            return None;
        }
        let p = self.physical_index(i);
        Some(match &self.data {
            ColumnData::Boolean(v) => v[p] as i64,
            ColumnData::Int8(v) => v[p] as i64,
            ColumnData::Int16(v) => v[p] as i64,
            ColumnData::Int32(v) => v[p] as i64,
            ColumnData::Int64(v) => v[p],
            _ => return None,
        })
    }

    /// Materializes the whole numeric column as `f64`s; NULLs become NaN.
    /// This is the bridge into the ML library, which trains on f64 matrices.
    pub fn to_f64_vec(&self) -> DbResult<Vec<f64>> {
        if !self.is_plain() {
            return self.decode().to_f64_vec();
        }
        let n = self.len();
        let mut out: Vec<f64> = Vec::with_capacity(n);
        match &self.data {
            ColumnData::Boolean(v) => out.extend(v.iter().map(|&b| b as u8 as f64)),
            ColumnData::Int8(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Int16(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Int32(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Int64(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Float32(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Float64(v) => out.extend_from_slice(v),
            other => {
                return Err(DbError::Type(format!(
                    "cannot view {} column as f64",
                    other.data_type()
                )))
            }
        }
        if let Some(bm) = &self.validity {
            for (i, valid) in bm.iter().enumerate() {
                if !valid {
                    out[i] = f64::NAN;
                }
            }
        }
        Ok(out)
    }

    /// Gathers rows by index into a new column (`out[k] = self[indices[k]]`).
    ///
    /// Dict columns stay dict (codes are gathered, the dictionary is
    /// shared-by-copy) — the late-materialization fast path. RLE columns
    /// materialize plain, since an arbitrary gather destroys runs.
    pub fn take(&self, indices: &[u32]) -> Column {
        let validity = self.validity.as_ref().map(|bm| bm.take(indices));
        match &self.repr {
            Repr::Plain => Column::with_repr(take_data(&self.data, indices), validity, Repr::Plain),
            Repr::Dict { codes } => {
                let gathered: Vec<u32> = indices.iter().map(|&i| codes[i as usize]).collect();
                Column::with_repr(self.data.clone(), validity, Repr::Dict { codes: gathered })
            }
            Repr::Rle { .. } => {
                let phys: Vec<u32> =
                    indices.iter().map(|&i| self.physical_index(i as usize) as u32).collect();
                Column::with_repr(take_data(&self.data, &phys), validity, Repr::Plain)
            }
        }
    }

    /// Gathers rows by optional index: `None` produces a NULL row. Used by
    /// outer joins to pad the unmatched side.
    pub fn take_opt(&self, indices: &[Option<u32>]) -> Column {
        let mut b = ColumnBuilder::new(self.data_type());
        for &idx in indices {
            match idx {
                Some(i) => {
                    b.push_value(&self.value(i as usize)).expect("same-type push cannot fail")
                }
                None => b.push_null(),
            }
        }
        b.finish()
    }

    /// Expands a length-1 constant column to `n` identical rows; returns a
    /// clone when the column is already `n` long.
    pub fn broadcast_to(&self, n: usize) -> DbResult<Column> {
        if self.len() == n {
            return Ok(self.clone());
        }
        if self.len() != 1 {
            return Err(DbError::Shape(format!(
                "cannot broadcast column of {} rows to {n}",
                self.len()
            )));
        }
        let indices = vec![0u32; n];
        Ok(self.take(&indices))
    }

    /// Copies rows `offset..offset+len` into a new column. Encodings are
    /// preserved (runs are clipped, codes are sliced) so morsel slices of
    /// encoded columns stay encoded.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        let validity = self.validity.as_ref().map(|bm| bm.slice(offset, len));
        match &self.repr {
            Repr::Plain => {
                let data = match &self.data {
                    ColumnData::Boolean(v) => ColumnData::Boolean(v[offset..offset + len].to_vec()),
                    ColumnData::Int8(v) => ColumnData::Int8(v[offset..offset + len].to_vec()),
                    ColumnData::Int16(v) => ColumnData::Int16(v[offset..offset + len].to_vec()),
                    ColumnData::Int32(v) => ColumnData::Int32(v[offset..offset + len].to_vec()),
                    ColumnData::Int64(v) => ColumnData::Int64(v[offset..offset + len].to_vec()),
                    ColumnData::Float32(v) => ColumnData::Float32(v[offset..offset + len].to_vec()),
                    ColumnData::Float64(v) => ColumnData::Float64(v[offset..offset + len].to_vec()),
                    ColumnData::Varchar(v) => ColumnData::Varchar(v.slice(offset, len)),
                    ColumnData::Blob(v) => ColumnData::Blob(v.slice(offset, len)),
                };
                Column::with_repr(data, validity, Repr::Plain)
            }
            Repr::Dict { codes } => Column::with_repr(
                self.data.clone(),
                validity,
                Repr::Dict { codes: codes[offset..offset + len].to_vec() },
            ),
            Repr::Rle { run_ends } => {
                if len == 0 {
                    return Column::empty(self.data_type());
                }
                let first = run_ends.partition_point(|&e| e as usize <= offset);
                let mut new_ends: Vec<u32> = Vec::new();
                let mut phys: Vec<u32> = Vec::new();
                let mut run = first;
                while run < run_ends.len() {
                    let end = run_ends[run] as usize;
                    new_ends.push((end.min(offset + len) - offset) as u32);
                    phys.push(run as u32);
                    if end >= offset + len {
                        break;
                    }
                    run += 1;
                }
                Column::with_repr(
                    take_data(&self.data, &phys),
                    validity,
                    Repr::Rle { run_ends: new_ends },
                )
            }
        }
    }

    /// Appends all rows of `other`, which must have the same data type.
    /// Either side being encoded decodes first; tables re-encode on their
    /// own growth schedule.
    pub fn extend(&mut self, other: &Column) -> DbResult<()> {
        if self.data_type() != other.data_type() {
            return Err(DbError::Type(format!(
                "cannot append {} rows to {} column",
                other.data_type(),
                self.data_type()
            )));
        }
        if !self.is_plain() {
            *self = self.decode();
        }
        let other = other.decoded();
        let other: &Column = &other;
        // Materialize a bitmap on either side having NULLs.
        if self.validity.is_none() && other.validity.is_some() {
            self.validity = Some(Bitmap::filled(self.len(), true));
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Boolean(a), ColumnData::Boolean(b)) => a.extend_from_slice(b),
            (ColumnData::Int8(a), ColumnData::Int8(b)) => a.extend_from_slice(b),
            (ColumnData::Int16(a), ColumnData::Int16(b)) => a.extend_from_slice(b),
            (ColumnData::Int32(a), ColumnData::Int32(b)) => a.extend_from_slice(b),
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float32(a), ColumnData::Float32(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Varchar(a), ColumnData::Varchar(b)) => a.extend(b),
            (ColumnData::Blob(a), ColumnData::Blob(b)) => a.extend(b),
            _ => unreachable!("type equality checked above"),
        }
        if let Some(bm) = &mut self.validity {
            match &other.validity {
                Some(ob) => bm.extend(ob),
                None => bm.extend_fill(other.len(), true),
            }
        }
        Ok(())
    }

    /// Vectorized cast of the whole column to `target`.
    pub fn cast(&self, target: DataType) -> DbResult<Column> {
        if self.data_type() == target {
            return Ok(self.clone());
        }
        // Fast numeric paths; everything else goes through scalar casts.
        let n = self.len();
        let mut b = ColumnBuilder::new(target);
        for i in 0..n {
            b.push_value(&self.value(i))?;
        }
        Ok(b.finish())
    }
}

/// Incremental column builder targeting a fixed data type.
///
/// Used by `INSERT`, result assembly, joins producing NULL-padded sides,
/// and the CSV/protocol readers.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    data: ColumnData,
    validity: Bitmap,
    any_null: bool,
}

impl ColumnBuilder {
    /// A builder producing a column of type `dtype`.
    pub fn new(dtype: DataType) -> Self {
        ColumnBuilder {
            dtype,
            data: ColumnData::empty(dtype),
            validity: Bitmap::new(),
            any_null: false,
        }
    }

    /// Target data type.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a NULL.
    pub fn push_null(&mut self) {
        self.any_null = true;
        self.validity.push(false);
        match &mut self.data {
            ColumnData::Boolean(v) => v.push(false),
            ColumnData::Int8(v) => v.push(0),
            ColumnData::Int16(v) => v.push(0),
            ColumnData::Int32(v) => v.push(0),
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float32(v) => v.push(0.0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Varchar(v) => v.push(""),
            ColumnData::Blob(v) => v.push(&[]),
        }
    }

    /// Appends a value, casting it to the builder's type as needed.
    pub fn push_value(&mut self, value: &Value) -> DbResult<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let cast;
        let v = if value.data_type() == Some(self.dtype) {
            value
        } else {
            cast = value.cast(self.dtype)?;
            &cast
        };
        self.validity.push(true);
        match (&mut self.data, v) {
            (ColumnData::Boolean(col), Value::Boolean(x)) => col.push(*x),
            (ColumnData::Int8(col), Value::Int8(x)) => col.push(*x),
            (ColumnData::Int16(col), Value::Int16(x)) => col.push(*x),
            (ColumnData::Int32(col), Value::Int32(x)) => col.push(*x),
            (ColumnData::Int64(col), Value::Int64(x)) => col.push(*x),
            (ColumnData::Float32(col), Value::Float32(x)) => col.push(*x),
            (ColumnData::Float64(col), Value::Float64(x)) => col.push(*x),
            (ColumnData::Varchar(col), Value::Varchar(x)) => col.push(x),
            (ColumnData::Blob(col), Value::Blob(x)) => col.push(x),
            _ => unreachable!("cast() yields the builder's type"),
        }
        Ok(())
    }

    /// Finishes the column.
    pub fn finish(self) -> Column {
        let validity = if self.any_null { Some(self.validity) } else { None };
        Column { data: self.data, validity, repr: Repr::Plain }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let c = Column::from_i32s(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int32);
        assert_eq!(c.i32s().unwrap(), &[1, 2, 3]);
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.value(1), Value::Int32(2));
        assert!(c.i64s().is_none());
    }

    #[test]
    fn nullable_build() {
        let c = Column::from_opt_i64s(vec![Some(5), None, Some(7)]);
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int64(7));
        // All-Some input carries no bitmap.
        let c = Column::from_opt_i64s(vec![Some(1), Some(2)]);
        assert!(c.validity().is_none());
    }

    #[test]
    fn new_normalizes_all_valid_bitmap() {
        let c = Column::new(ColumnData::Int32(vec![1, 2]), Some(Bitmap::filled(2, true))).unwrap();
        assert!(c.validity().is_none());
        let err = Column::new(ColumnData::Int32(vec![1, 2]), Some(Bitmap::filled(3, true)));
        assert!(err.is_err());
    }

    #[test]
    fn nulls_column() {
        let c = Column::nulls(DataType::Varchar, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 4);
        assert_eq!(c.value(0), Value::Null);
    }

    #[test]
    fn take_gathers_with_nulls() {
        let c = Column::from_opt_f64s(vec![Some(1.0), None, Some(3.0)]);
        let t = c.take(&[2, 1, 0, 2]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.value(0), Value::Float64(3.0));
        assert_eq!(t.value(1), Value::Null);
        assert_eq!(t.value(3), Value::Float64(3.0));
    }

    #[test]
    fn slice_copies_range() {
        let c = Column::from_strings(["a", "b", "c", "d"]);
        let s = c.slice(1, 2);
        assert_eq!(s.strings().unwrap().iter().collect::<Vec<_>>(), vec!["b", "c"]);
    }

    #[test]
    fn extend_merges_validity() {
        let mut a = Column::from_i32s(vec![1, 2]);
        let b = Column::from_opt_i32s(vec![None, Some(4)]);
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert!(!a.is_null(0));
        assert!(a.is_null(2));
        assert_eq!(a.value(3), Value::Int32(4));
        // Type mismatch rejected.
        let c = Column::from_f64s(vec![1.0]);
        assert!(a.extend(&c).is_err());
    }

    #[test]
    fn cast_column() {
        let c = Column::from_i32s(vec![1, 2, 3]);
        let f = c.cast(DataType::Float64).unwrap();
        assert_eq!(f.f64s().unwrap(), &[1.0, 2.0, 3.0]);
        let s = c.cast(DataType::Varchar).unwrap();
        assert_eq!(s.strings().unwrap().get(2), "3");
        // Overflow fails loudly.
        let big = Column::from_i64s(vec![1 << 40]);
        assert!(big.cast(DataType::Int16).is_err());
        // NULLs survive casts.
        let n = Column::from_opt_i32s(vec![Some(1), None]).cast(DataType::Int64).unwrap();
        assert!(n.is_null(1));
    }

    #[test]
    fn to_f64_vec_marks_nulls_as_nan() {
        let c = Column::from_opt_i32s(vec![Some(1), None, Some(3)]);
        let v = c.to_f64_vec().unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan());
        assert_eq!(v[2], 3.0);
        assert!(Column::from_strings(["x"]).to_f64_vec().is_err());
    }

    #[test]
    fn builder_casts_values() {
        let mut b = ColumnBuilder::new(DataType::Float32);
        b.push_value(&Value::Int32(2)).unwrap();
        b.push_null();
        b.push_value(&Value::Float64(1.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.data_type(), DataType::Float32);
        assert_eq!(c.f32s().unwrap()[2], 1.5);
        assert!(c.is_null(1));
    }

    #[test]
    fn from_values_rejects_uncastable() {
        let err = Column::from_values(DataType::Int32, &[Value::Varchar("zzz".into())]);
        assert!(err.is_err());
        let ok = Column::from_values(DataType::Int32, &[Value::Varchar("12".into()), Value::Null])
            .unwrap();
        assert_eq!(ok.value(0), Value::Int32(12));
        assert!(ok.is_null(1));
    }

    #[test]
    fn f64_at_and_i64_at() {
        let c = Column::from_opt_i16s(vec![Some(3), None]);
        assert_eq!(c.f64_at(0), Some(3.0));
        assert_eq!(c.f64_at(1), None);
        assert_eq!(c.i64_at(0), Some(3));
        let s = Column::from_strings(["x"]);
        assert_eq!(s.f64_at(0), None);
    }

    #[test]
    fn dict_round_trip_is_bit_identical() {
        let c = Column::from_opt_i32s(vec![Some(2), None, Some(2), Some(5), None, Some(5)]);
        let d = c.encode(Encoding::Dict);
        assert_eq!(d.encoding(), Encoding::Dict);
        assert_eq!(d.len(), 6);
        assert!(d.i32s().is_none(), "typed slices refuse encoded columns");
        assert_eq!(d.value(3), Value::Int32(5));
        assert_eq!(d.value(1), Value::Null);
        assert_eq!(d.i64_at(5), Some(5));
        let back = d.decode();
        assert!(back.is_plain());
        assert_eq!(back.data(), c.data(), "placeholder slots round-trip too");
        assert_eq!(back, c);
        assert_eq!(d, c, "logical equality across encodings");
        d.check_encoding().unwrap();
    }

    #[test]
    fn rle_round_trip_and_slice() {
        let c = Column::from_i64s(vec![7, 7, 7, 3, 3, 9]);
        let r = c.encode(Encoding::Rle);
        assert_eq!(r.encoding(), Encoding::Rle);
        assert_eq!(r.len(), 6);
        assert_eq!(r.data().len(), 3, "three runs stored");
        assert_eq!(r.value(2), Value::Int64(7));
        assert_eq!(r.value(4), Value::Int64(3));
        assert_eq!(r.decode(), c);
        r.check_encoding().unwrap();
        // Slicing clips runs and stays RLE.
        let s = r.slice(1, 4);
        assert_eq!(s.encoding(), Encoding::Rle);
        assert_eq!(s, c.slice(1, 4));
        s.check_encoding().unwrap();
    }

    #[test]
    fn dict_take_stays_dict() {
        let c = Column::from_strings(["a", "b", "a", "b", "c"]);
        let d = c.encode(Encoding::Dict);
        let t = d.take(&[4, 0, 2]);
        assert_eq!(t.encoding(), Encoding::Dict);
        assert_eq!(t, c.take(&[4, 0, 2]));
        // RLE gathers materialize plain.
        let r = c.encode(Encoding::Rle);
        let t = r.take(&[4, 0, 2]);
        assert!(t.is_plain());
        assert_eq!(t, c.take(&[4, 0, 2]));
    }

    #[test]
    fn encoded_extend_decodes() {
        let mut d = Column::from_i32s(vec![1, 1, 2]).encode(Encoding::Dict);
        d.extend(&Column::from_i32s(vec![3]).encode(Encoding::Rle)).unwrap();
        assert!(d.is_plain());
        assert_eq!(d.i32s().unwrap(), &[1, 1, 2, 3]);
    }

    #[test]
    fn encode_plain_decodes() {
        let c = Column::from_i32s(vec![4, 4, 4]);
        let r = c.encode(Encoding::Rle);
        assert_eq!(r.encode(Encoding::Plain), c);
        // Dict over all-distinct data still works when forced.
        let u = Column::from_i32s(vec![1, 2, 3]);
        assert_eq!(u.encode(Encoding::Dict), u);
    }
}
