//! # mlcs-columnar — an in-memory column-store engine
//!
//! The database substrate of the mlcs workspace: the role MonetDB plays in
//! *Deep Integration of Machine Learning Into Column Stores* (Raasveldt et
//! al., EDBT 2018). The engine provides:
//!
//! * **Columnar storage** — contiguous typed columns with validity bitmaps
//!   ([`column::Column`]), including `VARCHAR` and `BLOB` columns (the
//!   latter store pickled ML models).
//! * **Operator-at-a-time vectorized execution** — filters, projections,
//!   hash joins, hash aggregation, sorting ([`exec`]), all working on whole
//!   columns per call, MonetDB-style.
//! * **A SQL subset** — `CREATE TABLE` / `INSERT` / `SELECT` with joins,
//!   grouping, ordering, subqueries in `FROM`, scalar subqueries, `DELETE`,
//!   `UPDATE`, `CREATE TABLE AS` ([`sql`]).
//! * **Vectorized UDF hooks** — scalar and table-valued functions receive
//!   whole columns, zero-copy ([`udf`]); the ML integration in `mlcs-core`
//!   registers its `train`/`predict` functions through these.
//! * **Morsel parallelism** — a persistent worker pool and `parallel_map`
//!   primitive ([`parallel`]) driving parallel variants of every relational
//!   operator; the planner picks them when the input is large enough and
//!   every expression involved is parallel-safe.
//! * **Persistence** — a simple binary on-disk format for saving/loading a
//!   database directory ([`persist`]).
//! * **Observability** — a process-wide metrics registry ([`metrics`]) that
//!   every substrate reports into, and `EXPLAIN ANALYZE` annotating each
//!   plan operator with rows, wall time, and whether the parallel path ran.
//!
//! ## Quick start
//!
//! ```
//! use mlcs_columnar::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE t (x INTEGER, y DOUBLE)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5)").unwrap();
//! let result = db.execute("SELECT x, y * 2 AS y2 FROM t WHERE x >= 2").unwrap();
//! assert_eq!(result.batch().rows(), 2);
//! ```

pub mod batch;
pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod database;
pub mod encoding;
pub mod error;
pub mod exec;
pub mod expr;
pub mod faults;
pub mod metrics;
pub mod page;
pub mod parallel;
pub mod persist;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod strings;
pub mod table;
pub mod types;
pub mod udf;
pub mod verify;
pub mod wal;

pub use batch::Batch;
pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder, ColumnData, Encoding};
pub use database::{Database, QueryResult, StatementKind};
pub use error::{DbError, DbResult};
pub use schema::{Field, Schema};
pub use strings::{BlobColumn, StringColumn};
pub use table::Table;
pub use types::{DataType, Value};
pub use udf::{ClosureScalarUdf, FunctionRegistry, ScalarUdf, TableUdf};
pub use verify::{verify_plan, verify_statement};
