//! Database persistence: save/load the whole catalog to a directory.
//!
//! The on-disk layout is one file per table (`<name>.mlcstbl`) plus a
//! manifest (`catalog.mlcsdb`) listing the tables. Table files use the
//! mlcs binary format: a magic header, the schema, then each column as a
//! type tag, optional validity bitmap, and a typed payload. Everything is
//! little-endian and checksummed per file.
//!
//! # Crash safety
//!
//! Every file is written atomically: the bytes go to a `*.tmp` sibling,
//! the file is fsynced, renamed into place, and the directory is fsynced
//! so the rename itself is durable. Table files land before the manifest,
//! and the manifest rename is the commit point — a crash at any earlier
//! step leaves the previous manifest intact, and every file it references
//! is complete and checksummed. Because each table file is swapped
//! atomically on its own, a table that keeps its name across generations
//! may already hold the (fully written) new content when the save dies;
//! at worst some stale `*.tmp` debris and new table files the old
//! manifest does not reference remain. The guarantee is catalog-level
//! consistency, not snapshot isolation across generations: every load
//! sees only fully-written, checksummed table files.
//!
//! [`load_database_with`] offers a [`RecoveryMode::Recover`] that skips
//! damaged or missing table files (reporting them in a [`RecoveryReport`])
//! instead of aborting the whole load, so one corrupted table cannot hold
//! every stored model hostage.
//!
//! # Durability formats
//!
//! Two manifest generations coexist. `MLCSDB_1` (the legacy whole-file
//! save) lists tables stored as `<name>.mlcstbl` files and carries no
//! checkpoint watermark. `MLCSDB_2` (written by [`crate::wal::checkpoint`])
//! additionally records the checkpoint LSN and stores each table as a
//! `<name>.<lsn>.mlcspg` file of fixed-size checksummed pages (see
//! [`crate::page`]) — versioned by the checkpoint LSN so the manifest
//! rename atomically switches generations. In both generations, if a
//! `wal.mlcslog` file is
//! present next to the manifest, [`load_database_with`] replays every log
//! record past the checkpoint watermark — idempotent redo — and, in
//! [`RecoveryMode::Recover`], cleanly truncates a damaged log tail.

use crate::batch::Batch;
use crate::bitmap::Bitmap;
use crate::column::{Column, ColumnData};
use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::faults;
use crate::metrics;
use crate::page;
use crate::schema::{Field, Schema};
use crate::strings::{BlobColumn, StringColumn};
use crate::table::Table;
use crate::wal;
use mlcs_pickle::crc::crc32;
use mlcs_pickle::{Reader, Writer};
use std::path::Path;
use std::sync::Arc;

const TABLE_MAGIC: &[u8; 8] = b"MLCSTBL1";
const MANIFEST_MAGIC: &[u8; 8] = b"MLCSDB_1";
const MANIFEST_MAGIC_V2: &[u8; 8] = b"MLCSDB_2";

/// How [`load_database_with`] reacts to damaged table files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Any unreadable or corrupt table file fails the whole load.
    Strict,
    /// Damaged tables are skipped and reported; everything readable loads.
    /// Manifest damage is still fatal — without it there is no catalog.
    Recover,
}

/// One table [`RecoveryMode::Recover`] had to skip.
#[derive(Debug, Clone, PartialEq)]
pub struct DamagedTable {
    /// The table name as listed in the manifest.
    pub name: String,
    /// The rendered [`DbError`] that made it unloadable.
    pub reason: String,
}

/// What [`load_database_with`] found: which tables loaded, which were
/// damaged (empty in [`RecoveryMode::Strict`], which errors out instead),
/// and any stale `*.tmp` files an interrupted save left behind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Tables loaded into the catalog, in manifest order.
    pub loaded: Vec<String>,
    /// Tables skipped because their files were missing or corrupt.
    pub damaged: Vec<DamagedTable>,
    /// File names of leftover `*.tmp` files from an interrupted save.
    /// Harmless (no manifest references them) but worth cleaning up.
    pub stale_tmp: Vec<String>,
    /// Write-ahead-log records replayed past the checkpoint watermark.
    /// Nonzero replay is normal operation, not damage.
    pub replayed_records: u64,
    /// Bytes of damaged write-ahead-log tail discarded by a recovering
    /// load (`0` = the log was clean). A torn final record is expected
    /// after a crash mid-commit; the truncated transaction was never
    /// acknowledged.
    pub truncated_tail: u64,
    /// Page files (or log records) whose checksum verification failed —
    /// torn or corrupt writes that were *detected* rather than loaded.
    pub checksum_failures: u64,
}

impl RecoveryReport {
    /// Whether every manifest table loaded and no debris was found.
    /// Replayed log records do not count against cleanliness — redo is
    /// how a durable database normally reopens — but a truncated tail or
    /// a checksum failure does.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
            && self.stale_tmp.is_empty()
            && self.truncated_tail == 0
            && self.checksum_failures == 0
    }
}

/// Writes `bytes` to `dir/<name>` atomically: `<name>.tmp` + fsync +
/// rename + directory fsync. A crash at any point leaves either the old
/// file or the new one, never a torn mix; at worst a stale `.tmp` remains.
pub(crate) fn write_file_atomic(dir: &Path, name: &str, bytes: &[u8]) -> DbResult<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = faults::FaultyFile::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    faults::rename(&tmp, &dir.join(name))?;
    sync_dir(dir)
}

/// Fsyncs a directory so a rename inside it is durable.
pub(crate) fn sync_dir(dir: &Path) -> DbResult<()> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// The page file holding `name`'s snapshot as of checkpoint LSN `lsn`.
///
/// Page files are versioned by the checkpoint that wrote them so the
/// manifest commit governs *which generation* is visible, not just which
/// tables exist: a checkpoint that crashes after renaming fresh page
/// files but before its manifest rename leaves the new generation as
/// unreferenced orphans, and the old manifest keeps pointing at the old
/// (untouched) files — replay past the old watermark stays correct
/// instead of double-applying onto a half-committed new base.
pub(crate) fn page_file_name(name: &str, lsn: u64) -> String {
    format!("{name}.{lsn}.mlcspg")
}

/// The checkpoint LSN recorded in `dir`'s manifest: `0` when there is no
/// manifest yet or it predates checkpointing (v1). Used by
/// [`crate::wal::Wal::open`] to resume LSN issue past the watermark even
/// when the log itself was lost or reset — without it, a crash between a
/// checkpoint's manifest commit and its log reset could restart LSNs at
/// 1 and make later acknowledged commits invisible to replay.
pub(crate) fn checkpoint_watermark(dir: &Path) -> DbResult<u64> {
    let manifest = match std::fs::read(dir.join("catalog.mlcsdb")) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut r = Reader::new(&manifest);
    let magic = r.get_raw(8).map_err(corrupt)?;
    if magic == MANIFEST_MAGIC_V2 {
        r.get_u64().map_err(corrupt)
    } else if magic == MANIFEST_MAGIC {
        Ok(0)
    } else {
        Err(DbError::Corrupt("bad manifest magic".into()))
    }
}

/// Writes the v2 manifest (checkpoint LSN + table list) atomically. The
/// rename of this file is the checkpoint's commit point.
pub(crate) fn write_manifest_v2(dir: &Path, checkpoint_lsn: u64, names: &[String]) -> DbResult<()> {
    let mut manifest = Writer::new();
    manifest.put_raw(MANIFEST_MAGIC_V2);
    manifest.put_u64(checkpoint_lsn);
    manifest.put_varint(names.len() as u64);
    for name in names {
        manifest.put_str(name);
    }
    write_file_atomic(dir, "catalog.mlcsdb", &manifest.into_bytes())
}

/// Saves every table of the database into `dir` (created if missing).
/// Existing table files in the directory are overwritten.
///
/// Each file is written atomically and the manifest goes last, so an
/// interrupted save never damages the previous on-disk generation (see
/// the module docs for the exact guarantee).
pub fn save_database(db: &Database, dir: &Path) -> DbResult<()> {
    std::fs::create_dir_all(dir)?;
    let names = db.catalog().table_names();
    let mut manifest = Writer::new();
    manifest.put_raw(MANIFEST_MAGIC);
    manifest.put_varint(names.len() as u64);
    for name in &names {
        manifest.put_str(name);
        let handle = db.catalog().table(name)?;
        let table = handle.read();
        let bytes = encode_table(&table);
        write_file_atomic(dir, &format!("{name}.mlcstbl"), &bytes)?;
    }
    // The commit point: only once every table file is durable does the new
    // manifest generation become visible.
    write_file_atomic(dir, "catalog.mlcsdb", &manifest.into_bytes())
}

/// Loads a database saved by [`save_database`]. Tables are added to the
/// given database's catalog; name clashes are an error. Equivalent to
/// [`load_database_with`] in [`RecoveryMode::Strict`].
pub fn load_database(db: &Database, dir: &Path) -> DbResult<()> {
    load_database_with(db, dir, RecoveryMode::Strict).map(|_| ())
}

/// Loads a database saved by [`save_database`], with explicit handling of
/// damaged table files.
///
/// In [`RecoveryMode::Recover`], unreadable or corrupt table files are
/// skipped — each one is listed in the report's `damaged` set and counted
/// on the `persist.recovered_tables` metric — and every healthy table
/// still loads. Manifest errors are fatal in both modes.
pub fn load_database_with(
    db: &Database,
    dir: &Path,
    mode: RecoveryMode,
) -> DbResult<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let wal_path = dir.join(wal::WAL_FILE);
    let mut checkpoint_lsn = 0u64;
    match std::fs::read(dir.join("catalog.mlcsdb")) {
        Ok(manifest) => {
            let mut r = Reader::new(&manifest);
            let magic = r.get_raw(8).map_err(corrupt)?;
            let paged = match magic {
                m if m == MANIFEST_MAGIC => false,
                m if m == MANIFEST_MAGIC_V2 => {
                    checkpoint_lsn = r.get_u64().map_err(corrupt)?;
                    true
                }
                _ => return Err(DbError::Corrupt("bad manifest magic".into())),
            };
            let n = r.get_count(1).map_err(corrupt)?;
            for _ in 0..n {
                let name = r.get_str().map_err(corrupt)?.to_owned();
                match load_table(db, dir, &name, paged.then_some(checkpoint_lsn), &mut report) {
                    Ok(()) => report.loaded.push(name),
                    Err(e) if mode == RecoveryMode::Recover => {
                        metrics::counter("persist.recovered_tables").incr();
                        report.damaged.push(DamagedTable { name, reason: e.to_string() });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // No manifest but a log: a durable database that crashed before
        // its first checkpoint. Bootstrap from an empty base and replay.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && wal_path.exists() => {}
        Err(e) => return Err(e.into()),
    }
    if wal_path.exists() {
        wal::recover_into(db, &wal_path, checkpoint_lsn, mode, &mut report)?;
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let fname = entry.file_name().to_string_lossy().into_owned();
            if fname.ends_with(".tmp") {
                report.stale_tmp.push(fname);
            }
        }
        report.stale_tmp.sort();
    }
    Ok(report)
}

/// Reads, decodes, and registers one table file — whole-file `.mlcstbl`
/// for v1 manifests, checksummed-page `<name>.<lsn>.mlcspg` (the
/// generation the manifest's checkpoint LSN names) for v2.
fn load_table(
    db: &Database,
    dir: &Path,
    name: &str,
    paged: Option<u64>,
    report: &mut RecoveryReport,
) -> DbResult<()> {
    let bytes = if let Some(lsn) = paged {
        let file = page_file_name(name, lsn);
        let raw = std::fs::read(dir.join(&file))?;
        match page::decode_pages_counted(&file, &raw) {
            Ok(payload) => payload,
            Err(failure) => {
                if failure.checksum {
                    report.checksum_failures += 1;
                }
                return Err(failure.error);
            }
        }
    } else {
        std::fs::read(dir.join(format!("{name}.mlcstbl")))?
    };
    let table = decode_table(name, &bytes)?;
    db.catalog().put_table(table, false)
}

pub(crate) fn corrupt(e: mlcs_pickle::PickleError) -> DbError {
    DbError::Corrupt(e.to_string())
}

/// Encodes one table: magic, checksum, schema, columns.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut body = Writer::new();
    encode_batch(&table.scan(), &mut body);
    let payload = body.into_bytes();
    let mut out = Writer::with_capacity(payload.len() + 16);
    out.put_raw(TABLE_MAGIC);
    out.put_u32(crc32(&payload));
    out.put_raw(&payload);
    out.into_bytes()
}

/// Decodes a table encoded by [`encode_table`].
pub fn decode_table(name: &str, bytes: &[u8]) -> DbResult<Table> {
    let mut r = Reader::new(bytes);
    let magic = r.get_raw(8).map_err(corrupt)?;
    if magic != TABLE_MAGIC {
        return Err(DbError::Corrupt(format!("bad table magic in '{name}'")));
    }
    let stored = r.get_u32().map_err(corrupt)?;
    let payload = r.get_raw(r.remaining()).map_err(corrupt)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(DbError::Corrupt(format!(
            "table '{name}' payload checksum mismatch ({stored:#x} != {computed:#x})"
        )));
    }
    let mut r = Reader::new(payload);
    let batch = decode_batch(&mut r)?;
    r.expect_exhausted().map_err(corrupt)?;
    Ok(Table::from_batch(name, batch))
}

/// Encodes a self-describing batch: schema fields, row count, columns.
/// The layout is byte-identical to the body of a v1 table file, so the
/// write-ahead log's append records and the table files share one codec.
pub(crate) fn encode_batch(batch: &Batch, w: &mut Writer) {
    let schema = batch.schema();
    w.put_varint(schema.len() as u64);
    for f in schema.fields() {
        w.put_str(&f.name);
        w.put_u8(f.dtype.tag());
        w.put_bool(f.nullable);
    }
    w.put_varint(batch.rows() as u64);
    for col in batch.columns() {
        encode_column(col, w);
    }
}

/// Decodes a batch encoded by [`encode_batch`], leaving the reader
/// positioned after it (write-ahead-log payloads continue past a batch).
pub(crate) fn decode_batch(r: &mut Reader<'_>) -> DbResult<Batch> {
    let ncols = r.get_count(1).map_err(corrupt)?;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let fname = r.get_str().map_err(corrupt)?.to_owned();
        let tag = r.get_u8().map_err(corrupt)?;
        let dtype = crate::types::DataType::from_tag(tag)
            .ok_or_else(|| DbError::Corrupt(format!("unknown type tag {tag}")))?;
        let nullable = r.get_bool().map_err(corrupt)?;
        fields.push(Field { name: fname, dtype, nullable });
    }
    let schema = Arc::new(Schema::new(fields)?);
    let rows = r.get_varint().map_err(corrupt)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for f in schema.fields() {
        let col = decode_column(f.dtype.tag(), rows, r)?;
        if col.len() != rows {
            return Err(DbError::Corrupt(format!(
                "column '{}' has {} rows, expected {rows}",
                f.name,
                col.len()
            )));
        }
        columns.push(Arc::new(col));
    }
    Batch::new(schema, columns)
}

pub(crate) fn encode_column(col: &Column, w: &mut Writer) {
    // The on-disk format stores plain columns only; in-memory encodings
    // are an execution concern and are re-derived by `Table::from_batch`
    // when the file is loaded.
    let col = col.decoded();
    let col: &Column = &col;
    match col.validity() {
        None => w.put_bool(false),
        Some(bm) => {
            w.put_bool(true);
            // Store as packed bytes.
            let mut bytes = vec![0u8; bm.len().div_ceil(8)];
            for (i, valid) in bm.iter().enumerate() {
                if valid {
                    bytes[i / 8] |= 1 << (i % 8);
                }
            }
            w.put_bytes(&bytes);
        }
    }
    match col.data() {
        ColumnData::Boolean(v) => {
            for &b in v {
                w.put_bool(b);
            }
        }
        ColumnData::Int8(v) => {
            for &x in v {
                w.put_i8(x);
            }
        }
        ColumnData::Int16(v) => {
            for &x in v {
                w.put_i16(x);
            }
        }
        ColumnData::Int32(v) => {
            for &x in v {
                w.put_i32(x);
            }
        }
        ColumnData::Int64(v) => {
            for &x in v {
                w.put_i64(x);
            }
        }
        ColumnData::Float32(v) => {
            for &x in v {
                w.put_f32(x);
            }
        }
        ColumnData::Float64(v) => {
            for &x in v {
                w.put_f64(x);
            }
        }
        ColumnData::Varchar(s) => {
            let (offsets, bytes) = s.raw_parts();
            w.put_varint(offsets.len() as u64);
            for &o in offsets {
                w.put_varint(o);
            }
            w.put_bytes(bytes);
        }
        ColumnData::Blob(b) => {
            let (offsets, bytes) = b.raw_parts();
            w.put_varint(offsets.len() as u64);
            for &o in offsets {
                w.put_varint(o);
            }
            w.put_bytes(bytes);
        }
    }
}

pub(crate) fn decode_column(tag: u8, rows: usize, r: &mut Reader<'_>) -> DbResult<Column> {
    let has_validity = r.get_bool().map_err(corrupt)?;
    let validity = if has_validity {
        let bytes = r.get_bytes().map_err(corrupt)?;
        let mut bm = Bitmap::filled(rows, false);
        for i in 0..rows {
            if i / 8 < bytes.len() && bytes[i / 8] & (1 << (i % 8)) != 0 {
                bm.set(i, true);
            }
        }
        Some(bm)
    } else {
        None
    };
    let data = match crate::types::DataType::from_tag(tag)
        .ok_or_else(|| DbError::Corrupt(format!("unknown type tag {tag}")))?
    {
        crate::types::DataType::Boolean => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_bool().map_err(corrupt)?);
            }
            ColumnData::Boolean(v)
        }
        crate::types::DataType::Int8 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i8().map_err(corrupt)?);
            }
            ColumnData::Int8(v)
        }
        crate::types::DataType::Int16 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i16().map_err(corrupt)?);
            }
            ColumnData::Int16(v)
        }
        crate::types::DataType::Int32 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i32().map_err(corrupt)?);
            }
            ColumnData::Int32(v)
        }
        crate::types::DataType::Int64 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i64().map_err(corrupt)?);
            }
            ColumnData::Int64(v)
        }
        crate::types::DataType::Float32 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_f32().map_err(corrupt)?);
            }
            ColumnData::Float32(v)
        }
        crate::types::DataType::Float64 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_f64().map_err(corrupt)?);
            }
            ColumnData::Float64(v)
        }
        crate::types::DataType::Varchar => {
            let n = r.get_count(1).map_err(corrupt)?;
            let mut offsets = Vec::with_capacity(n);
            for _ in 0..n {
                offsets.push(r.get_varint().map_err(corrupt)?);
            }
            let bytes = r.get_bytes().map_err(corrupt)?.to_vec();
            ColumnData::Varchar(
                StringColumn::from_raw_parts(offsets, bytes).map_err(DbError::Corrupt)?,
            )
        }
        crate::types::DataType::Blob => {
            let n = r.get_count(1).map_err(corrupt)?;
            let mut offsets = Vec::with_capacity(n);
            for _ in 0..n {
                offsets.push(r.get_varint().map_err(corrupt)?);
            }
            let bytes = r.get_bytes().map_err(corrupt)?.to_vec();
            ColumnData::Blob(BlobColumn::from_raw_parts(offsets, bytes).map_err(DbError::Corrupt)?)
        }
    };
    Column::new(data, validity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mlcs_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE v (id INTEGER NOT NULL, name VARCHAR, score DOUBLE, raw BLOB)")
            .unwrap();
        db.execute(
            "INSERT INTO v VALUES (1, 'a', 0.5, x'00ff'), (2, NULL, NULL, x''), (3, 'ü', -1.5, x'AB')",
        )
        .unwrap();
        db.execute("CREATE TABLE empty_t (x BIGINT)").unwrap();
        db
    }

    #[test]
    fn save_and_load_round_trips() {
        let dir = tempdir("roundtrip");
        let db = populated();
        save_database(&db, &dir).unwrap();
        let db2 = Database::new();
        load_database(&db2, &dir).unwrap();
        assert_eq!(db2.catalog().table_names(), vec!["empty_t", "v"]);
        let r = db2.query("SELECT * FROM v ORDER BY id").unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r.row(0)[1], Value::Varchar("a".into()));
        assert!(r.row(1)[1].is_null());
        assert_eq!(r.row(2)[2], Value::Float64(-1.5));
        assert_eq!(r.row(0)[3], Value::Blob(vec![0x00, 0xFF]));
        // NOT NULL survives.
        assert!(db2.execute("INSERT INTO v VALUES (NULL, 'x', 1.0, x'00')").is_err());
        assert_eq!(db2.query("SELECT * FROM empty_t").unwrap().rows(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let dir = tempdir("corrupt");
        let db = populated();
        save_database(&db, &dir).unwrap();
        let path = dir.join("v.mlcstbl");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let db2 = Database::new();
        let err = load_database(&db2, &dir).unwrap_err();
        assert!(matches!(err, DbError::Corrupt(_)), "got {err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let db = Database::new();
        let err = load_database(&db, Path::new("/nonexistent/mlcs")).unwrap_err();
        assert!(matches!(err, DbError::Io(_)));
    }

    #[test]
    fn table_encode_decode_direct() {
        let db = populated();
        let handle = db.catalog().table("v").unwrap();
        let t = handle.read();
        let bytes = encode_table(&t);
        let back = decode_table("v", &bytes).unwrap();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.schema().names(), vec!["id", "name", "score", "raw"]);
        assert!(!back.schema().field(0).nullable);
    }
}
