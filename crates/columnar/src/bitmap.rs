//! Validity bitmap: one bit per row, set = valid (non-NULL).
//!
//! Packed 64 bits per word, LSB-first within each word, matching the layout
//! used by Arrow-style engines. Columns with no NULLs carry no bitmap at
//! all, so the common all-valid case costs nothing.

/// A packed bitmap tracking row validity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let words = len.div_ceil(64);
        let mut bm = Bitmap { words: vec![if value { u64::MAX } else { 0 }; words], len };
        bm.mask_tail();
        bm
    }

    /// Builds a bitmap from a bool slice (`true` = valid).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut bm = Bitmap::filled(bits.len(), false);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`. Panics if out of range (storage-internal API; row
    /// indices are validated at the operator boundary).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let i = self.len - 1;
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Appends all bits of `other`.
    pub fn extend(&mut self, other: &Bitmap) {
        // Bit-shift copy; simple per-bit loop is fine because bitmaps are
        // only touched when NULLs actually exist.
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Appends `n` copies of `value`.
    pub fn extend_fill(&mut self, n: usize, value: bool) {
        for _ in 0..n {
            self.push(value);
        }
    }

    /// Number of set (valid) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset (NULL) bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True if every bit is set; an all-valid bitmap can be dropped.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Bitwise AND of two equal-length bitmaps (validity intersection,
    /// used when combining two nullable inputs of a binary operator).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect();
        Bitmap { words, len: self.len }
    }

    /// New bitmap containing `self[i]` for each index in `indices`.
    pub fn take(&self, indices: &[u32]) -> Bitmap {
        let mut out = Bitmap::filled(indices.len(), false);
        for (dst, &src) in indices.iter().enumerate() {
            if self.get(src as usize) {
                out.set(dst, true);
            }
        }
        out
    }

    /// New bitmap with bits `offset..offset+len`.
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(offset + len <= self.len, "slice out of range");
        let mut out = Bitmap::filled(len, false);
        for i in 0..len {
            if self.get(offset + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Iterates the bits as bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set bits, as u32 (a selection vector).
    pub fn set_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as u32);
                word &= word - 1;
            }
        }
        out
    }

    /// Zeroes the unused bits of the final partial word so that
    /// `count_ones` and equality behave.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_counts() {
        let bm = Bitmap::filled(100, true);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 100);
        assert!(bm.all_set());
        let bm = Bitmap::filled(100, false);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.count_zeros(), 100);
    }

    #[test]
    fn set_get_push() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn and_intersects() {
        let a = Bitmap::from_bools(&[true, true, false, false]);
        let b = Bitmap::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b), Bitmap::from_bools(&[true, false, false, false]));
    }

    #[test]
    fn take_gathers() {
        let bm = Bitmap::from_bools(&[true, false, true, false, true]);
        let taken = bm.take(&[4, 0, 1]);
        assert_eq!(taken, Bitmap::from_bools(&[true, true, false]));
    }

    #[test]
    fn slice_works_across_word_boundaries() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 2 == 0);
        }
        let s = bm.slice(63, 4);
        assert_eq!(s, Bitmap::from_bools(&[false, true, false, true]));
    }

    #[test]
    fn set_indices_matches_iter() {
        let bm = Bitmap::from_bools(&[false, true, true, false, true]);
        assert_eq!(bm.set_indices(), vec![1, 2, 4]);
        let big = Bitmap::filled(129, true);
        assert_eq!(big.set_indices().len(), 129);
        assert_eq!(big.set_indices()[128], 128);
    }

    #[test]
    fn extend_appends() {
        let mut a = Bitmap::from_bools(&[true, false]);
        let b = Bitmap::from_bools(&[false, true, true]);
        a.extend(&b);
        assert_eq!(a, Bitmap::from_bools(&[true, false, false, true, true]));
        a.extend_fill(2, true);
        assert_eq!(a.len(), 7);
        assert!(a.get(5) && a.get(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::filled(5, true).get(5);
    }
}
