//! Morsel-driven parallelism on a persistent worker pool.
//!
//! The paper lists parallel UDF execution as future work (§5.1); this
//! module implements the substrate for it and for the parallel relational
//! operators in [`crate::exec`]. A column range is split into *morsels* —
//! contiguous row ranges — that workers claim from a shared atomic counter
//! and process independently, with results stitched back in morsel order.
//!
//! Work runs on a **persistent pool**: worker threads are spawned once, on
//! first use, and reused by every subsequent query — never per call. The
//! pool is sized by [`hardware_threads`] (the `MLCS_THREADS` environment
//! override, else `available_parallelism`) at first use. Each
//! [`parallel_map`] call enqueues claim-loop tasks on the pool and then
//! participates as a worker itself, so a map completes even when every
//! pool worker is busy elsewhere; a task that arrives after the morsels
//! are drained simply exits. Calls made *from* a pool worker (nested
//! parallelism, e.g. `predict_parallel` inside a parallel operator) run
//! inline on that worker, which keeps the pool deadlock-free.
//!
//! Two debug/test companions make that claim checkable rather than
//! asserted: [`lock_order`] wraps the pool's own mutexes in a
//! [`TrackedMutex`] that reports lock-ordering cycles as typed
//! diagnostics, and [`interleave`] plants seeded yield points at every
//! scheduling edge so the pool-interleaving suite can drive hundreds of
//! deterministic thread schedules through one binary.

pub mod interleave;
pub mod lock_order;

use crate::error::{DbError, DbResult};
use interleave::YieldPoint;
use lock_order::TrackedMutex;
use parking_lot::Mutex;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

/// Default number of rows per morsel. Large enough to amortize dispatch,
/// small enough to load-balance across cores.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// A contiguous row range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row.
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

/// Splits `rows` into morsels of at most `morsel_rows` rows. A zero
/// `morsel_rows` is treated as one row per morsel.
pub fn morsels(rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    let morsel_rows = morsel_rows.max(1);
    let mut out = Vec::with_capacity(rows.div_ceil(morsel_rows));
    let mut start = 0;
    while start < rows {
        let len = morsel_rows.min(rows - start);
        out.push(Morsel { start, len });
        start += len;
    }
    out
}

/// The thread count the machine provides: the `MLCS_THREADS` environment
/// variable when set to a positive integer (for reproducible runs on
/// shared CI hardware), else `available_parallelism`.
pub fn hardware_threads() -> usize {
    match std::env::var("MLCS_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a requested worker count: `0` means "auto"
/// ([`hardware_threads`]); anything else is taken as given.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        hardware_threads()
    } else {
        requested
    }
}

/// The number of worker threads to use: [`hardware_threads`], capped by
/// the morsel count so tiny inputs do not schedule idle tasks.
pub fn worker_count(num_morsels: usize) -> usize {
    hardware_threads().min(num_morsels).max(1)
}

/// One unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The persistent worker pool: a job queue plus detached worker threads
/// that live for the process lifetime.
struct Pool {
    sender: TrackedMutex<mpsc::Sender<Job>>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set on pool worker threads so nested [`parallel_map`] calls run
    /// inline instead of waiting on queue slots they may be blocking.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Lazily starts (once) and returns the pool.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = hardware_threads().max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(TrackedMutex::new("pool.queue", rx));
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            // A failed spawn leaves the pool smaller; parallel_map still
            // completes because the caller participates in every map.
            let _ = std::thread::Builder::new().name(format!("mlcs-worker-{i}")).spawn(move || {
                IS_POOL_WORKER.with(|f| f.set(true));
                // Handles are resolved once per worker; recording is a
                // relaxed atomic per job.
                let queue_depth = crate::metrics::gauge("pool.queue_depth");
                let completed = crate::metrics::counter("pool.jobs_completed");
                let busy = crate::metrics::histogram("pool.busy_time_ns");
                loop {
                    let job = rx.lock().recv();
                    match job {
                        Ok(job) => {
                            interleave::yield_point(YieldPoint::Steal);
                            queue_depth.add(-1);
                            let start = std::time::Instant::now();
                            // A panicking job must not kill the worker;
                            // the submitting map reports it as a typed
                            // error through its result slots.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                            busy.record_duration(start.elapsed());
                            completed.incr();
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Pool { sender: TrackedMutex::new("pool.sender", tx), workers }
    })
}

/// The persistent pool's worker-thread count, starting the pool if it has
/// not run yet. Exposed for tests and diagnostics.
pub fn pool_workers() -> usize {
    pool().workers
}

/// Enqueues one task. The send can only fail if every worker is gone
/// (spawn failure at pool startup); callers tolerate lost tasks because
/// the submitting thread always processes the shared work itself.
fn submit(job: Job) {
    interleave::yield_point(YieldPoint::Submit);
    crate::metrics::counter("pool.jobs_submitted").incr();
    crate::metrics::gauge("pool.queue_depth").add(1);
    let _ = pool().sender.lock().send(job);
}

/// Hands one fire-and-forget task to the persistent pool. This is the
/// serving layer's bridge into morsel-land: the netproto reactor decodes
/// a query on an event-loop thread and `spawn`s its execution here, so
/// event loops never block on query work. The job runs under the pool's
/// `catch_unwind` umbrella; a panic inside it is contained to that job
/// (callers that need the panic surfaced should wrap the body in their
/// own `catch_unwind` and forward the result through a channel).
pub fn spawn(job: impl FnOnce() + Send + 'static) {
    submit(Box::new(job));
}

/// Claims and processes task indices until none remain. Runs on pool
/// workers and on the calling thread alike.
fn run_task_loop<T, E, F>(next: &AtomicUsize, slots: &[Mutex<Option<Result<T, E>>>], f: &F)
where
    F: Fn(usize) -> Result<T, E>,
{
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= slots.len() {
            break;
        }
        interleave::yield_point(YieldPoint::Steal);
        let r = f(i);
        interleave::yield_point(YieldPoint::SlotWrite);
        *slots[i].lock() = Some(r);
    }
}

/// Sends a completion signal when dropped, so a helper task that panics
/// mid-task still unblocks the caller's drain.
struct DoneGuard(mpsc::Sender<()>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        interleave::yield_point(YieldPoint::Shutdown);
        let _ = self.0.send(());
    }
}

/// Runs `count` independent indexed tasks on the persistent worker pool,
/// collecting results in index order. This is the scoped building block
/// under [`parallel_map`]: the closure may borrow from the caller's stack
/// (no `'static` bound), which lets callers like `mlcs-ml` fan out over
/// borrowed matrices and models without `Arc`-wrapping or copying.
///
/// `threads` is the total worker count including the calling thread, which
/// always participates; `0` means auto ([`effective_threads`]). Calls from
/// a pool worker (nested parallelism) run inline. The first error in task
/// order is returned; a task whose worker panicked reports `panic_error()`
/// instead of aborting the process.
pub fn parallel_tasks<T, E, F, P>(
    count: usize,
    threads: usize,
    panic_error: P,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Send + Sync,
    P: Fn() -> E,
{
    if count == 0 {
        return Ok(Vec::new());
    }
    let mut threads = effective_threads(threads).clamp(1, count);
    if IS_POOL_WORKER.with(Cell::get) {
        threads = 1; // nested call on a pool worker runs inline
    }
    if threads == 1 {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(f(i)?);
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<Result<T, E>>>> = Vec::with_capacity(count);
    slots.resize_with(count, || Mutex::new(None));
    let (done_tx, done_rx) = mpsc::channel::<()>();
    {
        let next = &next;
        let slots = &slots[..];
        let f = &f;
        for _ in 0..threads - 1 {
            let guard = DoneGuard(done_tx.clone());
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                run_task_loop(next, slots, f);
                // The guard's drop sends the done signal; it runs after the
                // task loop has released every borrow (also on unwind, where
                // captured fields drop after the loop's frame).
                drop(guard);
            });
            // SAFETY: the job borrows `next`/`slots`/`f`, which outlive it:
            // every job owns a `DoneGuard` whose drop (normal exit or
            // unwind) signals `done_rx`, and this function drains one
            // signal per job before touching `slots` or returning. After
            // the signal a job only deallocates its closure (no borrow is
            // dereferenced), so extending the lifetime to `'static` for the
            // pool's queue cannot observe freed stack data.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            submit(job);
        }
    }
    drop(done_tx);
    // The caller is one of the workers. Its panics are contained so the
    // helper tasks are always drained before returning — otherwise they
    // could outlive the call and race a later one (or read a dead frame).
    let caller = catch_unwind(AssertUnwindSafe(|| run_task_loop(&next, &slots, &f)));
    loop {
        interleave::yield_point(YieldPoint::Drain);
        if done_rx.recv().is_err() {
            break;
        }
    }
    if caller.is_err() {
        return Err(panic_error());
    }
    let mut out = Vec::with_capacity(count);
    for slot in &slots {
        match slot.lock().take() {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => return Err(panic_error()),
        }
    }
    Ok(out)
}

/// Runs `f` over every morsel of `rows` on the persistent worker pool,
/// collecting results in morsel order into preallocated slots. `f` must be
/// pure with respect to row ranges (each morsel processed independently).
///
/// `threads` is the total worker count including the calling thread, which
/// always participates; `0` means auto ([`effective_threads`]). Errors
/// from any morsel abort the whole operation; the first error in morsel
/// order is returned. A morsel whose worker panicked reports a typed
/// internal error instead of aborting the process.
pub fn parallel_map<T, F>(rows: usize, morsel_rows: usize, threads: usize, f: F) -> DbResult<Vec<T>>
where
    T: Send,
    F: Fn(Morsel) -> DbResult<T> + Send + Sync,
{
    let work = morsels(rows, morsel_rows);
    if work.is_empty() {
        return Ok(Vec::new());
    }
    let actually_parallel =
        effective_threads(threads).clamp(1, work.len()) > 1 && !IS_POOL_WORKER.with(Cell::get);
    if actually_parallel {
        crate::metrics::counter("pool.parallel_maps").incr();
        crate::metrics::counter("pool.morsels").add(work.len() as u64);
    }
    let work = &work;
    parallel_tasks(
        work.len(),
        threads,
        || DbError::internal("parallel worker panicked"),
        |i| f(work[i]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_splitting() {
        assert_eq!(morsels(0, 10), vec![]);
        assert_eq!(morsels(10, 10), vec![Morsel { start: 0, len: 10 }]);
        let m = morsels(25, 10);
        assert_eq!(
            m,
            vec![
                Morsel { start: 0, len: 10 },
                Morsel { start: 10, len: 10 },
                Morsel { start: 20, len: 5 }
            ]
        );
        let total: usize = m.iter().map(|x| x.len).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn zero_morsel_rows_tolerated() {
        assert_eq!(morsels(3, 0).len(), 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(1000, 7, 4, |m| Ok(m.start)).unwrap();
        let expected: Vec<usize> = morsels(1000, 7).iter().map(|m| m.start).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_map_computes() {
        // Sum of 0..n via per-morsel partial sums.
        let n = 100_000usize;
        let parts =
            parallel_map(n, 1024, 8, |m| Ok((m.start..m.start + m.len).sum::<usize>())).unwrap();
        assert_eq!(parts.iter().sum::<usize>(), n * (n - 1) / 2);
    }

    #[test]
    fn errors_propagate() {
        let r = parallel_map(100, 10, 4, |m| {
            if m.start == 50 {
                Err(DbError::internal("boom"))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn first_error_in_morsel_order_wins() {
        let r = parallel_map(100, 10, 4, |m| {
            if m.start >= 30 {
                Err(DbError::internal(format!("boom at {}", m.start)))
            } else {
                Ok(())
            }
        });
        match r {
            Err(e) => assert!(e.to_string().contains("boom at 30"), "{e}"),
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(10, 3, 1, |m| Ok(m.len)).unwrap();
        assert_eq!(out, vec![3, 3, 3, 1]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(2) <= 2);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn nested_parallel_map_completes() {
        // A map whose morsel closure itself calls parallel_map must not
        // deadlock the pool (inner calls run inline on pool workers).
        let out = parallel_map(64, 4, 4, |outer| {
            let inner = parallel_map(32, 4, 4, move |m| Ok(m.len))?;
            Ok(outer.len + inner.iter().sum::<usize>())
        })
        .unwrap();
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|&v| v == 4 + 32));
    }

    #[test]
    fn pool_reused_across_maps() {
        // The pool spawns once: its worker count is stable across calls.
        let before = pool_workers();
        for _ in 0..5 {
            let _ = parallel_map(10_000, 64, 4, |m| Ok(m.len)).unwrap();
        }
        assert_eq!(pool_workers(), before);
    }

    #[test]
    fn parallel_tasks_borrows_stack_data() {
        // The scoped API must accept non-'static closures: sum borrowed
        // chunks without Arc-wrapping or copying.
        let data: Vec<u64> = (0..1000).collect();
        let out = parallel_tasks(
            10,
            4,
            || DbError::internal("panicked"),
            |i| Ok::<u64, DbError>(data[i * 100..(i + 1) * 100].iter().sum()),
        )
        .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn parallel_tasks_first_error_in_index_order() {
        let r = parallel_tasks(
            100,
            4,
            || DbError::internal("panicked"),
            |i| {
                if i >= 30 {
                    Err(DbError::internal(format!("boom at {i}")))
                } else {
                    Ok(())
                }
            },
        );
        match r {
            Err(e) => assert!(e.to_string().contains("boom at 30"), "{e}"),
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn parallel_tasks_panic_maps_to_custom_error() {
        let r = parallel_tasks(
            64,
            4,
            || "worker died",
            |i| {
                if i == 40 {
                    panic!("task panic");
                }
                Ok::<usize, &str>(i)
            },
        );
        assert_eq!(r, Err("worker died"));
    }

    #[test]
    fn parallel_tasks_nested_runs_inline() {
        let out = parallel_tasks(
            8,
            4,
            || DbError::internal("panicked"),
            |outer| {
                let inner =
                    parallel_tasks(8, 4, || DbError::internal("panicked"), Ok::<usize, DbError>)?;
                Ok::<usize, DbError>(outer + inner.iter().sum::<usize>())
            },
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 28);
        }
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let r = parallel_map(100, 10, 4, |m| {
            if m.start == 40 {
                panic!("morsel panic");
            }
            Ok(m.len)
        });
        match r {
            Err(e) => assert!(e.to_string().contains("panicked"), "{e}"),
            Ok(_) => panic!("expected a typed error from the panicking morsel"),
        }
    }
}
