//! Morsel-driven parallelism helpers.
//!
//! The paper lists parallel UDF execution as future work (§5.1); this
//! module implements the substrate for it. A column range is split into
//! *morsels* — contiguous row ranges — that worker threads process
//! independently, with results stitched back in order.

use crate::error::{DbError, DbResult};

/// Default number of rows per morsel. Large enough to amortize dispatch,
/// small enough to load-balance across cores.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// A contiguous row range `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row.
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

/// Splits `rows` into morsels of at most `morsel_rows` rows.
pub fn morsels(rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    assert!(morsel_rows > 0, "morsel size must be positive");
    let mut out = Vec::with_capacity(rows.div_ceil(morsel_rows));
    let mut start = 0;
    while start < rows {
        let len = morsel_rows.min(rows - start);
        out.push(Morsel { start, len });
        start += len;
    }
    out
}

/// The number of worker threads to use: the available parallelism, capped
/// by the morsel count so tiny inputs do not spawn idle threads.
pub fn worker_count(num_morsels: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(num_morsels).max(1)
}

/// Runs `f` over every morsel of `rows`, in parallel, collecting results in
/// morsel order. `f` must be pure with respect to row ranges (each morsel
/// processed independently).
///
/// Errors from any morsel abort the whole operation; the first error in
/// morsel order is returned.
pub fn parallel_map<T, F>(rows: usize, morsel_rows: usize, threads: usize, f: F) -> DbResult<Vec<T>>
where
    T: Send,
    F: Fn(Morsel) -> DbResult<T> + Sync,
{
    let work = morsels(rows, morsel_rows);
    if work.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, work.len());
    if threads == 1 {
        return work.into_iter().map(f).collect();
    }
    // Work-stealing over a shared atomic counter: each worker claims the
    // next unprocessed morsel until none remain, sending indexed results
    // over a channel so they can be reassembled in morsel order.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, DbResult<T>)>();
    crossbeam::thread::scope(|scope| {
        let next = &next;
        let work = &work;
        let f = &f;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                if tx.send((i, f(work[i]))).is_err() {
                    break;
                }
            });
        }
    })
    .map_err(|_| DbError::internal("parallel worker panicked"))?;
    drop(tx);
    let mut results: Vec<Option<DbResult<T>>> = Vec::with_capacity(work.len());
    results.resize_with(work.len(), || None);
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results.into_iter().map(|r| r.expect("every morsel processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_splitting() {
        assert_eq!(morsels(0, 10), vec![]);
        assert_eq!(morsels(10, 10), vec![Morsel { start: 0, len: 10 }]);
        let m = morsels(25, 10);
        assert_eq!(
            m,
            vec![
                Morsel { start: 0, len: 10 },
                Morsel { start: 10, len: 10 },
                Morsel { start: 20, len: 5 }
            ]
        );
        let total: usize = m.iter().map(|x| x.len).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(1000, 7, 4, |m| Ok(m.start)).unwrap();
        let expected: Vec<usize> = morsels(1000, 7).iter().map(|m| m.start).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_map_computes() {
        // Sum of 0..n via per-morsel partial sums.
        let n = 100_000usize;
        let parts =
            parallel_map(n, 1024, 8, |m| Ok((m.start..m.start + m.len).sum::<usize>())).unwrap();
        assert_eq!(parts.iter().sum::<usize>(), n * (n - 1) / 2);
    }

    #[test]
    fn errors_propagate() {
        let r = parallel_map(100, 10, 4, |m| {
            if m.start == 50 {
                Err(DbError::internal("boom"))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(10, 3, 1, |m| Ok(m.len)).unwrap();
        assert_eq!(out, vec![3, 3, 3, 1]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1000) >= 1);
        assert!(worker_count(2) <= 2);
    }
}
